"""A1-A3 — ablations of MARP's design choices.

* A1: itinerary strategy (the paper's cost-sorted USL vs alternatives)
  on a topology with non-uniform link costs.
* A2: information sharing via server bulletin boards (§3.1) on/off.
* A3: request batching (§3.2) — requests carried per agent.
"""

import pytest

from repro.experiments.ablations import (
    run_batching_ablation,
    run_bulletin_ablation,
    run_itinerary_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_a1_itinerary_strategies(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_itinerary_ablation(
            requests_per_client=10, repeats=1, seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("a1_itinerary", table.text)
    for strategy in (
        "cost-sorted", "initial-cost-order", "static-order", "random-order",
    ):
        assert table.column(strategy, "consistent")
        assert table.column(strategy, "committed") == 50.0


@pytest.mark.benchmark(group="ablations")
def test_a2_bulletin_sharing(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_bulletin_ablation(
            requests_per_client=10, repeats=1, seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("a2_bulletin", table.text)
    assert table.column(True, "consistent")
    assert table.column(False, "consistent")


@pytest.mark.benchmark(group="ablations")
def test_a3_batching(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_batching_ablation(
            batch_sizes=(1, 4), requests_per_client=16, repeats=1, seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("a3_batching", table.text)
    assert table.column(1, "consistent")
    assert table.column(4, "consistent")
    # Batching amortises migrations: 4-request agents travel far less.
    assert table.column(4, "agent hops") < table.column(1, "agent hops")
