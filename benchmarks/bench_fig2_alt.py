"""Figure 2 — Average time for obtaining the lock (ALT).

Regenerates the paper's Figure 2 series (ALT vs mean inter-arrival time
for N = 3, 4, 5 servers) and validates the reported shape: ALT decreases
as the mean inter-arrival time grows, and more servers cost more.
"""

import pytest

from repro.experiments.common import latency_sweep
from repro.experiments.fig2_alt import project_fig2

INTERARRIVALS = (15.0, 25.0, 45.0, 80.0)
SERVERS = (3, 4, 5)


@pytest.mark.benchmark(group="figures")
def test_fig2_alt(benchmark, emit):
    points = benchmark.pedantic(
        lambda: latency_sweep(
            server_counts=SERVERS,
            interarrivals=INTERARRIVALS,
            requests_per_client=15,
            repeats=1,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    figure = project_fig2(points)
    emit("fig2_alt", figure.text + "\n\n" + figure.chart)

    assert figure.all_consistent
    for n in SERVERS:
        series = figure.series[f"{n} servers"]
        # Shape: contention (small inter-arrival) inflates ALT; by the
        # tail of the sweep the lock is cheap.
        assert series[0] > series[-1]
    # Shape: at high contention, more servers means a costlier lock.
    assert figure.series["5 servers"][0] > figure.series["3 servers"][0]
