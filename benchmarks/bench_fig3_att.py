"""Figure 3 — Average total time for completing a request (ATT).

Regenerates the paper's Figure 3 and validates its shape: ATT ≥ ALT (it
adds the UPDATE/ACK/COMMIT messaging), decreasing with the mean
inter-arrival time and increasing with the number of servers.
"""

import pytest

from repro.experiments.common import latency_sweep
from repro.experiments.fig2_alt import project_fig2
from repro.experiments.fig3_att import project_fig3

INTERARRIVALS = (15.0, 25.0, 45.0, 80.0)
SERVERS = (3, 4, 5)


@pytest.mark.benchmark(group="figures")
def test_fig3_att(benchmark, emit):
    points = benchmark.pedantic(
        lambda: latency_sweep(
            server_counts=SERVERS,
            interarrivals=INTERARRIVALS,
            requests_per_client=15,
            repeats=1,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    figure = project_fig3(points)
    emit("fig3_att", figure.text + "\n\n" + figure.chart)

    assert figure.all_consistent
    alt_figure = project_fig2(points)
    for n in SERVERS:
        att_series = figure.series[f"{n} servers"]
        alt_series = alt_figure.series[f"{n} servers"]
        # ATT includes ALT plus the update round.
        assert all(t >= a for t, a in zip(att_series, alt_series))
        assert att_series[0] > att_series[-1]
    assert figure.series["5 servers"][-1] > figure.series["3 servers"][-1]
