"""Figure 4 — Percentage of requests whose lock needed K server visits.

Regenerates the paper's Figure 4 (N = 5, K = 3, 4, 5) and validates its
shape: below ~45 ms inter-arrival most requests must visit all 5 servers;
at low rates most are granted after only 3 = (N+1)/2 visits.
"""

import pytest

from repro.experiments.fig4_prk import run_fig4

INTERARRIVALS = (15.0, 30.0, 45.0, 80.0, 150.0)


@pytest.mark.benchmark(group="figures")
def test_fig4_prk(benchmark, emit):
    figure = benchmark.pedantic(
        lambda: run_fig4(
            interarrivals=INTERARRIVALS,
            requests_per_client=15,
            repeats=1,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("fig4_prk", figure.text + "\n\n" + figure.chart)

    assert figure.all_consistent
    k3, k5 = figure.series["K=3"], figure.series["K=5"]
    # High contention: K=5 dominates (paper: "for most requests, mobile
    # agents need to visit all of the 5 servers").
    assert k5[0] > 50.0
    assert k5[0] > k3[0]
    # Low contention: K=3 dominates ("most requests can be granted the
    # lock by having their mobile agents visit only 3 servers").
    assert k3[-1] > 50.0
    assert k3[-1] > k5[-1]
    # Each column is a distribution over K.
    for index in range(len(INTERARRIVALS)):
        total = sum(figure.series[f"K={k}"][index] for k in (3, 4, 5))
        assert total == pytest.approx(100.0)
