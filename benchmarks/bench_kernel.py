"""Microbenchmarks of the substrates (regression guards).

These are the hot paths profiling identified (per the optimisation
workflow of the HPC guides): the event loop, the store matching loop,
message delivery, and the MARP decision function.
"""

import pytest

from repro.agents.identity import AgentId
from repro.core.locking_table import LockingTable
from repro.core.priority import decide
from repro.experiments.runner import RunConfig, run_once
from repro.replication.server import SharedView
from repro.sim.core import Environment
from repro.sim.stores import Store


@pytest.mark.benchmark(group="kernel")
def test_event_loop_throughput(benchmark):
    def run_events():
        env = Environment()

        def ticker(env):
            for _ in range(2000):
                yield env.timeout(1)

        env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run_events) == 2000.0


@pytest.mark.benchmark(group="kernel")
def test_store_put_get_throughput(benchmark):
    def run_store():
        env = Environment()
        store = Store(env)
        moved = []

        def producer(env):
            for index in range(1000):
                yield store.put(index)

        def consumer(env):
            for _ in range(1000):
                item = yield store.get()
                moved.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return len(moved)

    assert benchmark(run_store) == 1000


@pytest.mark.benchmark(group="kernel")
def test_decision_function_speed(benchmark):
    table = LockingTable()
    agents = [AgentId("h", float(n), 0) for n in range(20)]
    for index in range(5):
        table.update(
            SharedView(
                host=f"s{index + 1}",
                as_of=1.0,
                view=tuple(agents[index:] + agents[:index]),
                updated=frozenset(agents[:3]),
                versions={"x": index},
            )
        )

    decision = benchmark(lambda: decide(table, 5, agents[5]))
    assert decision.outcome is not None


@pytest.mark.benchmark(group="kernel")
def test_end_to_end_run_throughput(benchmark):
    config = RunConfig(
        n_replicas=5, seed=0, mean_interarrival=50.0,
        requests_per_client=10,
    )
    result = benchmark.pedantic(
        lambda: run_once(config), rounds=3, iterations=1,
    )
    assert result.committed == 50
    assert result.audit.consistent
