"""Microbenchmarks of the substrates (regression guards).

These are the hot paths profiling identified (per the optimisation
workflow of the HPC guides): the event loop, the store matching loop,
message delivery, and the MARP decision function.
"""

import pytest

from repro.agents.identity import AgentId
from repro.core.locking_table import LockingTable
from repro.core.priority import decide
from repro.experiments.runner import RunConfig, run_once
from repro.replication.server import SharedView
from repro.sim.core import Environment
from repro.sim.stores import Store


@pytest.mark.benchmark(group="kernel")
def test_event_loop_throughput(benchmark):
    def run_events():
        env = Environment()

        def ticker(env):
            for _ in range(2000):
                yield env.timeout(1)

        env.process(ticker(env))
        env.run()
        return env.now

    assert benchmark(run_events) == 2000.0


@pytest.mark.benchmark(group="kernel")
def test_store_put_get_throughput(benchmark):
    def run_store():
        env = Environment()
        store = Store(env)
        moved = []

        def producer(env):
            for index in range(1000):
                yield store.put(index)

        def consumer(env):
            for _ in range(1000):
                item = yield store.get()
                moved.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return len(moved)

    assert benchmark(run_store) == 1000


@pytest.mark.benchmark(group="kernel")
def test_decision_function_speed(benchmark):
    table = LockingTable()
    agents = [AgentId("h", float(n), 0) for n in range(20)]
    for index in range(5):
        table.update(
            SharedView(
                host=f"s{index + 1}",
                as_of=1.0,
                view=tuple(agents[index:] + agents[:index]),
                updated=frozenset(agents[:3]),
                versions={"x": index},
            )
        )

    decision = benchmark(lambda: decide(table, 5, agents[5]))
    assert decision.outcome is not None


@pytest.mark.benchmark(group="kernel")
@pytest.mark.parametrize("n_servers", [5, 25, 100])
def test_decide_scales_with_table_width(benchmark, n_servers):
    """The priority rule over wide tables (the ROADMAP's
    hundreds-of-replicas sweeps) — exercises the packed top scan and
    the mutation-counter memo."""
    from repro.core.priority import rank_queue

    table = LockingTable()
    agents = [AgentId("h", float(n), 0) for n in range(20)]
    for index in range(n_servers):
        table.update(
            SharedView(
                host=f"s{index + 1}",
                as_of=1.0,
                view=tuple(agents[index % 5:] + agents[:index % 5]),
                updated=frozenset(agents[:3]),
                versions={"x": index},
            )
        )

    def evaluate():
        decision = decide(table, n_servers, agents[5])
        order = rank_queue(table, n_servers, limit=3)
        return decision, order

    decision, order = benchmark(evaluate)
    assert decision.outcome is not None
    assert len(order) <= 3


@pytest.mark.benchmark(group="kernel")
def test_table_merge_throughput(benchmark):
    """The flattened LL/UL->LT merge: fold a tour's worth of fresh
    views (interning, UAL flags, version fold, packed adoption)."""
    agents = [AgentId("h", float(n), 0) for n in range(30)]
    tour = [
        SharedView(
            host=f"s{index + 1}",
            as_of=float(round_ + 1),
            view=tuple(agents[(index + round_) % 10:]),
            updated=frozenset(agents[:round_ % 5]),
            versions={"x": round_, "y": index},
        )
        for round_ in range(10)
        for index in range(10)
    ]

    def merge_tour():
        table = LockingTable()
        for view in tour:
            table.update(view)
        return len(table.known_hosts)

    assert benchmark(merge_tour) == 10


@pytest.mark.benchmark(group="kernel")
def test_event_enqueue_dequeue_throughput(benchmark):
    """The bare queue cycle (Timeout alloc + heap push/pop + callback),
    without any process machinery on top."""

    def churn():
        env = Environment()
        fired = []
        append = fired.append
        for index in range(2000):
            env.timeout(index % 7).callbacks.append(append)
        env.run()
        return len(fired)

    assert benchmark(churn) == 2000


@pytest.mark.benchmark(group="kernel")
def test_packed_priority_schedule_throughput(benchmark):
    """The packed heap entry under mixed priorities: scheduling folds
    ``(priority, seq)`` into one int key, so the heap compares 3-tuples
    of scalars instead of the old 4-tuples — this pins the win and the
    ordering contract (priority beats insertion order at equal time)."""

    from repro.sim.core import URGENT

    def churn():
        env = Environment()
        fired = []
        append = fired.append
        for index in range(1500):
            if index % 3 == 0:  # a third through the urgent tier
                event = env.event()
                event.callbacks.append(append)
                env.schedule(event, float(index % 11), priority=URGENT)
            else:
                env.timeout(float(index % 11)).callbacks.append(append)
        env.run()
        return len(fired)

    assert benchmark(churn) == 1500


@pytest.mark.benchmark(group="kernel")
def test_end_to_end_run_throughput(benchmark):
    config = RunConfig(
        n_replicas=5, seed=0, mean_interarrival=50.0,
        requests_per_client=10,
    )
    result = benchmark.pedantic(
        lambda: run_once(config), rounds=3, iterations=1,
    )
    assert result.committed == 50
    assert result.audit.consistent
