"""Live-backend benchmark: wall-clock behaviour of the real runtime.

Times a contended update workload on the threaded backend (real pickled
agent migration over latency-injected queues) and checks the same
qualitative properties as the DES benches: everything commits, the
consistency audit passes, and the visit bounds hold.
"""

import pytest

from repro.analysis.metrics import alt, att
from repro.runtime import LiveCluster, LiveWorkloadDriver


@pytest.mark.benchmark(group="live")
def test_live_thread_cluster_workload(benchmark, emit):
    def run():
        with LiveCluster(n_replicas=3, backend="thread", seed=7) as cluster:
            driver = LiveWorkloadDriver(
                cluster, mean_interarrival_ms=30.0, writes_per_host=4,
                seed=7,
            )
            records = driver.run(timeout=120.0)
        return records, cluster.audit()

    records, report = benchmark.pedantic(run, rounds=1, iterations=1)

    committed = [r for r in records if r.status == "committed"]
    assert len(committed) == 12
    assert report.consistent
    assert report.total_commits == 12
    for record in committed:
        assert record.visits_to_lock >= 2  # ceil((3+1)/2)

    emit(
        "live_runtime",
        "Live threaded backend, 3 replicas, 12 contended updates:\n"
        f"  ALT = {alt(records):.1f} ms wall, ATT = {att(records):.1f} ms "
        f"wall\n  consistent = {report.consistent}, "
        f"commits = {report.total_commits}",
    )
