"""Overhead guard: observability must be free when disabled.

The zero-cost contract (docs/observability.md): with no hub installed —
or a *disabled* hub installed — every instrumented component resolves
its hub reference to ``None`` at construction and the simulator runs
the exact pre-obs code paths (``Environment.step`` is not even
wrapped). This bench measures that claim on a real MARP run and fails
if the disabled-hub configuration costs more than 3% wall time against
the no-hub baseline. The *enabled*-hub cost is reported for
information only; it buys the full metric/span stream and has no
budget.

The same contract covers the **cross-hop trace propagation** path in
the live runtime: the trace id / phase timestamps ride in the pickled
agent state whether or not a hub exists, but span recording at each
host must vanish when no hub is installed. The live measurement gets a
far looser budget — its wall time is dominated by injected link
latency and thread scheduling, so the signal is coarse — plus a
functional check that the *enabled* configuration actually yields
linked whole-journey traces (otherwise a silently-dead span path would
look like a 0% overhead win).

Runs standalone (``python benchmarks/bench_obs_overhead.py``) and under
pytest; CI's tier-1 suite does not include benchmarks, so wall-clock
noise here can never break the build — the 3% assertion uses min-of-N
timing to stay stable anyway.
"""

import time

import pytest

from repro.experiments.runner import RunConfig, run_once
from repro.obs.hub import ObservabilityHub, set_hub
from repro.obs.journeys import reconstruct_journeys
from repro.runtime import LiveCluster

#: generous vs the expected ~0% — the disabled path is identical code.
MAX_DISABLED_OVERHEAD = 0.03
REPEATS = 7

#: the live runtime sleeps on injected latencies, so overhead there is
#: measured against a noise floor; the budget reflects that.
MAX_LIVE_DISABLED_OVERHEAD = 0.20
LIVE_REPEATS = 3
LIVE_WRITES = 9

BENCH_CONFIG = RunConfig(
    protocol="marp",
    n_replicas=5,
    mean_interarrival=20.0,
    requests_per_client=15,
    seed=3,
)


def _timed_run(hub):
    """Wall seconds for one run under the given process-wide hub."""
    previous = set_hub(hub)
    try:
        start = time.perf_counter()
        result = run_once(BENCH_CONFIG)
        elapsed = time.perf_counter() - start
    finally:
        set_hub(previous)
    assert result.committed > 0
    return elapsed


def measure(repeats: int = REPEATS):
    """Min-of-N wall time for no-hub / disabled-hub / enabled-hub."""
    timings = {"none": [], "disabled": [], "enabled": []}
    for _ in range(repeats):
        timings["none"].append(_timed_run(None))
        timings["disabled"].append(
            _timed_run(ObservabilityHub(enabled=False))
        )
        timings["enabled"].append(_timed_run(ObservabilityHub()))
    return {name: min(times) for name, times in timings.items()}


def _timed_live(hub):
    """Wall seconds for one contended live-cluster run under ``hub``."""
    previous = set_hub(hub)
    try:
        start = time.perf_counter()
        with LiveCluster(n_replicas=3, backend="thread", seed=5) as cluster:
            for index in range(LIVE_WRITES):
                cluster.submit_write(
                    cluster.hosts[index % len(cluster.hosts)], "x", index
                )
            records = cluster.wait_for(LIVE_WRITES, timeout=60.0)
        elapsed = time.perf_counter() - start
    finally:
        set_hub(previous)
    assert len(records) == LIVE_WRITES
    return elapsed


def measure_live(repeats: int = LIVE_REPEATS):
    """Min-of-N live wall time for no-hub / disabled-hub / enabled-hub."""
    timings = {"none": [], "disabled": [], "enabled": []}
    for _ in range(repeats):
        timings["none"].append(_timed_live(None))
        timings["disabled"].append(
            _timed_live(ObservabilityHub(enabled=False))
        )
        timings["enabled"].append(_timed_live(ObservabilityHub()))
    return {name: min(times) for name, times in timings.items()}


def test_disabled_hub_is_free():
    best = measure()
    overhead = best["disabled"] / best["none"] - 1.0
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-hub overhead {overhead:+.1%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} "
        f"(none={best['none'] * 1e3:.1f}ms, "
        f"disabled={best['disabled'] * 1e3:.1f}ms)"
    )


def test_live_disabled_hub_overhead():
    best = measure_live()
    overhead = best["disabled"] / best["none"] - 1.0
    assert overhead < MAX_LIVE_DISABLED_OVERHEAD, (
        f"live disabled-hub overhead {overhead:+.1%} exceeds "
        f"{MAX_LIVE_DISABLED_OVERHEAD:.0%} "
        f"(none={best['none'] * 1e3:.1f}ms, "
        f"disabled={best['disabled'] * 1e3:.1f}ms)"
    )


def test_live_enabled_run_records_cross_hop_journeys():
    """The overhead being paid must buy linked whole-journey traces."""
    hub = ObservabilityHub()
    _timed_live(hub)
    journeys = reconstruct_journeys(hub)
    assert len(journeys) == LIVE_WRITES
    assert all(journey.complete for journey in journeys)
    assert any(len(journey.hops) >= 1 for journey in journeys)
    for journey in journeys:
        path = journey.path
        assert abs(path.alt_ms + path.commit_ms + path.tail_ms
                   - path.att_ms) < 1e-6


@pytest.mark.benchmark(group="obs")
def test_enabled_hub_run(benchmark):
    def run_instrumented():
        return _timed_run(ObservabilityHub())

    benchmark(run_instrumented)


def main() -> int:
    best = measure()
    disabled = best["disabled"] / best["none"] - 1.0
    enabled = best["enabled"] / best["none"] - 1.0
    print(f"baseline (no hub):   {best['none'] * 1e3:8.1f} ms")
    print(f"disabled hub:        {best['disabled'] * 1e3:8.1f} ms "
          f"({disabled:+.1%})")
    print(f"enabled hub:         {best['enabled'] * 1e3:8.1f} ms "
          f"({enabled:+.1%}, for information)")
    ok = disabled < MAX_DISABLED_OVERHEAD
    print(f"disabled-overhead budget {MAX_DISABLED_OVERHEAD:.0%}: "
          f"{'PASS' if ok else 'FAIL'}")

    live = measure_live()
    live_disabled = live["disabled"] / live["none"] - 1.0
    live_enabled = live["enabled"] / live["none"] - 1.0
    print(f"live baseline:       {live['none'] * 1e3:8.1f} ms")
    print(f"live disabled hub:   {live['disabled'] * 1e3:8.1f} ms "
          f"({live_disabled:+.1%})")
    print(f"live enabled hub:    {live['enabled'] * 1e3:8.1f} ms "
          f"({live_enabled:+.1%}, for information)")
    live_ok = live_disabled < MAX_LIVE_DISABLED_OVERHEAD
    print(f"live disabled-overhead budget "
          f"{MAX_LIVE_DISABLED_OVERHEAD:.0%}: "
          f"{'PASS' if live_ok else 'FAIL'}")
    return 0 if ok and live_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
