"""Overhead guard: observability must be free when disabled.

The zero-cost contract (docs/observability.md): with no hub installed —
or a *disabled* hub installed — every instrumented component resolves
its hub reference to ``None`` at construction and the simulator runs
the exact pre-obs code paths (``Environment.step`` is not even
wrapped). This bench measures that claim on a real MARP run and fails
if the disabled-hub configuration costs more than 3% wall time against
the no-hub baseline. The *enabled*-hub cost is reported for
information only; it buys the full metric/span stream and has no
budget.

Runs standalone (``python benchmarks/bench_obs_overhead.py``) and under
pytest; CI's tier-1 suite does not include benchmarks, so wall-clock
noise here can never break the build — the 3% assertion uses min-of-N
timing to stay stable anyway.
"""

import time

import pytest

from repro.experiments.runner import RunConfig, run_once
from repro.obs.hub import ObservabilityHub, set_hub

#: generous vs the expected ~0% — the disabled path is identical code.
MAX_DISABLED_OVERHEAD = 0.03
REPEATS = 7

BENCH_CONFIG = RunConfig(
    protocol="marp",
    n_replicas=5,
    mean_interarrival=20.0,
    requests_per_client=15,
    seed=3,
)


def _timed_run(hub):
    """Wall seconds for one run under the given process-wide hub."""
    previous = set_hub(hub)
    try:
        start = time.perf_counter()
        result = run_once(BENCH_CONFIG)
        elapsed = time.perf_counter() - start
    finally:
        set_hub(previous)
    assert result.committed > 0
    return elapsed


def measure(repeats: int = REPEATS):
    """Min-of-N wall time for no-hub / disabled-hub / enabled-hub."""
    timings = {"none": [], "disabled": [], "enabled": []}
    for _ in range(repeats):
        timings["none"].append(_timed_run(None))
        timings["disabled"].append(
            _timed_run(ObservabilityHub(enabled=False))
        )
        timings["enabled"].append(_timed_run(ObservabilityHub()))
    return {name: min(times) for name, times in timings.items()}


def test_disabled_hub_is_free():
    best = measure()
    overhead = best["disabled"] / best["none"] - 1.0
    assert overhead < MAX_DISABLED_OVERHEAD, (
        f"disabled-hub overhead {overhead:+.1%} exceeds "
        f"{MAX_DISABLED_OVERHEAD:.0%} "
        f"(none={best['none'] * 1e3:.1f}ms, "
        f"disabled={best['disabled'] * 1e3:.1f}ms)"
    )


@pytest.mark.benchmark(group="obs")
def test_enabled_hub_run(benchmark):
    def run_instrumented():
        return _timed_run(ObservabilityHub())

    benchmark(run_instrumented)


def main() -> int:
    best = measure()
    disabled = best["disabled"] / best["none"] - 1.0
    enabled = best["enabled"] / best["none"] - 1.0
    print(f"baseline (no hub):   {best['none'] * 1e3:8.1f} ms")
    print(f"disabled hub:        {best['disabled'] * 1e3:8.1f} ms "
          f"({disabled:+.1%})")
    print(f"enabled hub:         {best['enabled'] * 1e3:8.1f} ms "
          f"({enabled:+.1%}, for information)")
    ok = disabled < MAX_DISABLED_OVERHEAD
    print(f"disabled-overhead budget {MAX_DISABLED_OVERHEAD:.0%}: "
          f"{'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
