"""Parallel experiment engine: speedup and byte-equivalence guard.

Runs a 20-point sweep (5 interarrival gaps × 2 cluster sizes × 2
repeats) three ways and compares:

* **serial** — the baseline engine, exactly ``run_once`` in a loop;
* **pool, cold** — ``ParallelRunner(jobs=4)`` over a fresh process
  pool with an empty result cache;
* **cached, warm** — the same runner against the now-populated cache.

Two claims are enforced:

1. **Byte-equivalence** (always): all three executions produce
   identical :func:`result_fingerprint` sequences — parallelism and
   caching may only change wall-clock time, never a measured number.
2. **Speedup ≥ 2.5×** at ``-j 4``: asserted for the *pool* only when
   the machine actually has ≥ 4 usable cores (a single-core container
   cannot parallelise anything); the *warm cache* must deliver ≥ 2.5×
   unconditionally — serving a sweep from disk beats re-simulating it
   on any hardware.

Runs standalone (``python benchmarks/bench_parallel_runner.py``) and
under pytest; benchmarks are outside the tier-1 suite.
"""

import os
import tempfile
import time

from repro.experiments.cache import ResultCache, result_fingerprint
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import RunConfig, repeat_configs

JOBS = 4
MIN_SPEEDUP = 2.5

#: 5 gaps × 2 sizes × 2 repeats = 20 runs, a realistic sweep shape.
GAPS = (20.0, 35.0, 50.0, 80.0, 120.0)
SIZES = (3, 5)
REPEATS = 2


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def sweep_configs():
    """The 20-run batch, repeat seeds derived by stream splitting."""
    return [
        child
        for n in SIZES
        for gap in GAPS
        for child in repeat_configs(
            RunConfig(
                n_replicas=n,
                mean_interarrival=gap,
                requests_per_client=6,
                seed=11,
            ),
            REPEATS,
        )
    ]


def _timed(runner, configs):
    start = time.perf_counter()
    results = runner.run_many(configs)
    return time.perf_counter() - start, [
        result_fingerprint(r) for r in results
    ]


def measure(jobs: int = JOBS):
    """Wall seconds + fingerprints for serial / pool-cold / cache-warm."""
    configs = sweep_configs()
    out = {"runs": len(configs), "cores": _usable_cores(), "jobs": jobs}
    with ParallelRunner() as serial:
        out["serial_s"], out["serial_fp"] = _timed(serial, configs)
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as cache_dir:
        with ParallelRunner(jobs=jobs, cache=ResultCache(cache_dir)) as cold:
            out["pool_s"], out["pool_fp"] = _timed(cold, configs)
        with ParallelRunner(jobs=jobs, cache=ResultCache(cache_dir)) as warm:
            out["warm_s"], out["warm_fp"] = _timed(warm, configs)
    out["pool_speedup"] = out["serial_s"] / out["pool_s"]
    out["warm_speedup"] = out["serial_s"] / out["warm_s"]
    return out


def check(best) -> bool:
    """Apply both claims; returns True when every applicable one holds."""
    assert best["pool_fp"] == best["serial_fp"], (
        "pool execution changed measured results"
    )
    assert best["warm_fp"] == best["serial_fp"], (
        "cached execution changed measured results"
    )
    assert best["warm_speedup"] >= MIN_SPEEDUP, (
        f"warm cache speedup {best['warm_speedup']:.1f}x below "
        f"{MIN_SPEEDUP}x"
    )
    if best["cores"] >= JOBS:
        assert best["pool_speedup"] >= MIN_SPEEDUP, (
            f"-j {JOBS} speedup {best['pool_speedup']:.1f}x below "
            f"{MIN_SPEEDUP}x on {best['cores']} cores"
        )
        return True
    return False  # pool claim not applicable on this machine


def test_parallel_runner_speedup_and_equivalence():
    check(measure())


def main() -> int:
    best = measure()
    pool_checked = check(best)
    print(f"sweep: {best['runs']} runs, -j {best['jobs']} "
          f"on {best['cores']} usable core(s)")
    print(f"serial:        {best['serial_s'] * 1e3:8.1f} ms")
    print(f"pool (cold):   {best['pool_s'] * 1e3:8.1f} ms "
          f"({best['pool_speedup']:.2f}x)")
    print(f"cache (warm):  {best['warm_s'] * 1e3:8.1f} ms "
          f"({best['warm_speedup']:.2f}x)")
    print("fingerprints: serial == pool == cached "
          f"({best['runs']} runs, byte-identical)")
    print(f"warm-cache speedup >= {MIN_SPEEDUP}x: PASS")
    if pool_checked:
        print(f"-j {JOBS} pool speedup >= {MIN_SPEEDUP}x: PASS")
    else:
        print(f"-j {JOBS} pool speedup >= {MIN_SPEEDUP}x: skipped "
              f"(only {best['cores']} usable core(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
