"""S1 & F1 — scalability and availability (paper §1/§5 claims).

* S1: "fully distributed and scalable" — replica-count sweep. Every
  quorum protocol's per-commit cost grows with N; the voting baseline
  degrades faster under the same load.
* F1: availability — with k of 5 replicas permanently down, MARP still
  serves every request homed at a live server while a majority is alive,
  and stalls only below the quorum bound; primary-copy dies with its
  primary.
"""

import pytest

from repro.experiments.availability import run_availability
from repro.experiments.scalability import run_scalability


@pytest.mark.benchmark(group="tables")
def test_s1_scalability(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_scalability(
            protocols=("marp", "mcv"),
            replica_counts=(3, 5, 7),
            requests_per_client=8,
            repeats=1,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("s1_scalability", table.text)

    for protocol in ("marp", "mcv"):
        att = table.series(protocol, "ATT(ms)")
        msgs = table.series(protocol, "msgs/commit")
        # Cost grows with the replica count for every quorum protocol.
        assert att[7] > att[3]
        assert msgs[7] > msgs[3]
    # The voting protocol's latency degrades faster from N=5 to N=7
    # (bigger quorums mean more conflicting vote rounds).
    marp_growth = table.series("marp", "ATT(ms)")[7] / table.series(
        "marp", "ATT(ms)")[5]
    mcv_growth = table.series("mcv", "ATT(ms)")[7] / table.series(
        "mcv", "ATT(ms)")[5]
    assert mcv_growth > marp_growth


@pytest.mark.benchmark(group="tables")
def test_f1_availability(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_availability(
            crash_counts=(0, 1, 2, 3),
            requests_per_client=4,
            repeats=1,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("f1_availability", table.text)

    marp = table.availability("marp")
    # Full service with everyone up; graceful degradation (only the
    # crashed homes' clients are denied) while a majority is alive.
    assert marp[0] == 100.0
    assert marp[1] == pytest.approx(80.0)
    assert marp[2] == pytest.approx(60.0)
    # Below the quorum bound nothing can commit (and nothing diverges).
    assert marp[3] == 0.0

    pc = table.availability("primary-copy")
    assert pc[0] == 100.0
    assert pc[1] == 0.0  # the primary is the first crash victim
