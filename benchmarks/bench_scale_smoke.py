"""CI scale-smoke: the million-request data plane at 100k requests.

Three checks under explicit budgets, each in its own subprocess so
``ru_maxrss`` measures that run alone:

1. **Bulk streaming run** — a 100k-request Zipf scenario (the canonical
   ``scale_config``: 5 replicas x 20k requests, 256 keys, skew 0.99,
   vectorized workload, hygiene windows) must finish consistent within
   the wall-clock and peak-RSS budgets below. This is the shape of the
   acceptance 1M run at a CI-compatible size; throughput is linear in
   request count past ~10k, so a 100k pass predicts the 1M behaviour.
2. **Memory ratio** — the same scenario with ``streaming=False``
   (full-record accounting) must cost at least
   :data:`MIN_MEMORY_RATIO` x more *incremental* memory (RSS over an
   interpreter/workload-free baseline child) than the streaming run:
   streaming accounting is O(1) in request count, full-record is O(N).
3. **Saturation artifact** — a miniature ``run_scale`` sweep (MARP vs
   a quorum baseline) writes the ``repro-scale/v1`` saturation-curve
   JSON that CI uploads as an artifact, and sanity-checks its schema.
4. **Hundreds-of-replicas delta tour** — a fixed-seed N=150 MARP run
   with ``delta_views=True`` (every agent tours all 150 replicas on
   the O(Δ) shared-view plane) must finish consistent, fully
   committed, and within its own wall/RSS budgets.

Runs standalone (``python benchmarks/bench_scale_smoke.py [OUT.json]``)
and under pytest. Budgets are generous vs the measured values (locally
the bulk run takes ~2 min and ~130 MB) to absorb shared-runner noise
without letting a quadratic regression through: the pre-hygiene data
plane blew the wall budget at this size by an order of magnitude.
"""

import json
import resource
import subprocess
import sys
import time

#: wall-clock budget (s) for the 100k-request streaming run.
WALL_BUDGET_S = 900.0
#: peak-RSS budget (MB) for the 100k-request streaming run.
RSS_BUDGET_MB = 500.0
#: full-record accounting must cost at least this many times the
#: streaming run's incremental memory at 100k requests.
MIN_MEMORY_RATIO = 5.0

REQUESTS_PER_CLIENT = 20_000  # x5 replicas = 100k requests
SMOKE_PROTOCOL = "primary-copy"  # the fast bulk plane; MARP-rate runs
                                 # of this size belong to `repro scale`

#: wall-clock budget (s) for the fixed-seed N=150 delta-view tour.
DELTA_WALL_BUDGET_S = 300.0
#: peak-RSS budget (MB) for the fixed-seed N=150 delta-view tour.
DELTA_RSS_BUDGET_MB = 500.0
DELTA_REPLICAS = 150
DELTA_REQUESTS = 1  # per client; one client per replica

_CHILD = """\
import json
import resource
import sys

from repro.experiments.runner import run_once
from repro.experiments.scale import ScaleVariant, scale_config

streaming = sys.argv[1] == "1"
requests = int(sys.argv[2])
protocol = sys.argv[3]
n_replicas = int(sys.argv[4])
delta = sys.argv[5] == "1"
gap = float(sys.argv[6])
config = scale_config(
    protocol,
    ScaleVariant(label="smoke", n_replicas=n_replicas, n_keys=256,
                 key_skew=0.99, delta_views=delta),
    gap,
    requests,
    seed=3,
)
if not streaming:
    config = config.with_(streaming=False)
result = run_once(config)
print(json.dumps({
    "committed": result.committed,
    "consistent": result.audit.consistent,
    "att_p99": result.att_p99,
    "rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
}))
"""


def _child_run(streaming: bool, requests: int,
               protocol: str = SMOKE_PROTOCOL, n_replicas: int = 5,
               delta: bool = False, gap: float = 100.0):
    """One isolated run; returns (doc, wall_seconds)."""
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, "1" if streaming else "0",
         str(requests), protocol, str(n_replicas),
         "1" if delta else "0", str(gap)],
        capture_output=True, text=True,
    )
    wall = time.perf_counter() - start
    if proc.returncode != 0:
        raise AssertionError(
            f"smoke child failed: {proc.stderr.strip()[-800:]}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1]), wall


def test_bulk_streaming_run_within_budgets():
    doc, wall = _child_run(True, REQUESTS_PER_CLIENT)
    print(f"bulk streaming 100k: wall {wall:.1f}s "
          f"rss {doc['rss_mb']:.1f}MB p99 {doc['att_p99']:.1f}ms")
    assert doc["committed"] == REQUESTS_PER_CLIENT * 5
    assert doc["consistent"]
    assert wall < WALL_BUDGET_S, f"wall {wall:.1f}s over {WALL_BUDGET_S}s"
    assert doc["rss_mb"] < RSS_BUDGET_MB, (
        f"peak RSS {doc['rss_mb']:.1f}MB over {RSS_BUDGET_MB}MB"
    )


def test_streaming_memory_at_least_5x_below_full_record():
    base, _ = _child_run(True, 10)  # interpreter + imports floor
    stream, _ = _child_run(True, REQUESTS_PER_CLIENT)
    full, _ = _child_run(False, REQUESTS_PER_CLIENT)
    stream_mb = max(stream["rss_mb"] - base["rss_mb"], 1.0)
    full_mb = full["rss_mb"] - base["rss_mb"]
    ratio = full_mb / stream_mb
    print(f"incremental RSS: streaming {stream_mb:.1f}MB, "
          f"full-record {full_mb:.1f}MB ({ratio:.1f}x)")
    assert stream["committed"] == full["committed"]
    assert ratio >= MIN_MEMORY_RATIO, (
        f"full-record/streaming memory ratio {ratio:.1f}x "
        f"< {MIN_MEMORY_RATIO}x"
    )


def test_saturation_artifact(out_path="output/scale_smoke.json"):
    from repro.experiments.scale import (
        QUICK_INTERARRIVALS, ScaleVariant, run_scale,
    )

    family = run_scale(
        protocols=("marp", "mcv"),
        interarrivals=QUICK_INTERARRIVALS,
        variants=[ScaleVariant(label="smoke", n_keys=16, key_skew=0.99)],
        requests_per_client=30,
        seed=7,
    )
    doc = family.payload()
    assert doc["schema"] == "repro-scale/v1"
    assert {c["protocol"] for c in doc["curves"]} == {"marp", "mcv"}
    for curve in doc["curves"]:
        assert len(curve["points"]) == len(QUICK_INTERARRIVALS)
        assert all(p["consistent"] for p in curve["points"])
    import os

    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote saturation artifact: {out_path}")


def test_delta_view_tour_at_150_replicas():
    doc, wall = _child_run(
        True, DELTA_REQUESTS, protocol="marp",
        n_replicas=DELTA_REPLICAS, delta=True, gap=500.0,
    )
    print(f"delta tour N={DELTA_REPLICAS}: wall {wall:.1f}s "
          f"rss {doc['rss_mb']:.1f}MB p99 {doc['att_p99']:.1f}ms")
    assert doc["committed"] == DELTA_REQUESTS * DELTA_REPLICAS
    assert doc["consistent"]
    assert wall < DELTA_WALL_BUDGET_S, (
        f"wall {wall:.1f}s over {DELTA_WALL_BUDGET_S}s"
    )
    assert doc["rss_mb"] < DELTA_RSS_BUDGET_MB, (
        f"peak RSS {doc['rss_mb']:.1f}MB over {DELTA_RSS_BUDGET_MB}MB"
    )


def main() -> int:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "output/scale_smoke.json"
    test_bulk_streaming_run_within_budgets()
    test_streaming_memory_at_least_5x_below_full_record()
    test_saturation_artifact(out_path)
    test_delta_view_tour_at_150_replicas()
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    print(f"scale smoke OK (driver RSS {rss:.1f}MB)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
