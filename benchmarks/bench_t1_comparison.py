"""T1 — MARP vs message-passing protocols under contention (LAN).

Quantifies the paper's §1/§5 claim: MARP "avoids heavy message
transmission required by conventional replication control protocols for
achieving the quorum". Under write contention, the voting baselines
(MCV, weighted voting) burn retry rounds of request/grant messages,
while MARP's queue-based distributed lock converges in one claim round.
"""

import pytest

from repro.experiments.table_comparison import run_comparison


@pytest.mark.benchmark(group="tables")
def test_t1_protocol_comparison(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_comparison(
            protocols=("marp", "mcv", "weighted-voting", "primary-copy"),
            mean_interarrival=25.0,
            requests_per_client=15,
            repeats=1,
            seed=0,
            title="T1: protocol comparison under contention (LAN, 25ms gaps)",
        ),
        rounds=1,
        iterations=1,
    )
    emit("t1_comparison", table.text)

    marp = table.row_for("marp")
    mcv = table.row_for("mcv")
    wv = table.row_for("weighted-voting")

    # Everyone commits the full workload consistently.
    for row in (marp, mcv, wv):
        assert row.committed == 75.0
        assert row.consistent

    # The paper's claim, quantified: under contention MARP needs fewer
    # control messages AND finishes updates sooner than the voting
    # protocols.
    assert marp.control_messages < mcv.control_messages / 2
    assert marp.control_messages < wv.control_messages / 2
    assert marp.att < mcv.att
    assert marp.att < wv.att
    # MARP is the only protocol that migrates agents.
    assert marp.agent_migrations > 0
    assert mcv.agent_migrations == 0
