"""T2 — LAN vs WAN scaling.

Quantifies the paper's §1 claim that message-passing protocols designed
for closely coupled systems "may not scale to the world-wide Internet
environment": on the heavy-tailed WAN profile every protocol slows, but
the multi-round voting protocols degrade the most, while MARP localises
the lock negotiation in agent visits.
"""

import pytest

from repro.experiments.table_comparison import run_comparison


@pytest.mark.benchmark(group="tables")
def test_t2_wan_scaling(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_comparison(
            protocols=("marp", "mcv", "weighted-voting"),
            latencies=("lan", "wan"),
            mean_interarrival=400.0,
            requests_per_client=8,
            repeats=1,
            seed=0,
            title="T2: LAN vs WAN scaling (400ms gaps)",
        ),
        rounds=1,
        iterations=1,
    )
    emit("t2_wan", table.text)

    for protocol in ("marp", "mcv", "weighted-voting"):
        lan = table.row_for(protocol, "lan")
        wan = table.row_for(protocol, "wan")
        assert lan.consistent and wan.consistent
        # WAN is an order of magnitude slower for everyone.
        assert wan.att > 5 * lan.att

    # On the WAN, MARP's message bill stays below the voting protocols'.
    marp_wan = table.row_for("marp", "wan")
    mcv_wan = table.row_for("mcv", "wan")
    assert marp_wan.control_messages < mcv_wan.control_messages
