"""T3 — Theorem 3 visit bounds.

"The winning mobile agent needs to migrate at least (N+1)/2 and at most
N times in order to know the result." Measured as distinct server visits
before lock acquisition, across low and high contention, for N = 3 and 5.
"""

import pytest

from repro.experiments.ablations import theorem3_bounds


@pytest.mark.benchmark(group="theorems")
@pytest.mark.parametrize("n_replicas", [3, 5])
def test_t3_theorem3_bounds(benchmark, emit, n_replicas):
    report = benchmark.pedantic(
        lambda: theorem3_bounds(
            n_replicas=n_replicas,
            mean_interarrival=25.0,
            requests_per_client=15,
            repeats=2,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit(f"t3_theorem3_n{n_replicas}", report.text)

    assert report.holds
    assert report.lower_bound == n_replicas // 2 + 1
    assert report.upper_bound == n_replicas
    assert report.commits == 2 * 15 * n_replicas


@pytest.mark.benchmark(group="theorems")
def test_t3_lower_bound_attained_without_contention(benchmark, emit):
    """At negligible load the winner stops at exactly ⌈(N+1)/2⌉ visits."""
    report = benchmark.pedantic(
        lambda: theorem3_bounds(
            n_replicas=5,
            mean_interarrival=500.0,
            requests_per_client=6,
            repeats=1,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("t3_uncontended", report.text)
    assert report.observed_min == 3
