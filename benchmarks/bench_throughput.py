"""X1 — update throughput and the saturation knee (extension).

The single-object distributed lock serialises updates; achieved
throughput must plateau at the lock hand-off rate while latency explodes
past the knee.
"""

import pytest

from repro.experiments.throughput import run_throughput


@pytest.mark.benchmark(group="tables")
def test_x1_throughput_saturation(benchmark, emit):
    table = benchmark.pedantic(
        lambda: run_throughput(
            interarrivals=(10.0, 30.0, 80.0, 160.0),
            requests_per_client=15,
            repeats=1,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("x1_throughput", table.text)

    offered = table.offered()
    achieved = table.achieved()
    # Saturation: the two highest offered loads achieve (nearly) the
    # same throughput — the lock's service ceiling.
    assert achieved[0] < offered[0] * 0.5
    assert achieved[0] == pytest.approx(achieved[1], rel=0.25)
    # Uncontended: achieved tracks offered much more closely.
    assert achieved[-1] > offered[-1] * 0.5
    # Everything stays consistent at every load.
    assert all(row[-1] for row in table.rows)
