"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artefact (figure series or comparison
table), *prints* it (visible even under pytest's capture), saves it under
``benchmarks/output/`` and asserts the paper's qualitative shape.
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def emit(capsysbinary_placeholder=None):
    """Print + persist a rendered experiment artefact."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _emit
