#!/usr/bin/env python
"""The paper's motivating scenario: replicas scattered over the Internet.

Five replicas on a heavy-tailed WAN with non-uniform "distances"
(random link costs), transient link faults, and one replica that crashes
mid-run and recovers. Clients at every site generate an update-dominated
workload. The cost-sorted itinerary makes agents prefer nearby replicas,
the retry policy declares unreachable replicas temporarily unavailable,
and the recovery sync catches the crashed replica up.

Run:  python examples/internet_replication.py
"""

from repro import MARP, Deployment
from repro.analysis import alt, att, audit, format_table, prk
from repro.net.faults import CrashSchedule, FaultPlan, TransientLinkFaults
from repro.net.latency import wan_profile
from repro.net.topology import Topology
from repro.replication.client import attach_clients
from repro.sim.rng import RandomStreams
from repro.workload import ExponentialArrivals, OperationMix


def main() -> None:
    seed = 7
    hosts = ["tokyo", "frankfurt", "saopaulo", "boston", "sydney"]

    # Geographically scattered replicas: full mesh, random pairwise
    # "distance" costs that scale the WAN latency.
    streams = RandomStreams(seed)
    topology = Topology.random_costs(
        hosts, streams.stream("geo"), low=0.5, high=2.5
    )

    # Internet conditions (paper §2): long variable latency, frequent
    # short transient failures; boston is down for two simulated minutes.
    faults = FaultPlan(
        crashes=CrashSchedule().add("boston", 30_000, 150_000),
        links=TransientLinkFaults(drop_probability=0.01),
    )

    deployment = Deployment(
        seed=seed,
        topology=topology,
        latency=wan_profile(),
        faults=faults,
    )
    marp = MARP(deployment)

    # Read-dominated workload (the regime the paper designs for) with
    # one update stream per site.
    attach_clients(
        marp,
        ExponentialArrivals(mean=2_000.0),
        OperationMix(write_fraction=0.25, keys=["catalog", "prices"]),
        max_requests_per_client=12,
    )

    deployment.run(until=3_000_000)

    records = marp.records
    committed = [r for r in records if r.status == "committed"]
    reads = [r for r in records if r.status == "read-done"]
    print(
        f"workload: {len(records)} requests -> {len(committed)} updates "
        f"committed, {len(reads)} reads served, "
        f"{len(marp.failed_requests())} failed"
    )
    print(f"ALT = {alt(records):.0f} ms, ATT = {att(records):.0f} ms (WAN)")
    print("lock acquired after K distinct visits:", {
        k: f"{100 * v:.0f}%" for k, v in prk(records, 5).items()
    })

    stats = deployment.network.stats
    print(
        f"traffic: {stats.total_messages('control')} control messages, "
        f"{stats.total_messages('agent')} agent migrations, "
        f"{stats.total_dropped()} transmissions lost to faults"
    )

    report = audit(deployment)
    print(
        f"audit after recovery: consistent={report.consistent} "
        f"complete={report.complete} commits={report.total_commits}"
    )

    rows = []
    for host in deployment.hosts:
        server = deployment.server(host)
        rows.append([
            host,
            len(server.history),
            server.recoveries,
            ", ".join(
                f"{k}=v{vv.version}" for k, vv in sorted(
                    server.store.snapshot().items()
                )
            ),
        ])
    print()
    print(format_table(
        ["replica", "commits", "recoveries", "state"], rows,
        title="replica states",
    ))


if __name__ == "__main__":
    main()
