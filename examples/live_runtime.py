#!/usr/bin/env python
"""The live backend: real threads, real pickled agent migration.

The DES backend reproduces the figures; this backend reproduces the
*prototype*: every replica server is an OS thread (or process — pass
``--process``) with its own mailbox, and an agent migration is a genuine
pickle round-trip over a latency-injected queue, like an Aglet being
serialised between Tahiti servers. The MARP decision logic
(:func:`repro.core.priority.decide` over the Locking Table) is the very
same code the simulator runs.

Run:  python examples/live_runtime.py [--process]
"""

import sys
import time

from repro.runtime import LiveCluster


def main() -> None:
    backend = "process" if "--process" in sys.argv else "thread"
    n_writes = 12

    print(f"starting 3 live replica hosts (backend: {backend}) ...")
    started = time.monotonic()
    with LiveCluster(n_replicas=3, backend=backend, seed=1) as cluster:
        for index in range(n_writes):
            home = cluster.hosts[index % len(cluster.hosts)]
            cluster.submit_write(home, "inventory", 100 + index)
        records = cluster.wait_for(n_writes, timeout=60)
    elapsed = time.monotonic() - started

    committed = [r for r in records if r["status"] == "committed"]
    print(
        f"{len(committed)}/{n_writes} updates committed in "
        f"{elapsed:.1f}s wall time"
    )
    for record in sorted(records, key=lambda r: r["completed_at"]):
        lock_ms = record["completed_at"] - record["dispatched_at"]
        print(
            f"  request {record['request_id']:>2} from {record['home']}: "
            f"{record['status']}, {record['visits_to_lock']} visits, "
            f"{record['hops']} migrations, {lock_ms:.0f} ms"
        )

    report = cluster.audit()
    print(
        f"live audit: consistent={report.consistent}, "
        f"{report.total_commits} commits"
    )
    for host, final in sorted(cluster._finals.items()):
        print(f"  {host}: store={final['store']}")


if __name__ == "__main__":
    main()
