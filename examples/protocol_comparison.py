#!/usr/bin/env python
"""Compare MARP against the classic message-passing protocols.

Runs the identical contended update workload (common random numbers —
same seed, same substrate) under MARP, Majority Consensus Voting,
Weighted Voting, Available Copies and Primary Copy, then prints the
latency/traffic comparison the paper argues qualitatively (T1 in
DESIGN.md).

Run:  python examples/protocol_comparison.py
"""

from repro.analysis import format_table
from repro.experiments import RunConfig, run_once


def main() -> None:
    protocols = [
        "marp", "mcv", "weighted-voting", "available-copies", "primary-copy",
    ]
    rows = []
    for protocol in protocols:
        config = RunConfig(
            protocol=protocol,
            n_replicas=5,
            seed=3,
            mean_interarrival=30.0,  # contended: ~33 updates/s cluster-wide
            requests_per_client=15,
        )
        result = run_once(config)
        rows.append([
            protocol,
            result.committed,
            result.failed,
            result.att,
            result.control_messages,
            result.agent_migrations,
            (result.total_messages / result.committed
             if result.committed else float("nan")),
            result.audit.consistent,
        ])
        print(f"ran {protocol:<17} ATT={result.att:8.1f} ms "
              f"msgs={result.control_messages}")

    print()
    print(format_table(
        ["protocol", "committed", "failed", "ATT(ms)", "ctl msgs",
         "agent hops", "msgs/commit", "consistent"],
        rows,
        title="T1: identical workload, 5 replicas, LAN, 30ms mean gaps",
    ))
    print(
        "\nReading the table: under contention the voting protocols burn\n"
        "retry rounds of LOCK/GRANT/ABORT messages, while MARP's agents\n"
        "queue in the Locking Lists and commit in one claim round each —\n"
        "the paper's 'low message overhead' claim. Primary-copy is the\n"
        "latency floor but is centralised (and fails when the primary\n"
        "does); available-copies trades consistency risk for speed."
    )


if __name__ == "__main__":
    main()
