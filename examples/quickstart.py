#!/usr/bin/env python
"""Quickstart: a 5-replica MARP cluster handling a handful of updates.

Builds the paper's deployment (5 mobile-agent-enabled replica servers on
a LAN), submits a few updates and reads through the public API, runs the
simulation to quiescence, and audits that every replica converged to the
identical state in the identical order.

Run:  python examples/quickstart.py
"""

from repro import Deployment, MARP
from repro.analysis import assert_consistent


def main() -> None:
    # 1. Build the replicated system: 5 servers, full-mesh LAN,
    #    deterministic under the given seed.
    deployment = Deployment(n_replicas=5, seed=42)
    marp = MARP(deployment)

    # 2. Submit updates from different home servers. Each submission
    #    dispatches a mobile agent that tours the replicas, wins the
    #    distributed lock by topping a majority of Locking Lists, and
    #    commits via UPDATE/ACK/COMMIT.
    writes = [
        marp.submit_write("s1", "account", 100),
        marp.submit_write("s3", "account", 250),
        marp.submit_write("s5", "account", 175),
    ]

    # 3. Run the simulation until everything settles.
    deployment.run(until=60_000)

    # 4. A read is served from the local replica (the paper's fast path).
    read = marp.submit_read("s2", "account")
    deployment.run(until=70_000)

    print("Update requests:")
    for record in writes:
        print(
            f"  #{record.request_id} from {record.home}: {record.status}, "
            f"lock after visiting {record.visits_to_lock} servers "
            f"({record.lock_time:.1f} ms), total {record.total_time:.1f} ms"
        )
    print(f"Read at s2 -> {read.value} (version {read.extra['version']})")

    # 5. Audit: identical committed history at every replica.
    report = assert_consistent(deployment)
    print(
        f"Consistency audit: {report.total_commits} commits, "
        f"identical histories at all replicas: {report.identical_histories}"
    )
    for host in deployment.hosts:
        entry = deployment.server(host).store.read("account")
        print(f"  {host}: account = {entry.value} (v{entry.version})")


if __name__ == "__main__":
    main()
