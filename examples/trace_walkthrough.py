#!/usr/bin/env python
"""Watch the MARP protocol execute, event by event.

Enables structured tracing on a 3-replica deployment and walks through
two contending updates: dispatch, cost-sorted touring, Locking-List
ranks at each visit, the majority win, the grant-certified claim round,
and the COMMIT fan-out — the textual equivalent of the visualisation
interface the paper's prototype provided.

Also demonstrates the lock-pipelining extension (paper §3.3): predicting
the full grant order from one agent's Locking Table.

Run:  python examples/trace_walkthrough.py
"""

from repro import Deployment, MARP
from repro.core.priority import rank_queue


def main() -> None:
    deployment = Deployment(n_replicas=3, seed=5)
    trace = deployment.enable_tracing()
    marp = MARP(deployment)

    # Two updates from different servers at the same instant: they race
    # for the distributed lock.
    first = marp.submit_write("s1", "x", "from-s1")
    second = marp.submit_write("s2", "x", "from-s2")
    deployment.run(until=100_000)

    print(trace.render_log(limit=None))
    print()
    print(trace.render_journeys())
    print()
    print("event counts:", dict(sorted(trace.counts().items())))
    print()
    order = [first, second]
    order.sort(key=lambda r: r.lock_acquired_at)
    print(
        f"lock order: #{order[0].request_id} ({order[0].agent_id}) then "
        f"#{order[1].request_id} ({order[1].agent_id})"
    )
    print(
        f"final value everywhere: "
        f"{deployment.server('s3').store.read('x').value!r} (v2)"
    )

    # The pipelining extension: any agent's Locking Table predicts the
    # grant order. Reconstruct the losing agent's mid-run prediction by
    # replaying a fresh table over the servers' current state.
    loser_agent = next(a for a in marp.agents if str(a.agent_id) ==
                       order[1].agent_id)
    predicted = rank_queue(loser_agent.table, deployment.n_replicas,
                           limit=3)
    print("grant-order prediction from the second agent's table:",
          [str(agent_id) for agent_id in predicted] or "(all served)")


if __name__ == "__main__":
    main()
