"""repro — reproduction of "Achieving Replication Consistency Using
Cooperating Mobile Agents" (Cao, Chan & Wu, ICPP 2001).

Primary public API::

    from repro import Deployment, MARP

    deployment = Deployment(n_replicas=5, seed=42)
    marp = MARP(deployment)
    marp.submit_write("s1", "x", 7)
    deployment.run()

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event kernel (SimPy-like).
``repro.net``
    Wide-area network: topologies, latency models, fault injection.
``repro.agents``
    Mobile-agent platform (the Aglets stand-in).
``repro.replication``
    Replica servers (Algorithm 2), stores, locking lists, clients.
``repro.core``
    The MARP protocol (Algorithm 1, priority calculation, batching).
``repro.baselines``
    Message-passing comparators (MCV, weighted voting, ROWA-AC,
    primary copy).
``repro.runtime``
    Live threaded backend with real pickled agent migration.
``repro.workload`` / ``repro.analysis`` / ``repro.experiments``
    Workload generation, metrics (ALT/ATT/PRK), consistency audits and
    the per-figure experiment harness.
"""

from repro._version import __version__
from repro.core.config import MARPConfig
from repro.core.protocol import MARP
from repro.replication.deployment import Deployment
from repro.replication.requests import READ, WRITE, RequestRecord

__all__ = [
    "__version__",
    "Deployment",
    "MARP",
    "MARPConfig",
    "RequestRecord",
    "READ",
    "WRITE",
]
