"""Mobile-agent platform substrate (the Aglets stand-in).

Agents have identity (:class:`AgentId`), carried state sizing their
migrations (:class:`MigrationCostModel`), a per-host runtime
(:class:`AgentPlatform`) with the paper's retry/unavailability policy,
and pluggable itinerary strategies.
"""

from repro.agents.agent import MobileAgent
from repro.agents.directory import PlatformDirectory
from repro.agents.identity import AgentId, AgentIdFactory
from repro.agents.itinerary import (
    CostSorted,
    InitialCostOrder,
    ItineraryStrategy,
    RandomOrder,
    StaticOrder,
    make_itinerary,
)
from repro.agents.mobility import MigrationCostModel
from repro.agents.platform import AgentPlatform, MobilityPolicy

__all__ = [
    "AgentId",
    "AgentIdFactory",
    "MobileAgent",
    "AgentPlatform",
    "MobilityPolicy",
    "PlatformDirectory",
    "MigrationCostModel",
    "ItineraryStrategy",
    "CostSorted",
    "InitialCostOrder",
    "StaticOrder",
    "RandomOrder",
    "make_itinerary",
]
