"""The mobile agent abstraction.

A :class:`MobileAgent` is an autonomous object with identity, carried
state, and a location (the platform currently hosting it). Its behaviour
is a single generator (``behavior()``) driven by the simulation kernel;
migration is performed *inline* with ``yield from self.migrate(dst)``, so
protocol code reads exactly like the paper's Algorithm 1 — "written from
the point of view of the navigating mobile agent".

(Aglets-style weak mobility — restart ``onArrival`` at each hop — is what
the live threaded backend in :mod:`repro.runtime` implements; in the DES
backend the continuation-style is equivalent and far clearer.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import AgentDisposed
from repro.agents.identity import AgentId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.platform import AgentPlatform

__all__ = ["MobileAgent"]


class MobileAgent:
    """Base class for all mobile agents.

    Subclasses implement :meth:`behavior` (a generator) and may override
    :meth:`state` to declare the data they carry, which determines
    migration cost.

    Attributes
    ----------
    agent_id:
        Unique, totally ordered identity.
    home:
        Host where the agent was created.
    location:
        Host currently executing the agent (``None`` before launch or
        after disposal).
    hops:
        Number of completed migrations.
    travel_log:
        ``(time, host)`` pairs, one per arrival (including launch).
    """

    def __init__(self, agent_id: AgentId) -> None:
        self.agent_id = agent_id
        self.home = agent_id.host
        self.platform: Optional["AgentPlatform"] = None
        self.hops = 0
        self.travel_log: List[Tuple[float, str]] = []
        self.disposed = False

    # -- state & identity ---------------------------------------------------

    @property
    def location(self) -> Optional[str]:
        return self.platform.host if self.platform is not None else None

    def state(self) -> Dict[str, Any]:
        """Data carried across migrations (sizes the transfer).

        Subclasses should return everything the agent 'packs in its
        suitcase'; the base agent carries only its identity.
        """
        return {"agent_id": self.agent_id}

    # -- behaviour ------------------------------------------------------------

    def behavior(self):  # pragma: no cover - abstract
        """The agent's life as a generator; yield simulation events."""
        raise NotImplementedError
        yield  # make this a generator even if the subclass forgets

    # -- mobility --------------------------------------------------------------

    def migrate(self, dst: str):
        """Sub-generator: move this agent to ``dst``.

        Use as ``yield from self.migrate(dst)``. Applies the platform's
        retry policy; raises
        :class:`~repro.errors.ReplicaUnavailable` when the destination is
        declared unavailable (paper §2), leaving the agent where it was.
        """
        self._require_live()
        if self.platform is None:
            raise AgentDisposed(f"{self} has no platform to migrate from")
        destination_platform = yield from self.platform.transfer(self, dst)
        return destination_platform

    def dispose(self) -> None:
        """End the agent's life (paper Algorithm 1's final ``dispose``)."""
        if self.disposed:
            return
        self.disposed = True
        if self.platform is not None:
            self.platform.remove(self)
            self.platform = None

    # -- bookkeeping (called by platforms) --------------------------------------

    def _record_arrival(self, time: float, host: str) -> None:
        self.travel_log.append((time, host))

    def _require_live(self) -> None:
        if self.disposed:
            raise AgentDisposed(f"{self} has been disposed")

    def __repr__(self) -> str:
        where = self.location or "nowhere"
        return f"<{type(self).__name__} {self.agent_id} at {where}>"
