"""Platform directory: name service mapping hosts to agent platforms.

The Aglets runtime addressed aglet contexts by URL; here a simple
directory shared by all platforms of one deployment plays that role.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List

from repro.errors import AgentError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.agents.platform import AgentPlatform

__all__ = ["PlatformDirectory"]


class PlatformDirectory:
    """Registry of live agent platforms, keyed by host name."""

    def __init__(self) -> None:
        self._platforms: Dict[str, "AgentPlatform"] = {}

    def register(self, platform: "AgentPlatform") -> None:
        if platform.host in self._platforms:
            raise AgentError(
                f"platform for host {platform.host!r} already registered"
            )
        self._platforms[platform.host] = platform

    def lookup(self, host: str) -> "AgentPlatform":
        try:
            return self._platforms[host]
        except KeyError:
            raise AgentError(f"no platform registered for host {host!r}") from None

    def __contains__(self, host: str) -> bool:
        return host in self._platforms

    def __iter__(self) -> Iterator["AgentPlatform"]:
        return iter(self._platforms.values())

    def __len__(self) -> int:
        return len(self._platforms)

    @property
    def hosts(self) -> List[str]:
        return sorted(self._platforms)

    def __repr__(self) -> str:
        return f"<PlatformDirectory hosts={self.hosts}>"
