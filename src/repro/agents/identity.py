"""Agent identity.

Paper §3.2: "When a mobile agent is created, it is assigned a unique
identifier consisting of the host-name of the replicated server where the
mobile agent is created plus the local creation time." Ties in the MARP
priority calculation are resolved "by using the mobile agents'
identifiers", so identifiers must be **totally ordered**; we order by
``(created_at, host, seq)`` — creation time first, which makes the
tie-break FIFO-flavoured — and add a per-host sequence number so two
agents created at the same host at the same instant remain distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import total_ordering
from typing import Dict

__all__ = ["AgentId", "AgentIdFactory"]

#: UTF-8 length per host name — identifiers are sized once per message
#: per carried id, and the host-name population is tiny.
_HOST_BYTES: Dict[str, int] = {}


@total_ordering
@dataclass(frozen=True)
class AgentId:
    """Globally unique, totally ordered mobile-agent identifier."""

    host: str
    created_at: float
    seq: int = 0

    def _key(self):
        return (self.created_at, self.host, self.seq)

    def __lt__(self, other: "AgentId") -> bool:
        if not isinstance(other, AgentId):
            return NotImplemented
        return self._key() < other._key()

    def __str__(self) -> str:
        return f"{self.host}@{self.created_at:g}#{self.seq}"

    def wire_size(self) -> int:
        """Bytes this identifier occupies on the wire."""
        host = self.host
        size = _HOST_BYTES.get(host)
        if size is None:
            _HOST_BYTES[host] = size = len(host.encode("utf-8"))
        return size + 8 + 4


class AgentIdFactory:
    """Per-host factory guaranteeing unique sequence numbers.

    A single factory instance is shared by everything creating agents at
    one host (the replica server's dispatcher in MARP).
    """

    def __init__(self, host: str) -> None:
        self.host = host
        self._seq_at: Dict[float, int] = {}

    def new(self, created_at: float) -> AgentId:
        seq = self._seq_at.get(created_at, 0)
        self._seq_at[created_at] = seq + 1
        return AgentId(host=self.host, created_at=created_at, seq=seq)
