"""Itinerary strategies: choosing the next server to visit.

Paper §3.2: the Un-visited Servers List (USL) "is sorted by the cost of
travelling from the current location" and the routing information provided
by each server is used "to determine the replicated server to visit
next". That is the :class:`CostSorted` strategy (greedy
nearest-unvisited-first, re-evaluated after every hop). The alternatives
here exist for the A1 ablation (DESIGN.md).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.net.topology import Topology
from repro.sim.rng import Stream

__all__ = [
    "ItineraryStrategy",
    "CostSorted",
    "InitialCostOrder",
    "StaticOrder",
    "RandomOrder",
    "make_itinerary",
]


class ItineraryStrategy:
    """Chooses the next destination from the unvisited set."""

    name = "abstract"

    def next_host(
        self,
        current: str,
        unvisited: Sequence[str],
        topology: Topology,
        stream: Optional[Stream] = None,
    ) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Itinerary {self.name}>"


class CostSorted(ItineraryStrategy):
    """The paper's strategy: cheapest unvisited server from *here*.

    Greedy nearest-neighbour, re-evaluated at every hop using the routing
    table of the current server.
    """

    name = "cost-sorted"

    def next_host(self, current, unvisited, topology, stream=None) -> str:
        if not unvisited:
            raise ValueError("no unvisited hosts to choose from")
        return topology.neighbors_by_cost(current, unvisited)[0]


class InitialCostOrder(ItineraryStrategy):
    """Sort once by cost from the agent's *home*, then follow that order.

    Models an agent that plans its whole tour at dispatch time and never
    adapts (cheaper to compute, blind to its own movement).
    """

    name = "initial-cost-order"

    def __init__(self, home: str) -> None:
        self.home = home
        self._plan: Optional[List[str]] = None

    def next_host(self, current, unvisited, topology, stream=None) -> str:
        if not unvisited:
            raise ValueError("no unvisited hosts to choose from")
        if self._plan is None:
            self._plan = topology.neighbors_by_cost(self.home, unvisited)
        for host in self._plan:
            if host in unvisited:
                return host
        # Hosts added after planning (shouldn't happen in MARP): fall back.
        return sorted(unvisited)[0]


class StaticOrder(ItineraryStrategy):
    """Visit servers in a fixed global order (by name)."""

    name = "static-order"

    def next_host(self, current, unvisited, topology, stream=None) -> str:
        if not unvisited:
            raise ValueError("no unvisited hosts to choose from")
        return sorted(unvisited)[0]


class RandomOrder(ItineraryStrategy):
    """Uniformly random next hop (a lower bound for planned itineraries)."""

    name = "random-order"

    def next_host(self, current, unvisited, topology, stream=None) -> str:
        if not unvisited:
            raise ValueError("no unvisited hosts to choose from")
        if stream is None:
            raise ValueError("RandomOrder requires a random stream")
        return stream.choice(sorted(unvisited))


def make_itinerary(name: str, home: str = "") -> ItineraryStrategy:
    """Factory by strategy name (for CLI/experiment configuration)."""
    if name == CostSorted.name:
        return CostSorted()
    if name == InitialCostOrder.name:
        return InitialCostOrder(home)
    if name == StaticOrder.name:
        return StaticOrder()
    if name == RandomOrder.name:
        return RandomOrder()
    raise ValueError(f"unknown itinerary strategy {name!r}")
