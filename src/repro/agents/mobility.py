"""Migration cost model.

A migrating agent is serialised and shipped over the network; its transfer
time therefore depends on how much state it carries. The paper's agents
grow as they travel (the Locking Table accumulates per-server lock
views), so migration cost rises with hop count — an effect the evaluation
implicitly contains and that we model explicitly.
"""

from __future__ import annotations

from repro.net.message import estimate_size

__all__ = ["MigrationCostModel"]


class MigrationCostModel:
    """Computes the wire size of a migrating agent.

    Parameters
    ----------
    base_bytes:
        Fixed cost of shipping the agent's code + runtime envelope. The
        Aglets prototype shipped Java bytecode with each aglet; 2 KB is a
        reasonable envelope for a small agent class.
    serialization_overhead:
        Multiplier applied to the state estimate (headers, type tags).
    """

    def __init__(
        self, base_bytes: int = 2048, serialization_overhead: float = 1.2
    ) -> None:
        if base_bytes < 0:
            raise ValueError(f"base_bytes must be >= 0: {base_bytes}")
        if serialization_overhead < 1.0:
            raise ValueError(
                f"serialization_overhead must be >= 1: {serialization_overhead}"
            )
        self.base_bytes = base_bytes
        self.serialization_overhead = serialization_overhead

    def size_of(self, agent) -> int:
        """Wire size in bytes for ``agent`` (uses its ``state()`` hook)."""
        state = agent.state()
        return int(
            self.base_bytes
            + self.serialization_overhead * estimate_size(state)
        )

    def __repr__(self) -> str:
        return (
            f"MigrationCostModel(base={self.base_bytes}, "
            f"overhead={self.serialization_overhead})"
        )
