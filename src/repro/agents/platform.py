"""Per-host agent platform (the Aglets "context" / Tahiti server).

A platform hosts agents at one network host, launches their behaviours as
simulation processes, and performs migrations with the paper's failure
policy (§2): a migration attempt that does not complete within a timeout
is retried; after a configured number of unsuccessful attempts the
destination replica is declared unavailable for the current round and the
agent stays put.

Platforms also expose named local *services* — the stationary processes
agents interact with ("we assume that mobile agents are capable of
interacting with the stationary server processes", §2). In MARP the
replica server registers itself as the ``"replica"`` service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from repro.errors import AgentError, MigrationError, ReplicaUnavailable
from repro.agents.agent import MobileAgent
from repro.agents.directory import PlatformDirectory
from repro.agents.identity import AgentId, AgentIdFactory
from repro.agents.mobility import MigrationCostModel
from repro.net.network import Network
from repro.sim.core import Environment, Process

__all__ = ["AgentPlatform", "MobilityPolicy"]


@dataclass
class MobilityPolicy:
    """Retry/timeout policy for migrations (paper §2).

    Attributes
    ----------
    migration_timeout:
        Milliseconds after which an in-flight migration is presumed
        failed ("If a mobile agent cannot migrate ... after certain
        amount of time, the protocol assumes that the replica process at
        the host has temporarily failed").
    max_attempts:
        Attempts before the destination is declared unavailable ("After
        certain number of such unsuccessful attempts, the protocol
        declares the replica unavailable").
    retry_backoff:
        Extra delay between attempts, multiplied by the attempt number.
    """

    migration_timeout: float = 500.0
    max_attempts: int = 3
    retry_backoff: float = 50.0

    def __post_init__(self) -> None:
        if self.migration_timeout <= 0:
            raise AgentError("migration_timeout must be > 0")
        if self.max_attempts < 1:
            raise AgentError("max_attempts must be >= 1")
        if self.retry_backoff < 0:
            raise AgentError("retry_backoff must be >= 0")


class AgentPlatform:
    """Agent runtime bound to one host of the network."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        host: str,
        directory: PlatformDirectory,
        policy: Optional[MobilityPolicy] = None,
        cost_model: Optional[MigrationCostModel] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.host = host
        self.directory = directory
        self.policy = policy or MobilityPolicy()
        self.cost_model = cost_model or MigrationCostModel()
        self.endpoint = network.register(host)
        self.id_factory = AgentIdFactory(host)
        self.residents: Set[MobileAgent] = set()
        self._services: Dict[str, Any] = {}
        self.migrations_out = 0
        self.migrations_failed = 0
        directory.register(self)

    # -- services ---------------------------------------------------------

    def provide(self, name: str, service: Any) -> None:
        """Expose a stationary service to visiting agents."""
        if name in self._services:
            raise AgentError(f"service {name!r} already provided at {self.host}")
        self._services[name] = service

    def service(self, name: str) -> Any:
        try:
            return self._services[name]
        except KeyError:
            raise AgentError(
                f"no service {name!r} at host {self.host!r}"
            ) from None

    # -- agent lifecycle -----------------------------------------------------

    def new_agent_id(self) -> AgentId:
        return self.id_factory.new(self.env.now)

    def launch(self, agent: MobileAgent, name: Optional[str] = None) -> Process:
        """Start a freshly created agent's behaviour at this platform."""
        if agent.platform is not None:
            raise AgentError(f"{agent} is already hosted at {agent.location}")
        agent._require_live()
        agent.platform = self
        self.residents.add(agent)
        agent._record_arrival(self.env.now, self.host)
        return self.env.process(
            agent.behavior(), name=name or f"agent-{agent.agent_id}"
        )

    def remove(self, agent: MobileAgent) -> None:
        """Detach a disposed or departing agent."""
        self.residents.discard(agent)

    # -- migration --------------------------------------------------------------

    def transfer(self, agent: MobileAgent, dst: str):
        """Sub-generator moving ``agent`` from this platform to ``dst``.

        Applies the retry policy. On success returns the destination
        platform (the agent is re-homed and its arrival recorded). On
        exhaustion raises :class:`ReplicaUnavailable` with the agent still
        resident here.
        """
        if agent.platform is not self:
            raise AgentError(
                f"{agent} is not resident at {self.host} (at {agent.location})"
            )
        if dst == self.host:
            return self  # trivially "migrated"
        if dst not in self.directory:
            raise AgentError(f"unknown destination host {dst!r}")

        size = self.cost_model.size_of(agent)
        last_error: Optional[MigrationError] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            self.migrations_out += 1
            try:
                yield from self.network.attempt_transfer(
                    self.host,
                    dst,
                    size,
                    timeout=self.policy.migration_timeout,
                    kind="AGENT",
                )
            except MigrationError as err:
                self.migrations_failed += 1
                last_error = err
                if attempt < self.policy.max_attempts and self.policy.retry_backoff:
                    yield self.env.timeout(self.policy.retry_backoff * attempt)
                continue
            # Success: re-home the agent.
            destination = self.directory.lookup(dst)
            self.residents.discard(agent)
            agent.platform = destination
            destination.residents.add(agent)
            agent.hops += 1
            agent._record_arrival(self.env.now, dst)
            return destination

        raise ReplicaUnavailable(
            f"replica {dst!r} declared unavailable after "
            f"{self.policy.max_attempts} failed migration attempts "
            f"(last: {last_error})",
            replica=dst,
        )

    def __repr__(self) -> str:
        return (
            f"<AgentPlatform {self.host!r} residents={len(self.residents)} "
            f"services={sorted(self._services)}>"
        )
