"""Analysis layer: paper metrics, consistency audits, stats, tables."""

from repro.analysis.consistency import AuditReport, assert_consistent, audit
from repro.analysis.metrics import (
    alt,
    att,
    committed_writes,
    prk,
    response_times,
    throughput,
    visit_counts,
)
from repro.analysis.export import (
    ablation_to_csv,
    comparison_to_csv,
    comparison_to_json,
    figure_to_csv,
    figure_to_json,
)
from repro.analysis.stats import Summary, confidence_interval, summarize
from repro.analysis.tables import format_series, format_table
from repro.analysis.tracelog import ProtocolTrace, TraceEvent

__all__ = [
    "alt",
    "att",
    "prk",
    "visit_counts",
    "committed_writes",
    "response_times",
    "throughput",
    "AuditReport",
    "audit",
    "assert_consistent",
    "Summary",
    "summarize",
    "confidence_interval",
    "format_table",
    "format_series",
    "ProtocolTrace",
    "TraceEvent",
    "figure_to_csv",
    "figure_to_json",
    "comparison_to_csv",
    "comparison_to_json",
    "ablation_to_csv",
]
