"""ASCII chart rendering for figure data.

The benchmark harness is plotting-library-free; these charts give the
regenerated figures a visual shape directly in the terminal (alongside
the exact numbers from :mod:`repro.analysis.tables`).
"""

from __future__ import annotations

import math
from typing import List, Sequence

__all__ = ["ascii_chart", "sparkline"]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar sketch of a series (empty string for no data)."""
    data = [v for v in values if not math.isnan(v)]
    if not data:
        return ""
    low, high = min(data), max(data)
    span = high - low
    out = []
    for value in values:
        if math.isnan(value):
            out.append(" ")
            continue
        level = 0 if span == 0 else int(
            (value - low) / span * (len(_SPARK_LEVELS) - 1)
        )
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def ascii_chart(
    x_values: Sequence[float],
    series: "dict[str, Sequence[float]]",
    width: int = 60,
    height: int = 12,
    x_label: str = "",
    title: str = "",
) -> str:
    """Multi-series ASCII scatter/line chart.

    Each series is plotted with its own marker; axes are annotated with
    the value ranges. Intended for monotone experiment series, not as a
    general plotting tool.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    markers = "ox+*#@%&"
    names = list(series)
    all_y = [
        v for name in names for v in series[name] if not math.isnan(v)
    ]
    if not all_y or not x_values:
        return "(no data)"
    y_low, y_high = min(all_y), max(all_y)
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = min(x_values), max(x_values)
    if x_high == x_low:
        x_high = x_low + 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]

    def place(x: float, y: float, marker: str) -> None:
        col = int((x - x_low) / (x_high - x_low) * (width - 1))
        row = int((y - y_low) / (y_high - y_low) * (height - 1))
        grid[height - 1 - row][col] = marker

    for index, name in enumerate(names):
        marker = markers[index % len(markers)]
        for x, y in zip(x_values, series[name]):
            if not math.isnan(y):
                place(x, y, marker)

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(
        len(f"{y_high:.4g}"), len(f"{y_low:.4g}")
    )
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_high:.4g}".rjust(label_width)
        elif row_index == height - 1:
            label = f"{y_low:.4g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    x_axis = f"{' ' * label_width} +{'-' * width}"
    lines.append(x_axis)
    x_annot = (
        f"{' ' * label_width}  {f'{x_low:.4g}'}"
        f"{' ' * max(1, width - len(f'{x_low:.4g}') - len(f'{x_high:.4g}'))}"
        f"{f'{x_high:.4g}'}"
    )
    lines.append(x_annot)
    if x_label:
        lines.append(f"{' ' * label_width}  {x_label.center(width)}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(names)
    )
    lines.append(f"{' ' * label_width}  {legend}")
    return "\n".join(lines)
