"""Post-run consistency audits (DESIGN.md §5).

The auditor inspects every replica's store and commit history after a
run and checks, in decreasing order of strength:

* **identical histories** — every replica committed exactly the same
  sequence (the paper's "order preserving" claim; can legitimately be
  weakened by in-flight COMMIT reordering on heavy-tailed links, where a
  replica skips a superseded version);
* **divergence-free** — the same ``(key, version)`` never maps to
  different requests/values at different replicas (the single-copy
  illusion; violated e.g. by Available Copies under partition);
* **monotone** — each replica applied strictly increasing versions per
  key;
* **complete** — every replica holds every committed version (write-all
  application; gaps arise from crashes or skipped superseded versions);
* **final-state equality** — all stores agree at quiescence.

``consistent`` (the invariant every run must satisfy) requires
divergence-free + monotone + final-state equality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConsistencyViolation
from repro.replication.deployment import Deployment

__all__ = ["AuditReport", "audit", "assert_consistent", "commit_slots"]


@dataclass
class AuditReport:
    """Outcome of one consistency audit."""

    final_state_equal: bool
    divergence_free: bool
    monotone: bool
    complete: bool
    identical_histories: bool
    total_commits: int
    problems: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """The invariants every (failure-free or recovered) run must hold."""
        return self.final_state_equal and self.divergence_free and self.monotone

    def __repr__(self) -> str:
        return (
            f"<AuditReport consistent={self.consistent} "
            f"final={self.final_state_equal} divergence_free={self.divergence_free} "
            f"monotone={self.monotone} complete={self.complete} "
            f"identical={self.identical_histories} commits={self.total_commits}>"
        )


def audit(deployment: Deployment, exclude=()) -> AuditReport:
    """Audit the replicas of a deployment. Never raises.

    ``exclude`` names replicas to leave out — hosts that are down at
    audit time and will only converge after a recovery sync that cannot
    happen within the run (e.g. the permanently crashed replicas of the
    availability experiment).
    """
    excluded = set(exclude)
    hosts = [h for h in deployment.hosts if h not in excluded]
    problems: List[str] = []

    # --- final-state equality ------------------------------------------------
    finals = {}
    for host in hosts:
        snapshot = deployment.server(host).store.snapshot()
        finals[host] = tuple(
            sorted(
                (key, vv.version, repr(vv.value))
                for key, vv in snapshot.items()
            )
        )
    final_state_equal = len(set(finals.values())) <= 1
    if not final_state_equal:
        problems.append(
            "final states differ: "
            + "; ".join(f"{h}={finals[h]}" for h in hosts)
        )

    # --- per-replica monotonicity ------------------------------------------
    monotone = True
    for host in hosts:
        last_version: Dict[str, int] = {}
        for record in deployment.server(host).history:
            prev = last_version.get(record.key, 0)
            if record.version <= prev:
                monotone = False
                problems.append(
                    f"{host}: non-monotone version {record.version} <= "
                    f"{prev} for key {record.key!r}"
                )
            last_version[record.key] = record.version

    # --- divergence: (key, version) -> (request, value) must be global ----
    divergence_free = True
    seen: Dict[Tuple[str, int], Tuple[int, str, str]] = {}
    for host in hosts:
        for record in deployment.server(host).history:
            slot = (record.key, record.version)
            claim = (record.request_id, repr(record.value), host)
            prior = seen.get(slot)
            if prior is None:
                seen[slot] = claim
            elif prior[:2] != claim[:2]:
                divergence_free = False
                problems.append(
                    f"divergent commit at {slot}: {prior} vs {claim}"
                )

    # --- completeness: every replica has every committed version ----------
    committed_slots = set(seen)
    complete = True
    for host in hosts:
        have = {
            (r.key, r.version) for r in deployment.server(host).history
        }
        missing = committed_slots - have
        if missing:
            complete = False
            problems.append(
                f"{host} missing {len(missing)} committed versions "
                f"(e.g. {sorted(missing)[:3]})"
            )

    # --- identical full histories ------------------------------------------
    identities = {
        host: tuple(deployment.server(host).history.identities())
        for host in hosts
    }
    identical_histories = len(set(identities.values())) <= 1

    return AuditReport(
        final_state_equal=final_state_equal,
        divergence_free=divergence_free,
        monotone=monotone,
        complete=complete,
        identical_histories=identical_histories,
        total_commits=len(committed_slots),
        problems=problems,
    )


def commit_slots(deployment: Deployment) -> Tuple[Tuple[str, int, int, str], ...]:
    """The global commit map: one ``(key, version, request_id, value)``
    per committed version slot, deduplicated across replicas and sorted.

    Under the paper's Theorems 1/2 every conflict round elects exactly
    one winner, so each ``(key, version)`` slot is owned by exactly one
    request — the property-test suite asserts this on the returned
    tuple. Unlike a live :class:`Deployment`, the tuple is plain data:
    it survives pickling across process-pool workers and the result
    cache, so theorem checks run identically on serial, parallel and
    cached results.
    """
    claims: Dict[Tuple[str, int], set] = {}
    for host in deployment.hosts:
        for record in deployment.server(host).history:
            slot = (record.key, record.version)
            claims.setdefault(slot, set()).add(
                (record.request_id, repr(record.value))
            )
    # A divergent run (two owners for one slot) yields one tuple entry
    # per claimed owner, so uniqueness violations stay visible.
    return tuple(
        (key, version, request_id, value)
        for (key, version), owners in sorted(claims.items())
        for request_id, value in sorted(owners)
    )


def assert_consistent(deployment: Deployment) -> AuditReport:
    """Audit and raise :class:`ConsistencyViolation` on failure."""
    report = audit(deployment)
    if not report.consistent:
        raise ConsistencyViolation(
            "consistency audit failed:\n  " + "\n  ".join(report.problems)
        )
    return report
