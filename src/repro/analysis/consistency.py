"""Post-run consistency audits (DESIGN.md §5).

The auditor inspects every replica's store and commit history after a
run and checks, in decreasing order of strength:

* **identical histories** — every replica committed exactly the same
  sequence (the paper's "order preserving" claim; can legitimately be
  weakened by in-flight COMMIT reordering on heavy-tailed links, where a
  replica skips a superseded version);
* **divergence-free** — the same ``(key, version)`` never maps to
  different requests/values at different replicas (the single-copy
  illusion; violated e.g. by Available Copies under partition);
* **monotone** — each replica applied strictly increasing versions per
  key;
* **complete** — every replica holds every committed version (write-all
  application; gaps arise from crashes or skipped superseded versions);
* **final-state equality** — all stores agree at quiescence.

``consistent`` (the invariant every run must satisfy) requires
divergence-free + monotone + final-state equality.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConsistencyViolation
from repro.replication.deployment import Deployment

__all__ = [
    "AuditReport", "audit", "assert_consistent", "commit_slots",
    "ChainDigest", "streaming_audit",
]


@dataclass
class AuditReport:
    """Outcome of one consistency audit."""

    final_state_equal: bool
    divergence_free: bool
    monotone: bool
    complete: bool
    identical_histories: bool
    total_commits: int
    problems: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        """The invariants every (failure-free or recovered) run must hold."""
        return self.final_state_equal and self.divergence_free and self.monotone

    def __repr__(self) -> str:
        return (
            f"<AuditReport consistent={self.consistent} "
            f"final={self.final_state_equal} divergence_free={self.divergence_free} "
            f"monotone={self.monotone} complete={self.complete} "
            f"identical={self.identical_histories} commits={self.total_commits}>"
        )


class ChainDigest:
    """Incremental sha256 commit-chain fingerprint for one replica.

    Attached as a :meth:`HistoryLog.stream_to` sink, it folds each
    :class:`~repro.core.machines.structures.CommitRecord` into a rolling
    whole-history digest and per-key chain digests the moment the commit
    applies — no chain is ever stored, so streaming runs audit
    consistency in O(keys) memory instead of O(commits).

    Each commit contributes the canonical token
    ``[key, version, request_id - id_base, repr(value), origin]``.
    ``committed_at`` is deliberately excluded: apply times legitimately
    differ across replicas (and backends), while the token fields must
    not. Request ids come from a process-global counter, so ``id_base``
    (the run's first request id, supplied by the runner) normalises
    them — digests of the same seeded run are then byte-identical in
    the serial path, a pool worker and a fresh interpreter, exactly
    like :func:`~repro.experiments.cache.result_payload` records. Two
    replicas that committed the same chains therefore produce identical
    digests, and replaying a *stored* history through a fresh
    ``ChainDigest`` with the same ``id_base`` reproduces the in-run
    incremental digest exactly — the parity property the streaming
    tests pin.
    """

    def __init__(self, host: str, id_base: int = 0) -> None:
        self.host = host
        self.id_base = id_base
        self._whole = hashlib.sha256()
        self._per_key: Dict[str, "hashlib._Hash"] = {}
        self._last_version: Dict[str, int] = {}
        self.commits = 0
        self.monotone = True
        self.problems: List[str] = []

    def observe(self, record) -> None:
        """Fold one commit (call in local apply order)."""
        key = record.key
        version = record.version
        prev = self._last_version.get(key, 0)
        if version <= prev:
            self.monotone = False
            if len(self.problems) < 8:
                self.problems.append(
                    f"{self.host}: non-monotone version {version} <= "
                    f"{prev} for key {key!r}"
                )
        self._last_version[key] = version
        token = json.dumps(
            [key, version, record.request_id - self.id_base,
             repr(record.value), record.origin],
            separators=(",", ":"),
        ).encode("utf-8")
        self._whole.update(token)
        per_key = self._per_key.get(key)
        if per_key is None:
            per_key = self._per_key[key] = hashlib.sha256()
        per_key.update(token)
        self.commits += 1

    # Also usable directly as a HistoryLog sink.
    __call__ = observe

    def whole_digest(self) -> str:
        """Rolling digest of the full commit sequence (order-sensitive)."""
        return self._whole.hexdigest()

    def per_key_digests(self) -> Dict[str, str]:
        return {key: h.hexdigest() for key, h in self._per_key.items()}

    def fingerprint(self) -> str:
        """Canonical fingerprint over the per-key chain digests."""
        text = json.dumps(
            self.per_key_digests(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:
        return (
            f"<ChainDigest {self.host!r} commits={self.commits} "
            f"monotone={self.monotone}>"
        )


def streaming_audit(
    deployment: Deployment, digests: Dict[str, ChainDigest], exclude=()
) -> AuditReport:
    """Audit a streaming run from rolling chain digests. Never raises.

    Same report shape as :func:`audit`, computed without stored
    histories. ``final_state_equal`` and ``monotone`` are exact (stores
    are O(keys) and stay resident; monotonicity was checked per-commit
    by each digest). ``identical_histories``, ``divergence_free`` and
    ``complete`` are all derived from digest equality, which is a
    *stricter* approximation: identical per-key chains imply all three,
    but a run the batch auditor would classify as divergence-free with
    merely non-identical histories (e.g. a benignly skipped superseded
    version) reports all three False here, with a problem entry saying
    so. Fault-free scale runs — the streaming mode's use case — always
    produce identical chains.
    """
    excluded = set(exclude)
    hosts = [h for h in deployment.hosts if h not in excluded]
    problems: List[str] = []

    finals = {}
    for host in hosts:
        snapshot = deployment.server(host).store.snapshot()
        finals[host] = tuple(
            sorted(
                (key, vv.version, repr(vv.value))
                for key, vv in snapshot.items()
            )
        )
    final_state_equal = len(set(finals.values())) <= 1
    if not final_state_equal:
        problems.append(
            "final states differ: "
            + "; ".join(f"{h}={finals[h]}" for h in hosts)
        )

    audited = [digests[host] for host in hosts if host in digests]
    monotone = all(digest.monotone for digest in audited)
    for digest in audited:
        problems.extend(digest.problems)

    whole = {digest.whole_digest() for digest in audited}
    identical_histories = len(whole) <= 1
    chains_equal = (
        len({digest.fingerprint() for digest in audited}) <= 1
    )
    if not chains_equal:
        problems.append(
            "per-key chain digests differ across replicas (streaming "
            "audit cannot distinguish divergence from benign history "
            "gaps; rerun with full records to classify)"
        )

    return AuditReport(
        final_state_equal=final_state_equal,
        divergence_free=chains_equal,
        monotone=monotone,
        complete=chains_equal,
        identical_histories=identical_histories,
        total_commits=max(
            (digest.commits for digest in audited), default=0
        ),
        problems=problems,
    )


def audit(deployment: Deployment, exclude=()) -> AuditReport:
    """Audit the replicas of a deployment. Never raises.

    ``exclude`` names replicas to leave out — hosts that are down at
    audit time and will only converge after a recovery sync that cannot
    happen within the run (e.g. the permanently crashed replicas of the
    availability experiment).
    """
    excluded = set(exclude)
    hosts = [h for h in deployment.hosts if h not in excluded]
    problems: List[str] = []

    # --- final-state equality ------------------------------------------------
    finals = {}
    for host in hosts:
        snapshot = deployment.server(host).store.snapshot()
        finals[host] = tuple(
            sorted(
                (key, vv.version, repr(vv.value))
                for key, vv in snapshot.items()
            )
        )
    final_state_equal = len(set(finals.values())) <= 1
    if not final_state_equal:
        problems.append(
            "final states differ: "
            + "; ".join(f"{h}={finals[h]}" for h in hosts)
        )

    # --- per-replica monotonicity ------------------------------------------
    monotone = True
    for host in hosts:
        last_version: Dict[str, int] = {}
        for record in deployment.server(host).history:
            prev = last_version.get(record.key, 0)
            if record.version <= prev:
                monotone = False
                problems.append(
                    f"{host}: non-monotone version {record.version} <= "
                    f"{prev} for key {record.key!r}"
                )
            last_version[record.key] = record.version

    # --- divergence: (key, version) -> (request, value) must be global ----
    divergence_free = True
    seen: Dict[Tuple[str, int], Tuple[int, str, str]] = {}
    for host in hosts:
        for record in deployment.server(host).history:
            slot = (record.key, record.version)
            claim = (record.request_id, repr(record.value), host)
            prior = seen.get(slot)
            if prior is None:
                seen[slot] = claim
            elif prior[:2] != claim[:2]:
                divergence_free = False
                problems.append(
                    f"divergent commit at {slot}: {prior} vs {claim}"
                )

    # --- completeness: every replica has every committed version ----------
    committed_slots = set(seen)
    complete = True
    for host in hosts:
        have = {
            (r.key, r.version) for r in deployment.server(host).history
        }
        missing = committed_slots - have
        if missing:
            complete = False
            problems.append(
                f"{host} missing {len(missing)} committed versions "
                f"(e.g. {sorted(missing)[:3]})"
            )

    # --- identical full histories ------------------------------------------
    identities = {
        host: tuple(deployment.server(host).history.identities())
        for host in hosts
    }
    identical_histories = len(set(identities.values())) <= 1

    return AuditReport(
        final_state_equal=final_state_equal,
        divergence_free=divergence_free,
        monotone=monotone,
        complete=complete,
        identical_histories=identical_histories,
        total_commits=len(committed_slots),
        problems=problems,
    )


def commit_slots(deployment: Deployment) -> Tuple[Tuple[str, int, int, str], ...]:
    """The global commit map: one ``(key, version, request_id, value)``
    per committed version slot, deduplicated across replicas and sorted.

    Under the paper's Theorems 1/2 every conflict round elects exactly
    one winner, so each ``(key, version)`` slot is owned by exactly one
    request — the property-test suite asserts this on the returned
    tuple. Unlike a live :class:`Deployment`, the tuple is plain data:
    it survives pickling across process-pool workers and the result
    cache, so theorem checks run identically on serial, parallel and
    cached results.
    """
    claims: Dict[Tuple[str, int], set] = {}
    for host in deployment.hosts:
        for record in deployment.server(host).history:
            slot = (record.key, record.version)
            claims.setdefault(slot, set()).add(
                (record.request_id, repr(record.value))
            )
    # A divergent run (two owners for one slot) yields one tuple entry
    # per claimed owner, so uniqueness violations stay visible.
    return tuple(
        (key, version, request_id, value)
        for (key, version), owners in sorted(claims.items())
        for request_id, value in sorted(owners)
    )


def assert_consistent(deployment: Deployment) -> AuditReport:
    """Audit and raise :class:`ConsistencyViolation` on failure."""
    report = audit(deployment)
    if not report.consistent:
        raise ConsistencyViolation(
            "consistency audit failed:\n  " + "\n  ".join(report.problems)
        )
    return report
