"""Machine-readable export of experiment artefacts.

Figures and comparison tables render to CSV and JSON so downstream
plotting (matplotlib notebooks, gnuplot, spreadsheets) can consume the
regenerated evaluation without scraping text tables. Used by the CLI's
``--format`` option.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Any, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.ablations import AblationTable
    from repro.experiments.common import FigureData
    from repro.experiments.table_comparison import ComparisonTable

__all__ = [
    "figure_to_rows",
    "figure_to_csv",
    "figure_to_json",
    "comparison_to_rows",
    "comparison_to_csv",
    "comparison_to_json",
    "ablation_to_csv",
]


def _csv_from_rows(header: List[str], rows: List[List[Any]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


# -- figures --------------------------------------------------------------


def figure_to_rows(figure: "FigureData"):
    """``(header, rows)`` for a figure: x column + one column per series."""
    names = list(figure.series)
    header = [figure.x_label] + names
    rows = [
        [x] + [figure.series[name][index] for name in names]
        for index, x in enumerate(figure.x_values)
    ]
    return header, rows


def figure_to_csv(figure: "FigureData") -> str:
    """Figure as CSV: x column plus one column per series."""
    header, rows = figure_to_rows(figure)
    return _csv_from_rows(header, rows)


def figure_to_json(figure: "FigureData") -> str:
    """Figure as a JSON document (title, x, series, audit flag)."""
    return json.dumps(
        {
            "title": figure.title,
            "x_label": figure.x_label,
            "x": list(figure.x_values),
            "series": {k: list(v) for k, v in figure.series.items()},
            "all_consistent": figure.all_consistent,
        },
        indent=2,
    )


# -- comparison tables ----------------------------------------------------------


_COMPARISON_FIELDS = [
    "protocol", "latency", "mean_interarrival", "committed", "failed",
    "att", "control_messages", "control_bytes", "agent_migrations",
    "agent_bytes", "msgs_per_commit", "consistent",
]


def comparison_to_rows(table: "ComparisonTable"):
    """``(header, rows)`` for a protocol-comparison table."""
    rows = [
        [getattr(row, field) for field in _COMPARISON_FIELDS]
        for row in table.rows
    ]
    return list(_COMPARISON_FIELDS), rows


def comparison_to_csv(table: "ComparisonTable") -> str:
    """Comparison table as CSV."""
    header, rows = comparison_to_rows(table)
    return _csv_from_rows(header, rows)


def comparison_to_json(table: "ComparisonTable") -> str:
    """Comparison table as a JSON document."""
    header, rows = comparison_to_rows(table)
    return json.dumps(
        {
            "title": table.title,
            "rows": [dict(zip(header, row)) for row in rows],
        },
        indent=2,
    )


# -- ablation tables ---------------------------------------------------------------


def ablation_to_csv(table: "AblationTable") -> str:
    """Ablation table as CSV."""
    return _csv_from_rows(list(table.headers), [list(r) for r in table.rows])
