"""The paper's evaluation metrics (§4).

* **ALT** — "the average time required by a mobile agent to obtain the
  lock" (dispatch → lock acquisition).
* **ATT** — "the average total time required by a mobile agent to process
  an update request", including the UPDATE/COMMIT messaging (dispatch →
  completion).
* **PRK** — "the percentage of requests whose lock is obtained by
  visiting K number of servers".

All metrics are pure functions over lists of
:class:`~repro.replication.requests.RequestRecord`, so they apply to any
protocol (for the baselines, ALT is the quorum-assembly time and PRK is
undefined). Aggregation is vectorised with numpy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.analysis.stats import P2Quantile, Welford
from repro.replication.requests import RequestRecord

__all__ = [
    "committed_writes",
    "alt",
    "att",
    "prk",
    "visit_counts",
    "response_times",
    "throughput",
    "StreamingMetrics",
]


def committed_writes(records: Iterable[RequestRecord]) -> List[RequestRecord]:
    """The records that contribute to the paper's update metrics."""
    return [r for r in records if r.is_write and r.status == "committed"]


def _mean(values: List[float]) -> float:
    if not values:
        return float("nan")
    return float(np.mean(values))


def alt(records: Iterable[RequestRecord]) -> float:
    """Average Lock Time in ms (nan when no commits)."""
    return _mean(
        [r.lock_time for r in committed_writes(records) if r.lock_time is not None]
    )


def att(records: Iterable[RequestRecord]) -> float:
    """Average Total Time in ms (nan when no commits)."""
    return _mean(
        [r.total_time for r in committed_writes(records) if r.total_time is not None]
    )


def visit_counts(records: Iterable[RequestRecord]) -> np.ndarray:
    """Distinct-server visit counts at lock acquisition, one per commit."""
    return np.asarray(
        [
            r.visits_to_lock
            for r in committed_writes(records)
            if r.visits_to_lock is not None
        ],
        dtype=int,
    )


def prk(
    records: Iterable[RequestRecord], n_replicas: Optional[int] = None
) -> Dict[int, float]:
    """Fraction of committed updates whose lock needed K server visits.

    Returns ``{K: fraction}``; when ``n_replicas`` is given, every K from
    the theoretical minimum ⌈(N+1)/2⌉ to N appears (possibly 0.0), which
    is the shape of the paper's Figure 4 series.
    """
    counts = visit_counts(records)
    out: Dict[int, float] = {}
    if n_replicas is not None:
        for k in range(n_replicas // 2 + 1, n_replicas + 1):
            out[k] = 0.0
    if counts.size == 0:
        return out
    values, freq = np.unique(counts, return_counts=True)
    total = counts.size
    for value, count in zip(values, freq):
        out[int(value)] = float(count) / total
    return out


def response_times(records: Iterable[RequestRecord]) -> np.ndarray:
    """Client-perceived latencies of all completed requests."""
    return np.asarray(
        [
            r.response_time
            for r in records
            if r.response_time is not None and r.status in ("committed", "read-done")
        ],
        dtype=float,
    )


def throughput(records: Iterable[RequestRecord]) -> float:
    """Committed updates per second of simulated time (0 when < 2)."""
    commits = committed_writes(records)
    if len(commits) < 2:
        return 0.0
    times = np.asarray([r.completed_at for r in commits], dtype=float)
    span_ms = float(times.max() - times.min())
    if span_ms <= 0:
        return 0.0
    return (len(commits) - 1) / (span_ms / 1000.0)


class StreamingMetrics:
    """O(1)-memory accumulator over terminal :class:`RequestRecord`\\ s.

    The streaming counterpart of the batch functions above: feed every
    record exactly once when it reaches a terminal status (the protocol
    sweep does this) and read the same metrics without ever holding the
    record list. Exactness contract, pinned by the parity tests:

    * :meth:`alt` / :meth:`att` / mean response time — exact (Welford);
    * :meth:`prk` / counts / :meth:`throughput` — exact (counters and
      the identical ``(n-1)/span`` formula);
    * ATT / response-time p50 and p99 — P² estimates, within the
      documented error bounds of the batch percentiles.
    """

    def __init__(self) -> None:
        self._alt = Welford()
        self._att = Welford()
        self._response = Welford()
        self.att_p50 = P2Quantile(0.5)
        self.att_p99 = P2Quantile(0.99)
        self.response_p50 = P2Quantile(0.5)
        self.response_p99 = P2Quantile(0.99)
        self._visit_counts: Dict[int, int] = {}
        self.observed = 0
        self.committed = 0
        self.failed = 0
        self.reads_done = 0
        self._first_commit_at = float("inf")
        self._last_commit_at = float("-inf")

    def observe(self, record: RequestRecord) -> None:
        """Fold one *terminal* record into the accumulators."""
        self.observed += 1
        status = record.status
        if status == "failed":
            self.failed += 1
            return
        if status == "read-done":
            self.reads_done += 1
            response = record.response_time
            if response is not None:
                self._response.observe(response)
                self.response_p50.observe(response)
                self.response_p99.observe(response)
            return
        if status != "committed" or not record.is_write:
            return
        self.committed += 1
        lock_time = record.lock_time
        if lock_time is not None:
            self._alt.observe(lock_time)
        total_time = record.total_time
        if total_time is not None:
            self._att.observe(total_time)
            self.att_p50.observe(total_time)
            self.att_p99.observe(total_time)
        response = record.response_time
        if response is not None:
            self._response.observe(response)
            self.response_p50.observe(response)
            self.response_p99.observe(response)
        visits = record.visits_to_lock
        if visits is not None:
            self._visit_counts[visits] = self._visit_counts.get(visits, 0) + 1
        completed_at = record.completed_at
        if completed_at is not None:
            if completed_at < self._first_commit_at:
                self._first_commit_at = completed_at
            if completed_at > self._last_commit_at:
                self._last_commit_at = completed_at

    # -- the paper's metrics, streaming form ---------------------------

    def alt(self) -> float:
        return self._alt.result()

    def att(self) -> float:
        return self._att.result()

    def response_mean(self) -> float:
        return self._response.result()

    def prk(self, n_replicas: Optional[int] = None) -> Dict[int, float]:
        out: Dict[int, float] = {}
        if n_replicas is not None:
            for k in range(n_replicas // 2 + 1, n_replicas + 1):
                out[k] = 0.0
        total = sum(self._visit_counts.values())
        if total == 0:
            return out
        for visits in sorted(self._visit_counts):
            out[int(visits)] = self._visit_counts[visits] / total
        return out

    def throughput(self) -> float:
        """Committed updates per second (same formula as the batch fn)."""
        if self.committed < 2:
            return 0.0
        span_ms = self._last_commit_at - self._first_commit_at
        if span_ms <= 0:
            return 0.0
        return (self.committed - 1) / (span_ms / 1000.0)

    def __repr__(self) -> str:
        return (
            f"<StreamingMetrics observed={self.observed} "
            f"committed={self.committed} failed={self.failed}>"
        )
