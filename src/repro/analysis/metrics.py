"""The paper's evaluation metrics (§4).

* **ALT** — "the average time required by a mobile agent to obtain the
  lock" (dispatch → lock acquisition).
* **ATT** — "the average total time required by a mobile agent to process
  an update request", including the UPDATE/COMMIT messaging (dispatch →
  completion).
* **PRK** — "the percentage of requests whose lock is obtained by
  visiting K number of servers".

All metrics are pure functions over lists of
:class:`~repro.replication.requests.RequestRecord`, so they apply to any
protocol (for the baselines, ALT is the quorum-assembly time and PRK is
undefined). Aggregation is vectorised with numpy.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.replication.requests import RequestRecord

__all__ = [
    "committed_writes",
    "alt",
    "att",
    "prk",
    "visit_counts",
    "response_times",
    "throughput",
]


def committed_writes(records: Iterable[RequestRecord]) -> List[RequestRecord]:
    """The records that contribute to the paper's update metrics."""
    return [r for r in records if r.is_write and r.status == "committed"]


def _mean(values: List[float]) -> float:
    if not values:
        return float("nan")
    return float(np.mean(values))


def alt(records: Iterable[RequestRecord]) -> float:
    """Average Lock Time in ms (nan when no commits)."""
    return _mean(
        [r.lock_time for r in committed_writes(records) if r.lock_time is not None]
    )


def att(records: Iterable[RequestRecord]) -> float:
    """Average Total Time in ms (nan when no commits)."""
    return _mean(
        [r.total_time for r in committed_writes(records) if r.total_time is not None]
    )


def visit_counts(records: Iterable[RequestRecord]) -> np.ndarray:
    """Distinct-server visit counts at lock acquisition, one per commit."""
    return np.asarray(
        [
            r.visits_to_lock
            for r in committed_writes(records)
            if r.visits_to_lock is not None
        ],
        dtype=int,
    )


def prk(
    records: Iterable[RequestRecord], n_replicas: Optional[int] = None
) -> Dict[int, float]:
    """Fraction of committed updates whose lock needed K server visits.

    Returns ``{K: fraction}``; when ``n_replicas`` is given, every K from
    the theoretical minimum ⌈(N+1)/2⌉ to N appears (possibly 0.0), which
    is the shape of the paper's Figure 4 series.
    """
    counts = visit_counts(records)
    out: Dict[int, float] = {}
    if n_replicas is not None:
        for k in range(n_replicas // 2 + 1, n_replicas + 1):
            out[k] = 0.0
    if counts.size == 0:
        return out
    values, freq = np.unique(counts, return_counts=True)
    total = counts.size
    for value, count in zip(values, freq):
        out[int(value)] = float(count) / total
    return out


def response_times(records: Iterable[RequestRecord]) -> np.ndarray:
    """Client-perceived latencies of all completed requests."""
    return np.asarray(
        [
            r.response_time
            for r in records
            if r.response_time is not None and r.status in ("committed", "read-done")
        ],
        dtype=float,
    )


def throughput(records: Iterable[RequestRecord]) -> float:
    """Committed updates per second of simulated time (0 when < 2)."""
    commits = committed_writes(records)
    if len(commits) < 2:
        return 0.0
    times = np.asarray([r.completed_at for r in commits], dtype=float)
    span_ms = float(times.max() - times.min())
    if span_ms <= 0:
        return 0.0
    return (len(commits) - 1) / (span_ms / 1000.0)
