"""Summary statistics for experiment aggregation.

Replicated simulation runs (different seeds) are summarised with means
and Student-t confidence intervals — the standard reporting discipline
for stochastic discrete-event experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

try:  # scipy is an optional dependency of the analysis layer
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is installed in CI
    _scipy_stats = None

__all__ = [
    "Summary", "summarize", "confidence_interval",
    "Welford", "P2Quantile",
]


class Welford:
    """Streaming mean/variance accumulator (Welford's algorithm).

    The running mean is exact (up to float rounding), so streaming-mode
    ALT/ATT means match the batch ``np.mean`` to ~1e-12 relative — the
    differential parity tests pin this. O(1) memory.
    """

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); nan below two observations."""
        if self.count < 2:
            return float("nan")
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        if self.count < 2:
            return 0.0 if self.count == 1 else float("nan")
        return float(np.sqrt(self._m2 / (self.count - 1)))

    def result(self) -> float:
        """The running mean (nan when nothing was observed)."""
        return self.mean if self.count else float("nan")

    def __repr__(self) -> str:
        return f"<Welford n={self.count} mean={self.mean:.6g}>"


class P2Quantile:
    """Streaming quantile estimator (Jain & Chlamtac's P² algorithm).

    Five markers track the target quantile with O(1) memory and no
    sorting. Exact for the first five observations; beyond that the
    estimate is approximate — on well-behaved unimodal latency samples
    the relative error is typically well under 5%, which is the bound
    the parity property tests document and enforce.
    """

    __slots__ = ("q", "count", "_initial", "_heights", "_pos", "_desired",
                 "_incr")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {q}")
        self.q = float(q)
        self.count = 0
        self._initial: list = []
        self._heights: Optional[list] = None
        self._pos: Optional[list] = None
        self._desired: Optional[list] = None
        self._incr: Optional[tuple] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if heights is None:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                q = self.q
                self._heights = self._initial
                self._initial = []
                self._pos = [0.0, 1.0, 2.0, 3.0, 4.0]
                self._desired = [0.0, 2 * q, 4 * q, 2 + 2 * q, 4.0]
                self._incr = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
            return

        # P² marker update (runs once the first five values are in).
        pos = self._pos
        desired = self._desired
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            pos[index] += 1.0
        incr = self._incr
        for index in range(5):
            desired[index] += incr[index]
        for index in (1, 2, 3):
            diff = desired[index] - pos[index]
            below = pos[index] - pos[index - 1]
            above = pos[index + 1] - pos[index]
            if (diff >= 1.0 and above > 1.0) or (diff <= -1.0 and below > 1.0):
                step = 1.0 if diff >= 0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                pos[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        pos = self._pos
        return heights[index] + step / (pos[index + 1] - pos[index - 1]) * (
            (pos[index] - pos[index - 1] + step)
            * (heights[index + 1] - heights[index])
            / (pos[index + 1] - pos[index])
            + (pos[index + 1] - pos[index] - step)
            * (heights[index] - heights[index - 1])
            / (pos[index] - pos[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        pos = self._pos
        other = index + int(step)
        return heights[index] + step * (
            (heights[other] - heights[index]) / (pos[other] - pos[index])
        )

    def result(self) -> float:
        """Current quantile estimate (exact below six observations)."""
        if self._heights is not None:
            return float(self._heights[2])
        if not self._initial:
            return float("nan")
        return float(np.percentile(self._initial, self.q * 100.0))

    def __repr__(self) -> str:
        return f"<P2Quantile q={self.q} n={self.count}>"


@dataclass(frozen=True)
class Summary:
    """Point and spread statistics of one metric across repeats."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    ci_low: float
    ci_high: float

    def __repr__(self) -> str:
        return (
            f"Summary(n={self.n}, mean={self.mean:.3g} "
            f"[{self.ci_low:.3g}, {self.ci_high:.3g}])"
        )


def _t_critical(df: int, confidence: float) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df))
    # Normal approximation fallback (df large enough in practice).
    return {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence, 1.96)


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t CI for the mean; degenerate interval for n < 2."""
    data = np.asarray([v for v in values if not np.isnan(v)], dtype=float)
    if data.size == 0:
        return (float("nan"), float("nan"))
    mean = float(data.mean())
    if data.size == 1:
        return (mean, mean)
    sem = float(data.std(ddof=1)) / np.sqrt(data.size)
    half = _t_critical(data.size - 1, confidence) * sem
    return (mean - half, mean + half)


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Full summary of a metric sample (nan-filtering)."""
    data = np.asarray([v for v in values if not np.isnan(v)], dtype=float)
    if data.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan, nan)
    low, high = confidence_interval(data, confidence)
    return Summary(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        p50=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        ci_low=low,
        ci_high=high,
    )
