"""Summary statistics for experiment aggregation.

Replicated simulation runs (different seeds) are summarised with means
and Student-t confidence intervals — the standard reporting discipline
for stochastic discrete-event experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

try:  # scipy is an optional dependency of the analysis layer
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is installed in CI
    _scipy_stats = None

__all__ = ["Summary", "summarize", "confidence_interval"]


@dataclass(frozen=True)
class Summary:
    """Point and spread statistics of one metric across repeats."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    ci_low: float
    ci_high: float

    def __repr__(self) -> str:
        return (
            f"Summary(n={self.n}, mean={self.mean:.3g} "
            f"[{self.ci_low:.3g}, {self.ci_high:.3g}])"
        )


def _t_critical(df: int, confidence: float) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df))
    # Normal approximation fallback (df large enough in practice).
    return {0.90: 1.645, 0.95: 1.96, 0.99: 2.576}.get(confidence, 1.96)


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Student-t CI for the mean; degenerate interval for n < 2."""
    data = np.asarray([v for v in values if not np.isnan(v)], dtype=float)
    if data.size == 0:
        return (float("nan"), float("nan"))
    mean = float(data.mean())
    if data.size == 1:
        return (mean, mean)
    sem = float(data.std(ddof=1)) / np.sqrt(data.size)
    half = _t_critical(data.size - 1, confidence) * sem
    return (mean - half, mean + half)


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Full summary of a metric sample (nan-filtering)."""
    data = np.asarray([v for v in values if not np.isnan(v)], dtype=float)
    if data.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan, nan)
    low, high = confidence_interval(data, confidence)
    return Summary(
        n=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        maximum=float(data.max()),
        p50=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        ci_low=low,
        ci_high=high,
    )
