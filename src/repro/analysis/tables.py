"""Plain-text rendering of experiment tables and figure series.

The benchmark harness prints the regenerated figures as aligned text
tables (one row per x-value, one column per series) so ``pytest
benchmarks/ --benchmark-only`` reproduces the paper's evaluation
artefacts without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table", "format_series", "format_cell"]


def format_cell(value: Any, precision: int = 1) -> str:
    """Human-friendly cell formatting (floats rounded, None blank)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    precision: int = 1,
) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(str(h)) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if i else cell.ljust(widths[i])
            for i, cell in enumerate(cells)
        )

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(fmt_row([str(h) for h in headers]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Any],
    series: "dict[str, Sequence[Any]]",
    title: Optional[str] = None,
    precision: int = 1,
) -> str:
    """Render figure-style data: x column plus one column per series."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )
    rows = [
        [x] + [series[name][index] for name in names]
        for index, x in enumerate(x_values)
    ]
    return format_table([x_label] + names, rows, title=title,
                        precision=precision)
