"""Protocol event tracing and text visualisation.

The paper's prototype had "an interface ... to visualize the execution"
of the algorithms; this is its library equivalent. When tracing is
enabled on a deployment (``deployment.enable_tracing()``), the MARP
agents and replica servers record structured :class:`TraceEvent`s —
dispatch, migration, lock requests, parking, claims, grants, commits —
which can be rendered as a chronological log or as per-agent journey
summaries. Tracing is off by default and costs nothing when disabled.

Since the observability layer landed, :class:`ProtocolTrace` is a thin
*view* over a :class:`~repro.obs.tracing.SpanTracer` event stream:
``record()`` appends ``protocol.<kind>`` events to the tracer and the
query/render methods read them back as :class:`TraceEvent`s. When the
deployment has an :class:`~repro.obs.hub.ObservabilityHub`, the trace
shares the hub's tracer, so protocol events appear in JSONL exports
alongside spans and metrics; standalone use (no hub) gets a private
tracer and behaves exactly as before.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.obs.tracing import SpanTracer

__all__ = ["TraceEvent", "ProtocolTrace"]

#: Namespace prefix for protocol events in the unified tracer stream.
_PROTOCOL_PREFIX = "protocol."


@dataclass(frozen=True)
class TraceEvent:
    """One structured protocol event."""

    time: float
    kind: str
    host: Optional[str] = None
    agent: Optional[str] = None
    request_id: Optional[int] = None
    detail: str = ""

    def __repr__(self) -> str:
        return (
            f"<{self.time:.2f}ms {self.kind} host={self.host} "
            f"agent={self.agent}>"
        )


class ProtocolTrace:
    """Append-only structured event log for one deployment run.

    Parameters
    ----------
    capacity:
        Bounds memory for long runs; events beyond it are counted in
        :attr:`dropped`.
    tracer:
        The span tracer whose event stream backs this view. ``None``
        (standalone use) creates a private tracer.
    """

    #: The event vocabulary (documented so downstream tooling can rely
    #: on it): agent lifecycle + server-side commit pipeline.
    KINDS = (
        "dispatch",      # agent created and launched at its home server
        "migrate",       # agent departed toward a host
        "arrive",        # agent arrived at a host
        "visit",         # agent interacted with the replica (lock/LT)
        "park",          # agent waits for a lock release
        "wake",          # parked agent resumed
        "lock-won",      # priority rule satisfied
        "claim",         # UPDATE broadcast (grant acquisition)
        "claim-failed",  # grants not assembled; RELEASE broadcast
        "commit",        # COMMIT broadcast by the winner
        "abort",         # agent gave up the request
        "grant",         # server issued an update grant (ACK)
        "nack",          # server refused a grant
        "apply",         # server applied a committed write
        "recover",       # server resynchronised after a crash
        "unavailable",   # a replica was declared unavailable
    )

    def __init__(self, capacity: Optional[int] = None,
                 tracer: Optional[SpanTracer] = None) -> None:
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.capacity = capacity
        self.dropped = 0
        self._recorded = 0

    def record(
        self,
        time: float,
        kind: str,
        host: Optional[str] = None,
        agent: Optional[str] = None,
        request_id: Optional[int] = None,
        detail: str = "",
    ) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"unknown trace event kind {kind!r}")
        if self.capacity is not None and self._recorded >= self.capacity:
            self.dropped += 1
            return
        self._recorded += 1
        self.tracer.event(
            _PROTOCOL_PREFIX + kind, time=time, span=None,
            host=host, agent=agent, request_id=request_id, detail=detail,
        )

    # -- the view over the unified stream ----------------------------------

    @property
    def events(self) -> List[TraceEvent]:
        """The protocol events, materialised in recording order."""
        prefix_len = len(_PROTOCOL_PREFIX)
        return [
            TraceEvent(
                time=event.time,
                kind=event.name[prefix_len:],
                host=event.attrs.get("host"),
                agent=event.attrs.get("agent"),
                request_id=event.attrs.get("request_id"),
                detail=event.attrs.get("detail", ""),
            )
            for event in self.tracer.events
            if event.name.startswith(_PROTOCOL_PREFIX)
        ]

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._recorded

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_agent(self, agent: str) -> List[TraceEvent]:
        return [e for e in self.events if e.agent == agent]

    def counts(self) -> Counter:
        return Counter(e.kind for e in self.events)

    # -- rendering -----------------------------------------------------------

    def render_log(self, limit: Optional[int] = 50) -> str:
        """Chronological event log as an aligned table."""
        all_events = self.events
        events = all_events if limit is None else all_events[:limit]
        rows = [
            [f"{e.time:.2f}", e.kind, e.host or "-", e.agent or "-",
             e.detail]
            for e in events
        ]
        suffix = ""
        if limit is not None and len(all_events) > limit:
            suffix = f"\n... {len(all_events) - limit} more events"
        return format_table(
            ["time(ms)", "event", "host", "agent", "detail"], rows,
            title="protocol trace",
        ) + suffix

    def journeys(self) -> Dict[str, str]:
        """Per-agent itinerary summaries like ``s1 > s2 > s3 [commit]``."""
        paths: Dict[str, List[str]] = {}
        outcome: Dict[str, str] = {}
        for event in self.events:
            if event.agent is None:
                continue
            if event.kind in ("dispatch", "arrive"):
                paths.setdefault(event.agent, []).append(event.host or "?")
            elif event.kind in ("commit", "abort"):
                outcome[event.agent] = event.kind
        return {
            agent: " > ".join(path) + f" [{outcome.get(agent, 'running')}]"
            for agent, path in paths.items()
        }

    def render_journeys(self) -> str:
        rows = [
            [agent, journey] for agent, journey in sorted(
                self.journeys().items()
            )
        ]
        return format_table(["agent", "journey"], rows,
                            title="agent journeys")

    def __repr__(self) -> str:
        return f"<ProtocolTrace events={self._recorded}>"
