"""Message-passing baseline protocols (the comparators for T1/T2)."""

from repro.baselines.available_copies import AvailableCopies
from repro.baselines.base import BaselineDaemon, QuorumProtocol
from repro.baselines.mcv import MajorityConsensusVoting
from repro.baselines.primary_copy import PrimaryCopy
from repro.baselines.weighted_voting import WeightedVoting

__all__ = [
    "QuorumProtocol",
    "BaselineDaemon",
    "MajorityConsensusVoting",
    "WeightedVoting",
    "AvailableCopies",
    "PrimaryCopy",
]

#: Registry used by experiments and the CLI.
PROTOCOLS = {
    "mcv": MajorityConsensusVoting,
    "weighted-voting": WeightedVoting,
    "available-copies": AvailableCopies,
    "primary-copy": PrimaryCopy,
}
