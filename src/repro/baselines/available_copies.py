"""Available Copies (ROWA-A) — the optimistic baseline the paper cites.

Paper §3.1: "The Available Copy (AC) protocol, also known as the
write-all read-once protocol ... Update operations must be applied at
all available replicas. If all available replicas participated in the
last update, an application can read from any replica ... The AC
protocol is vulnerable to communication partitions."

Implementation: strict two-phase locking with *blocking* (queueing) lock
daemons, acquired sequentially in a fixed global host order so writers
cannot deadlock. A replica that does not grant within the detection
timeout is declared unavailable and skipped — timeouts are the failure
detector — and catches up later through the recovery sync. Reads are
local (read-one).

Because availability is judged per-coordinator with no quorum
intersection, partitions (and aggressive timeouts under load) let
replicas diverge — the vulnerability the paper notes, demonstrated in
the integration tests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.baselines.base import BaselineDaemon, QuorumProtocol
from repro.net.message import Message
from repro.replication.deployment import Deployment
from repro.replication.requests import RequestRecord
from repro.replication.server import WriteOp

__all__ = ["AvailableCopies", "QueueingDaemon"]


class QueueingDaemon(BaselineDaemon):
    """Lock daemon that queues conflicting requests instead of NACKing.

    This is strict 2PL at one replica: the grant moves to the next
    waiter when the holder's APPLY or ABORT releases the key.
    """

    def __init__(self, protocol: "AvailableCopies", host: str) -> None:
        self.waiters: Dict[str, Deque[dict]] = {}
        super().__init__(protocol, host)

    def _on_lock(self, msg: Message) -> None:
        p = msg.payload
        key = p["key"]
        if self._lock_is_free(key, p["rid"]):
            self._grant(key, p)
        else:
            queue = self.waiters.setdefault(key, deque())
            if all(w["rid"] != p["rid"] for w in queue):
                queue.append(p)

    def _grant(self, key: str, p: dict) -> None:
        self.locks[key] = (
            p["rid"], p["epoch"], self.env.now + self.protocol.lock_ttl,
        )
        self.grants_given += 1
        self.endpoint.send(
            p["reply_to"],
            f"{self.protocol.prefix}_GRANT",
            payload={
                "rid": p["rid"],
                "epoch": p["epoch"],
                "from": self.host,
                "votes": self.protocol.votes_of(self.host),
                "version": self.server.store.version_of(key),
            },
        )

    def _release(self, rid: int, up_to_epoch: Optional[int] = None) -> None:
        for key, (holder, epoch, _expires) in list(self.locks.items()):
            if holder != rid:
                continue
            if up_to_epoch is not None and epoch > up_to_epoch:
                continue
            del self.locks[key]
            queue = self.waiters.get(key)
            if queue:
                self._grant(key, queue.popleft())

    def _on_abort(self, msg: Message) -> None:
        rid = msg.payload["rid"]
        # Dequeue any waiting request of this rid, then release held keys.
        for queue in self.waiters.values():
            for waiter in list(queue):
                if waiter["rid"] == rid:
                    queue.remove(waiter)
        self._release(rid, up_to_epoch=msg.payload.get("epoch"))


class AvailableCopies(QuorumProtocol):
    """Write-all-available / read-one with blocking ordered locking."""

    name = "available-copies"
    prefix = "AC"
    daemon_class = QueueingDaemon

    def __init__(
        self,
        deployment: Deployment,
        detection_timeout: float = 400.0,
        **kwargs,
    ) -> None:
        kwargs.setdefault("local_reads", True)
        kwargs.setdefault("read_quorum", 1)
        kwargs.setdefault("write_quorum", 1)
        kwargs.setdefault("enforce_quorum_intersection", False)
        super().__init__(deployment, **kwargs)
        if detection_timeout <= 0:
            raise ValueError(
                f"detection_timeout must be > 0: {detection_timeout}"
            )
        self.detection_timeout = detection_timeout

    def _write_coordinator(self, record: RequestRecord):
        env = self.env
        endpoint = self.deployment.platform(record.home).endpoint
        prefix = self.prefix
        record.dispatched_at = env.now

        # Sequential lock acquisition in global host order: all writers
        # climb the same ladder, so there is no deadlock and queues at
        # each rung drain FIFO.
        grants: Dict[str, int] = {}  # host -> version at grant
        skipped = []
        for host in self.deployment.hosts:
            endpoint.send(
                host,
                f"{prefix}_LOCK",
                payload={
                    "rid": record.request_id,
                    "epoch": 1,
                    "key": record.key,
                    "reply_to": record.home,
                },
            )
            grant = endpoint.receive(
                kind=f"{prefix}_GRANT",
                match=lambda m, h=host: (
                    m.payload["rid"] == record.request_id
                    and m.payload["from"] == h
                ),
            )
            yield grant | env.timeout(self.detection_timeout)
            if grant.processed:
                grants[host] = grant.value.payload["version"]
            else:
                if not grant.triggered:
                    grant.succeed(None)
                # Declared unavailable; cancel the (possibly queued) lock.
                endpoint.send(
                    host,
                    f"{prefix}_ABORT",
                    payload={"rid": record.request_id, "epoch": 1},
                )
                skipped.append(host)

        if not grants:
            record.completed_at = env.now
            record.extra["skipped"] = skipped
            record.status = "failed"
            return

        record.lock_acquired_at = env.now
        record.extra["available_copies"] = sorted(grants)
        record.extra["skipped"] = skipped
        version = 1 + max(grants.values())
        writes = (
            WriteOp(
                request_id=record.request_id,
                key=record.key,
                value=record.value,
                version=version,
            ),
        )
        # Write-all-*available*: only the replicas that granted.
        for host in grants:
            endpoint.send(
                host,
                f"{prefix}_APPLY",
                payload={
                    "rid": record.request_id,
                    "writes": writes,
                    "origin": record.home,
                },
            )
        record.completed_at = env.now
        record.status = "committed"
