"""Shared machinery for the message-passing baseline protocols.

The paper argues (§1) that conventional replication protocols are
expensive because "multiple local processes need to participate in
sessions of passing messages and waiting for replies" with "several
rounds of message exchange". To quantify that claim (experiments T1/T2
in DESIGN.md) we implement the classic protocols the paper cites over
the *same* deployment substrate as MARP:

* every host runs a :class:`BaselineDaemon` — the stationary process that
  votes/locks/applies on behalf of the protocol;
* writes are driven by a coordinator process at the request's home server
  using rounds of ``LOCK → GRANT/NACK → APPLY`` (or ``ABORT`` + retry)
  messages, with per-key leases and epoch-tagged replies so stale
  messages from abandoned rounds are ignored;
* stores/histories are the very same per-replica objects MARP uses, so
  the consistency auditor applies unchanged.

Message kinds are prefixed per protocol (``MCV_LOCK``, ``WV_GRANT``, …)
so daemons coexist with the MARP replica server on the same endpoints.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.net.message import Message
from repro.replication.deployment import Deployment
from repro.replication.history import CommitRecord
from repro.replication.protocol import ReplicationProtocol
from repro.replication.requests import RequestRecord
from repro.replication.server import WriteOp

__all__ = ["BaselineDaemon", "QuorumProtocol"]


class BaselineDaemon:
    """Per-host stationary process of a message-passing protocol."""

    def __init__(self, protocol: "QuorumProtocol", host: str) -> None:
        self.protocol = protocol
        self.host = host
        self.env = protocol.env
        self.network = protocol.deployment.network
        self.endpoint = protocol.deployment.platform(host).endpoint
        self.server = protocol.deployment.server(host)
        prefix = protocol.prefix
        self._kinds = {
            f"{prefix}_LOCK",
            f"{prefix}_APPLY",
            f"{prefix}_ABORT",
            f"{prefix}_READV",
        }
        # key -> (holder rid, holder epoch, lease expiry). The epoch
        # guards against a retry's LOCK overtaking the previous
        # attempt's ABORT in the network: a release may only clear a
        # grant from the same or a later epoch.
        self.locks: Dict[str, Tuple[int, int, float]] = {}
        self.grants_given = 0
        self.nacks_given = 0
        self.env.process(self._loop(), name=f"{prefix}-daemon-{host}")

    # ------------------------------------------------------------------

    def _loop(self):
        prefix = self.protocol.prefix
        while True:
            msg: Message = yield self.endpoint.receive(
                match=lambda m: m.kind in self._kinds
            )
            if not self.network.host_up(self.host):
                continue
            apply_time = self.server.config.update_apply_time
            if apply_time > 0:
                yield self.env.timeout(apply_time)
            kind = msg.kind[len(prefix) + 1 :]
            if kind == "LOCK":
                self._on_lock(msg)
            elif kind == "APPLY":
                self._on_apply(msg)
            elif kind == "ABORT":
                self._on_abort(msg)
            elif kind == "READV":
                self._on_readv(msg)

    def _lock_is_free(self, key: str, rid: int) -> bool:
        held = self.locks.get(key)
        if held is None:
            return True
        holder, _epoch, expires = held
        return holder == rid or self.env.now > expires

    def _on_lock(self, msg: Message) -> None:
        p = msg.payload
        prefix = self.protocol.prefix
        if self._lock_is_free(p["key"], p["rid"]):
            held = self.locks.get(p["key"])
            # Same-holder re-locks keep the newest epoch (a stale LOCK
            # must not roll the epoch back under a newer grant).
            epoch = p["epoch"]
            if held is not None and held[0] == p["rid"]:
                epoch = max(epoch, held[1])
            self.locks[p["key"]] = (
                p["rid"],
                epoch,
                self.env.now + self.protocol.lock_ttl,
            )
            self.grants_given += 1
            self.endpoint.send(
                p["reply_to"],
                f"{prefix}_GRANT",
                payload={
                    "rid": p["rid"],
                    "epoch": p["epoch"],
                    "from": self.host,
                    "votes": self.protocol.votes_of(self.host),
                    "version": self.server.store.version_of(p["key"]),
                },
            )
        else:
            self.nacks_given += 1
            self.endpoint.send(
                p["reply_to"],
                f"{prefix}_NACK",
                payload={
                    "rid": p["rid"],
                    "epoch": p["epoch"],
                    "from": self.host,
                    "votes": self.protocol.votes_of(self.host),
                },
            )

    def _on_apply(self, msg: Message) -> None:
        p = msg.payload
        for write in p["writes"]:  # APPLY is terminal: release any epoch
            applied = self.server.store.apply(
                write.key, write.value, write.version, self.env.now
            )
            if applied:
                self.server.history.append(
                    CommitRecord(
                        request_id=write.request_id,
                        key=write.key,
                        value=write.value,
                        version=write.version,
                        committed_at=self.env.now,
                        origin=p["origin"],
                    )
                )
        self._release(p["rid"])

    def _on_abort(self, msg: Message) -> None:
        p = msg.payload
        self._release(p["rid"], up_to_epoch=p.get("epoch"))

    def _release(self, rid: int, up_to_epoch: Optional[int] = None) -> None:
        """Free this rid's grants.

        With ``up_to_epoch`` given (an ABORT), grants from a *newer*
        epoch survive — the abort is stale relative to a re-lock that
        overtook it in the network.
        """
        for key, (holder, epoch, _expires) in list(self.locks.items()):
            if holder != rid:
                continue
            if up_to_epoch is not None and epoch > up_to_epoch:
                continue
            del self.locks[key]

    def _on_readv(self, msg: Message) -> None:
        p = msg.payload
        entry = self.server.store.read(p["key"])
        self.endpoint.send(
            p["reply_to"],
            f"{self.protocol.prefix}_RVAL",
            payload={
                "rid": p["rid"],
                "from": self.host,
                "votes": self.protocol.votes_of(self.host),
                "version": entry.version if entry else 0,
                "value": entry.value if entry else None,
            },
        )


class QuorumProtocol(ReplicationProtocol):
    """Generic voting/locking write engine.

    Parameterised by vote weights and read/write quorum sizes; the
    concrete baselines (MCV, weighted voting, available copies) are
    configurations and small specialisations of this engine.
    """

    name = "quorum"
    prefix = "Q"
    #: Per-host daemon implementation; subclasses may swap in a
    #: different locking discipline (e.g. blocking 2PL).
    daemon_class = BaselineDaemon

    def __init__(
        self,
        deployment: Deployment,
        votes: Optional[Dict[str, int]] = None,
        write_quorum: Optional[int] = None,
        read_quorum: Optional[int] = None,
        lock_timeout: float = 500.0,
        lock_ttl: float = 10_000.0,
        retry_backoff: float = 25.0,
        max_rounds: int = 20,
        local_reads: bool = False,
        enforce_quorum_intersection: bool = True,
    ) -> None:
        super().__init__(deployment)
        hosts = deployment.hosts
        self.votes: Dict[str, int] = votes or {h: 1 for h in hosts}
        total = sum(self.votes.values())
        self.total_votes = total
        self.write_quorum = (
            write_quorum if write_quorum is not None else total // 2 + 1
        )
        self.read_quorum = (
            read_quorum if read_quorum is not None else total // 2 + 1
        )
        if enforce_quorum_intersection:
            # Gifford's constraints; available-copies deliberately opts
            # out (that is exactly its partition vulnerability).
            if self.write_quorum + self.read_quorum <= total:
                raise ValueError(
                    f"r + w must exceed total votes: r={self.read_quorum} "
                    f"w={self.write_quorum} total={total}"
                )
            if 2 * self.write_quorum <= total:
                raise ValueError(
                    f"w must exceed half the votes: w={self.write_quorum} "
                    f"total={total}"
                )
        self.lock_timeout = lock_timeout
        self.lock_ttl = lock_ttl
        self.retry_backoff = retry_backoff
        self.max_rounds = max_rounds
        self.local_reads = local_reads
        self.daemons = {h: self.daemon_class(self, h) for h in hosts}
        self._stream = deployment.streams.stream(f"{self.prefix}.backoff")

    def votes_of(self, host: str) -> int:
        return self.votes.get(host, 0)

    # -- write path -------------------------------------------------------

    def _start_write(self, record: RequestRecord) -> None:
        self.env.process(
            self._write_coordinator(record),
            name=f"{self.prefix}-write-{record.request_id}",
        )

    def _write_coordinator(self, record: RequestRecord):
        env = self.env
        endpoint = self.deployment.platform(record.home).endpoint
        prefix = self.prefix
        record.dispatched_at = env.now

        for attempt in range(1, self.max_rounds + 1):
            epoch = attempt
            endpoint.broadcast(
                f"{prefix}_LOCK",
                payload={
                    "rid": record.request_id,
                    "epoch": epoch,
                    "key": record.key,
                    "reply_to": record.home,
                },
                include_self=True,
            )
            grants, granted_votes = yield from self._gather_grants(
                endpoint, record.request_id, epoch
            )
            if granted_votes >= self.write_quorum:
                record.lock_acquired_at = env.now
                record.extra["lock_rounds"] = attempt
                version = 1 + max(v for _host, (_w, v) in grants.items())
                writes = (
                    WriteOp(
                        request_id=record.request_id,
                        key=record.key,
                        value=record.value,
                        version=version,
                    ),
                )
                self._apply(endpoint, record, writes, grants)
                record.completed_at = env.now
                record.status = "committed"
                return
            # Conflict: release everything and retry after a randomized,
            # linearly growing backoff (the classic voting retry loop).
            endpoint.broadcast(
                f"{prefix}_ABORT",
                payload={"rid": record.request_id, "epoch": epoch},
                include_self=True,
            )
            if self.retry_backoff > 0:
                yield env.timeout(
                    self._stream.exponential(self.retry_backoff * attempt)
                )
        record.completed_at = env.now
        record.extra["lock_rounds"] = self.max_rounds
        record.status = "failed"

    def _gather_grants(self, endpoint, rid: int, epoch: int):
        """Collect GRANT/NACK replies until quorum, impossibility or
        timeout. Returns ``(grants, granted_votes)``."""
        env = self.env
        prefix = self.prefix
        grants: Dict[str, Tuple[int, int]] = {}  # host -> (votes, version)
        nack_votes = 0
        granted_votes = 0
        deadline = env.timeout(self.lock_timeout)
        while granted_votes < self.write_quorum:
            reply = endpoint.receive(
                match=lambda m: (
                    m.kind in (f"{prefix}_GRANT", f"{prefix}_NACK")
                    and m.payload["rid"] == rid
                    and m.payload["epoch"] == epoch
                ),
            )
            yield reply | deadline
            if not reply.processed:
                if not reply.triggered:
                    reply.succeed(None)
                break
            msg = reply.value
            p = msg.payload
            if msg.kind == f"{prefix}_GRANT":
                if p["from"] not in grants:
                    grants[p["from"]] = (p["votes"], p["version"])
                    granted_votes += p["votes"]
            else:
                nack_votes += p["votes"]
                if self.total_votes - nack_votes < self.write_quorum:
                    break
        return grants, granted_votes

    def _apply(self, endpoint, record, writes, grants) -> None:
        """Propagate the accepted update. Default: write-all broadcast."""
        endpoint.broadcast(
            f"{self.prefix}_APPLY",
            payload={
                "rid": record.request_id,
                "writes": writes,
                "origin": record.home,
            },
            include_self=True,
        )

    # -- read path ---------------------------------------------------------------

    def _start_read(self, record: RequestRecord) -> None:
        if self.local_reads or self.read_quorum <= 1:
            self._start_local_read(record)
        else:
            self.env.process(
                self._read_coordinator(record),
                name=f"{self.prefix}-read-{record.request_id}",
            )

    def _start_local_read(self, record: RequestRecord) -> None:
        def reader():
            server = self.deployment.server(record.home)
            if server.config.read_service_time > 0:
                yield self.env.timeout(server.config.read_service_time)
            entry = server.read(record.key)
            record.value = entry.value if entry else None
            record.extra["version"] = entry.version if entry else 0
            record.completed_at = self.env.now
            record.status = "read-done"

        record.dispatched_at = self.env.now
        self.env.process(reader(), name=f"{self.prefix}-lread-{record.request_id}")

    def _read_coordinator(self, record: RequestRecord):
        env = self.env
        endpoint = self.deployment.platform(record.home).endpoint
        prefix = self.prefix
        record.dispatched_at = env.now
        endpoint.broadcast(
            f"{prefix}_READV",
            payload={
                "rid": record.request_id,
                "key": record.key,
                "reply_to": record.home,
            },
            include_self=True,
        )
        best_version, best_value = 0, None
        votes = 0
        replied: Set[str] = set()
        deadline = env.timeout(self.lock_timeout)
        while votes < self.read_quorum:
            reply = endpoint.receive(
                kind=f"{prefix}_RVAL",
                match=lambda m: m.payload["rid"] == record.request_id,
            )
            yield reply | deadline
            if not reply.processed:
                if not reply.triggered:
                    reply.succeed(None)
                break
            p = reply.value.payload
            if p["from"] in replied:
                continue
            replied.add(p["from"])
            votes += p["votes"]
            if p["version"] >= best_version:
                best_version, best_value = p["version"], p["value"]
        record.value = best_value
        record.extra["version"] = best_version
        record.completed_at = env.now
        record.status = "read-done" if votes >= self.read_quorum else "failed"
