"""Majority Consensus Voting (Thomas 1979) — message-passing baseline.

The scheme MARP builds on (paper §1: "The protocol is based on the
well-known Majority Consensus Voting (MCV) scheme [11]"), here in its
conventional form: a stationary coordinator at the request's home server
gathers a *majority of votes* through rounds of request/grant messages,
applies the update at all replicas, and retries with backoff on
conflict. Reads also assemble a majority so they always observe the
latest accepted update (r = w = ⌈(N+1)/2⌉, r + w > N).

Every replica holds one vote, which is exactly Thomas's original majority
consensus and the degenerate case of Gifford's weighted voting.
"""

from __future__ import annotations

from repro.baselines.base import QuorumProtocol
from repro.replication.deployment import Deployment

__all__ = ["MajorityConsensusVoting"]


class MajorityConsensusVoting(QuorumProtocol):
    """One vote per replica; majority read and write quorums."""

    name = "mcv"
    prefix = "MCV"

    def __init__(self, deployment: Deployment, **kwargs) -> None:
        kwargs.setdefault("votes", {h: 1 for h in deployment.hosts})
        n = len(deployment.hosts)
        kwargs.setdefault("write_quorum", n // 2 + 1)
        kwargs.setdefault("read_quorum", n // 2 + 1)
        super().__init__(deployment, **kwargs)
