"""Primary Copy — the centralised baseline.

All writes are forwarded to one designated primary, which serialises
them locally (a trivially consistent total order), applies eagerly at
every replica, and acknowledges the origin. Reads are local. It is the
latency floor for uncontended writes and the availability worst case: a
crashed primary stalls every write until it recovers.
"""

from __future__ import annotations

from typing import Optional

from repro.net.message import Message
from repro.replication.deployment import Deployment
from repro.replication.history import CommitRecord
from repro.replication.protocol import ReplicationProtocol
from repro.replication.requests import RequestRecord
from repro.replication.server import WriteOp

__all__ = ["PrimaryCopy"]


class PrimaryCopy(ReplicationProtocol):
    """Single-primary eager replication."""

    name = "primary-copy"
    prefix = "PC"

    def __init__(
        self,
        deployment: Deployment,
        primary: Optional[str] = None,
        write_timeout: float = 2000.0,
    ) -> None:
        super().__init__(deployment)
        self.primary = primary or deployment.hosts[0]
        if self.primary not in deployment.servers:
            raise ValueError(f"unknown primary host {self.primary!r}")
        if write_timeout <= 0:
            raise ValueError(f"write_timeout must be > 0: {write_timeout}")
        self.write_timeout = write_timeout
        self.writes_serialized = 0
        self.env.process(self._primary_loop(), name="pc-primary")

    # -- primary ----------------------------------------------------------

    def _primary_loop(self):
        endpoint = self.deployment.platform(self.primary).endpoint
        server = self.deployment.server(self.primary)
        network = self.deployment.network
        while True:
            msg: Message = yield endpoint.receive(kind="PC_WRITE")
            if not network.host_up(self.primary):
                continue
            if server.config.update_apply_time > 0:
                yield self.env.timeout(server.config.update_apply_time)
            p = msg.payload
            version = server.store.version_of(p["key"]) + 1
            write = WriteOp(
                request_id=p["rid"],
                key=p["key"],
                value=p["value"],
                version=version,
            )
            self._apply_local(server, write, p["origin"])
            self.writes_serialized += 1
            # Eager push to every backup, then acknowledge the origin.
            for host in self.deployment.hosts:
                if host != self.primary:
                    endpoint.send(
                        host,
                        "PC_APPLY",
                        payload={"writes": (write,), "origin": p["origin"]},
                    )
            endpoint.send(
                p["origin"], "PC_DONE", payload={"rid": p["rid"]}
            )

    def _apply_local(self, server, write: WriteOp, origin: str) -> None:
        applied = server.store.apply(
            write.key, write.value, write.version, self.env.now
        )
        if applied:
            server.history.append(
                CommitRecord(
                    request_id=write.request_id,
                    key=write.key,
                    value=write.value,
                    version=write.version,
                    committed_at=self.env.now,
                    origin=origin,
                )
            )

    # -- backups -------------------------------------------------------------

    def _ensure_backup_loop(self, host: str) -> None:
        if getattr(self, "_backup_loops", None) is None:
            self._backup_loops = set()
        if host in self._backup_loops or host == self.primary:
            return
        self._backup_loops.add(host)
        self.env.process(self._backup_loop(host), name=f"pc-backup-{host}")

    def _backup_loop(self, host: str):
        endpoint = self.deployment.platform(host).endpoint
        server = self.deployment.server(host)
        network = self.deployment.network
        # The network is not FIFO, but primary-copy log shipping must
        # apply in order: hold out-of-order versions until their
        # predecessors arrive.
        reorder: dict = {}  # key -> {version: (write, origin)}
        while True:
            msg: Message = yield endpoint.receive(kind="PC_APPLY")
            if not network.host_up(host):
                continue
            if server.config.update_apply_time > 0:
                yield self.env.timeout(server.config.update_apply_time)
            for write in msg.payload["writes"]:
                reorder.setdefault(write.key, {})[write.version] = (
                    write, msg.payload["origin"],
                )
            for key, buffered in reorder.items():
                next_version = server.store.version_of(key) + 1
                while next_version in buffered:
                    write, origin = buffered.pop(next_version)
                    self._apply_local(server, write, origin)
                    next_version += 1

    # -- client-facing paths ----------------------------------------------------

    def _start_write(self, record: RequestRecord) -> None:
        for host in self.deployment.hosts:
            self._ensure_backup_loop(host)
        self.env.process(
            self._write_coordinator(record),
            name=f"pc-write-{record.request_id}",
        )

    def _write_coordinator(self, record: RequestRecord):
        env = self.env
        endpoint = self.deployment.platform(record.home).endpoint
        record.dispatched_at = env.now
        endpoint.send(
            self.primary,
            "PC_WRITE",
            payload={
                "rid": record.request_id,
                "key": record.key,
                "value": record.value,
                "origin": record.home,
            },
        )
        done = endpoint.receive(
            kind="PC_DONE",
            match=lambda m: m.payload["rid"] == record.request_id,
        )
        yield done | env.timeout(self.write_timeout)
        if done.processed:
            record.completed_at = env.now
            record.status = "committed"
        else:
            if not done.triggered:
                done.succeed(None)
            record.completed_at = env.now
            record.status = "failed"

    def _start_read(self, record: RequestRecord) -> None:
        def reader():
            server = self.deployment.server(record.home)
            if server.config.read_service_time > 0:
                yield self.env.timeout(server.config.read_service_time)
            entry = server.read(record.key)
            record.value = entry.value if entry else None
            record.extra["version"] = entry.version if entry else 0
            record.completed_at = self.env.now
            record.status = "read-done"

        record.dispatched_at = self.env.now
        self.env.process(reader(), name=f"pc-read-{record.request_id}")
