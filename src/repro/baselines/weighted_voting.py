"""Weighted Voting (Gifford 1979) — message-passing baseline.

Each replica is assigned one or more votes; a read collects ``r`` votes,
a write collects ``w`` votes, with ``r + w`` greater than the total so
every read/write pair intersects (paper §3.1). Skewed vote assignments
let a deployment bias the quorums toward well-connected replicas — the
classic knob for trading read latency against write latency.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.base import QuorumProtocol
from repro.replication.deployment import Deployment

__all__ = ["WeightedVoting"]


class WeightedVoting(QuorumProtocol):
    """Gifford's quorum consensus with configurable votes and r/w."""

    name = "weighted-voting"
    prefix = "WV"

    def __init__(
        self,
        deployment: Deployment,
        votes: Optional[Dict[str, int]] = None,
        read_quorum: Optional[int] = None,
        write_quorum: Optional[int] = None,
        **kwargs,
    ) -> None:
        super().__init__(
            deployment,
            votes=votes,
            read_quorum=read_quorum,
            write_quorum=write_quorum,
            **kwargs,
        )
