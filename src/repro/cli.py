"""Command-line entry point: regenerate any paper figure or table.

Usage::

    python -m repro fig2 [--repeats 2] [--requests 20] [--seed 0]
    python -m repro fig3
    python -m repro fig4
    python -m repro compare          # T1: protocol comparison (LAN)
    python -m repro wan              # T2: LAN vs WAN scaling
    python -m repro theorems         # T3: Theorem 3 bounds
    python -m repro ablations        # A1-A3
    python -m repro live             # live threaded backend demo
    python -m repro obs              # instrumented demo run + report
    python -m repro obs --self-check # observability pipeline self-test
    python -m repro bench            # perf baselines -> BENCH_*.json
    python -m repro bench --compare OLD NEW   # regression gate
    python -m repro adversary --schedules 200 --seed 0   # fault campaign
    python -m repro adversary --seed 0 --index 46        # one schedule
    python -m repro adversary --replay failure.json      # replay a script
    python -m repro all              # every experiment above

Any experiment command accepts ``--metrics-out FILE.jsonl`` /
``--trace-out FILE.jsonl`` to run it under a process-wide
observability hub and dump the telemetry as JSONL (metrics only /
spans+events only, respectively), with an end-of-run summary line.
``--trace-format chrome`` switches the trace dump to Chrome
``trace_event`` JSON, loadable directly in Perfetto.

Any experiment command also accepts ``--jobs/-j N`` to fan its runs out
over N worker processes (bit-identical results, see
docs/experiments.md) and ``--cache-dir DIR`` / ``--no-cache`` to serve
repeated configs from the on-disk result cache.

Installed as the ``repro-marp`` console script as well.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro-marp argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-marp",
        description=(
            "Reproduction harness for 'Achieving Replication Consistency "
            "Using Cooperating Mobile Agents' (Cao, Chan & Wu, ICPP 2001)."
        ),
    )
    parser.add_argument(
        "command",
        choices=[
            "fig2", "fig3", "fig4", "compare", "wan", "theorems",
            "ablations", "scale", "scalability", "availability",
            "throughput", "live",
            "obs", "bench", "adversary", "all",
        ],
        help="which experiment to regenerate",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="seeds per configuration (default 2)",
    )
    parser.add_argument(
        "--requests", type=int, default=20,
        help="requests per client (default 20)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help=(
            "fan runs out over N worker processes (default 1: serial); "
            "results are bit-identical to the serial path"
        ),
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help=(
            "cache run results on disk under DIR so identical configs "
            "are served from cache on re-runs (also enabled by setting "
            "$REPRO_CACHE_DIR)"
        ),
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help=(
            "disable the result cache even when --cache-dir or "
            "$REPRO_CACHE_DIR is set"
        ),
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="small fast settings (single repeat, fewer points)",
    )
    parser.add_argument(
        "--format", choices=["text", "csv", "json"], default="text",
        help="output format for figures and comparison tables",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE.jsonl", default=None,
        help="run under an observability hub; dump metrics as JSONL",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="run under an observability hub; dump spans/events as JSONL",
    )
    parser.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help=(
            "format for --trace-out: jsonl records (default) or Chrome "
            "trace_event JSON for Perfetto/chrome://tracing"
        ),
    )
    parser.add_argument(
        "--self-check", action="store_true",
        help="with the obs command: run the observability self-test",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help=(
            "with the bench command: diff two BENCH_*.json files (or "
            "directories of them); exit 1 on a throughput regression"
        ),
    )
    parser.add_argument(
        "--bench-suite",
        choices=["kernel", "parallel", "live", "scale", "all"],
        default="all",
        help="with the bench command: which scenario suite(s) to run",
    )
    parser.add_argument(
        "--scale-out", metavar="FILE.json", default=None,
        help=(
            "with the scale command: also write the saturation curves "
            "as a JSON document (the CI scale-smoke artifact)"
        ),
    )
    parser.add_argument(
        "--out-dir", metavar="DIR", default=".",
        help="with the bench command: where to write BENCH_*.json",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRAC",
        help=(
            "with bench --compare: relative throughput drop that counts "
            "as a regression (default 0.10)"
        ),
    )
    parser.add_argument(
        "--schedules", type=int, default=200, metavar="N",
        help=(
            "with the adversary command: how many seeded schedules to "
            "generate and check (default 200)"
        ),
    )
    parser.add_argument(
        "--index", type=int, default=None, metavar="I",
        help=(
            "with the adversary command: check exactly campaign "
            "schedule I of --seed instead of a full campaign (this is "
            "the reproduction command a failing campaign prints)"
        ),
    )
    parser.add_argument(
        "--replay", metavar="FILE.json", default=None,
        help=(
            "with the adversary command: replay one schedule JSON "
            "(e.g. a saved failure or a corpus file) instead of "
            "generating schedules"
        ),
    )
    parser.add_argument(
        "--save-failures", metavar="DIR", default=None,
        help=(
            "with the adversary command: write every failing "
            "schedule's shrunk JSON into DIR, ready for promotion to "
            "tests/machines/corpus/"
        ),
    )
    parser.add_argument(
        "--hosts", type=int, default=None, metavar="N",
        help=(
            "with the adversary command: fix the cluster size instead "
            "of drawing 3-5 per schedule"
        ),
    )
    return parser


def _render_figure(args, figure) -> str:
    if args.format == "csv":
        from repro.analysis.export import figure_to_csv

        return figure_to_csv(figure)
    if args.format == "json":
        from repro.analysis.export import figure_to_json

        return figure_to_json(figure)
    return figure.text


def _render_comparison(args, table) -> str:
    if args.format == "csv":
        from repro.analysis.export import comparison_to_csv

        return comparison_to_csv(table)
    if args.format == "json":
        from repro.analysis.export import comparison_to_json

        return comparison_to_json(table)
    return table.text


def _figures(args, which: str) -> List[str]:
    from repro.experiments import (
        latency_sweep, project_fig2, project_fig3, run_fig4,
    )

    interarrivals = (20, 45, 80) if args.quick else None
    repeats = 1 if args.quick else args.repeats
    kwargs = dict(
        requests_per_client=args.requests, repeats=repeats, seed=args.seed,
    )
    if interarrivals:
        kwargs["interarrivals"] = interarrivals
    if which in ("fig2", "fig3"):
        points = latency_sweep(**kwargs)
        figure = (
            project_fig2(points) if which == "fig2" else project_fig3(points)
        )
    else:
        figure = run_fig4(**kwargs)
    return [_render_figure(args, figure)]


def _compare(args, wan: bool) -> List[str]:
    from repro.experiments import run_comparison

    repeats = 1 if args.quick else args.repeats
    if wan:
        table = run_comparison(
            latencies=("lan", "wan"),
            mean_interarrival=400.0,
            requests_per_client=args.requests,
            repeats=repeats,
            seed=args.seed,
            title="T2: LAN vs WAN scaling",
        )
    else:
        table = run_comparison(
            mean_interarrival=30.0,
            requests_per_client=args.requests,
            repeats=repeats,
            seed=args.seed,
            title="T1: protocol comparison under contention (LAN)",
        )
    return [_render_comparison(args, table)]


def _theorems(args) -> List[str]:
    from repro.experiments import theorem3_bounds

    out = []
    for n in (3, 5):
        report = theorem3_bounds(
            n_replicas=n,
            requests_per_client=args.requests,
            repeats=1 if args.quick else args.repeats,
            seed=args.seed,
        )
        out.append(report.text)
    return out


def _ablations(args) -> List[str]:
    from repro.experiments import (
        run_batching_ablation,
        run_bulletin_ablation,
        run_itinerary_ablation,
    )

    repeats = 1 if args.quick else args.repeats
    kwargs = dict(repeats=repeats, seed=args.seed)
    return [
        run_itinerary_ablation(**kwargs).text,
        run_bulletin_ablation(**kwargs).text,
        run_batching_ablation(**kwargs).text,
    ]


def _scale(args) -> List[str]:
    import json

    from repro.experiments import run_scale
    from repro.experiments.scale import (
        DEFAULT_INTERARRIVALS,
        QUICK_INTERARRIVALS,
        default_variants,
    )

    family = run_scale(
        interarrivals=(
            QUICK_INTERARRIVALS if args.quick else DEFAULT_INTERARRIVALS
        ),
        variants=(
            default_variants(replica_counts=(), key_counts=(),
                             skews=(0.99,), wan=False)
            if args.quick else None
        ),
        requests_per_client=(
            min(args.requests, 40) if args.quick else args.requests
        ),
        repeats=1 if args.quick else args.repeats,
        seed=args.seed,
    )
    sections = [family.text]
    if args.scale_out:
        with open(args.scale_out, "w", encoding="utf-8") as handle:
            json.dump(family.payload(), handle, indent=2, sort_keys=True)
        sections.append(f"saturation curves written to {args.scale_out}")
    return sections


def _scalability(args) -> List[str]:
    from repro.experiments import run_scalability

    table = run_scalability(
        replica_counts=(3, 5, 7) if args.quick else (3, 5, 7, 9),
        requests_per_client=min(args.requests, 10),
        repeats=1 if args.quick else args.repeats,
        seed=args.seed,
    )
    return [table.text]


def _availability(args) -> List[str]:
    from repro.experiments import run_availability

    table = run_availability(
        requests_per_client=min(args.requests, 6),
        repeats=1 if args.quick else args.repeats,
        seed=args.seed,
    )
    return [table.text]


def _throughput(args) -> List[str]:
    from repro.experiments import run_throughput

    table = run_throughput(
        interarrivals=(10.0, 30.0, 80.0) if args.quick
        else (10.0, 20.0, 40.0, 80.0, 160.0),
        requests_per_client=min(args.requests, 15),
        repeats=1 if args.quick else args.repeats,
        seed=args.seed,
    )
    return [table.text]


def _live(args) -> List[str]:
    from repro.runtime import LiveCluster

    n_writes = 6 if args.quick else 15
    with LiveCluster(n_replicas=3, backend="thread", seed=args.seed) as c:
        for index in range(n_writes):
            c.submit_write(c.hosts[index % len(c.hosts)], "x", index)
        records = c.wait_for(n_writes, timeout=60)
    audit = c.audit()
    committed = sum(1 for r in records if r["status"] == "committed")
    return [
        "Live threaded backend (real pickled agent migration):",
        f"  committed {committed}/{n_writes} updates; "
        f"consistent={audit.consistent}; commits={audit.total_commits}",
    ]


def _obs(args, hub) -> List[str]:
    from repro.experiments.runner import RunConfig, run_once
    from repro.obs.export import format_report, summary_line
    from repro.obs.journeys import format_journey_report, reconstruct_journeys

    result = run_once(RunConfig(
        protocol="marp",
        n_replicas=3,
        mean_interarrival=30.0,
        requests_per_client=3 if args.quick else min(args.requests, 10),
        seed=args.seed,
    ))
    return [
        format_report(hub, title="obs: instrumented MARP run (3 replicas)"),
        format_journey_report(reconstruct_journeys(hub)),
        f"run: committed={result.committed} failed={result.failed} "
        f"ALT={result.alt:.1f}ms ATT={result.att:.1f}ms "
        f"consistent={result.audit.consistent}",
        summary_line(hub),
    ]


def _obs_self_check() -> int:
    from repro.obs import self_check

    report = self_check(verbose=True)
    for failure in report.failed:
        print(f"FAILED: {failure}", file=sys.stderr)
    print(report.summary())
    return 0 if report.ok else 1


def _bench(args) -> int:
    from repro.obs.bench import (
        BenchError, SUITES, compare_paths, run_suite, write_bench,
    )

    try:
        if args.compare is not None:
            old_path, new_path = args.compare
            result = compare_paths(old_path, new_path,
                                   threshold=args.threshold)
            for line in result.lines:
                print(line)
            for warning in result.warnings:
                print(f"warning: {warning}")
            if result.regressions:
                for regression in result.regressions:
                    print(f"REGRESSION: {regression}", file=sys.stderr)
                return 1
            print(f"bench compare: no regressions "
                  f"(threshold -{args.threshold:.0%})")
            return 0
        suites = (
            sorted(SUITES) if args.bench_suite == "all"
            else [args.bench_suite]
        )
        for suite in suites:
            doc = run_suite(suite, quick=args.quick)
            path = write_bench(doc, out_dir=args.out_dir)
            for scenario in doc["scenarios"]:
                print(f"  {suite}/{scenario['name']:24s} "
                      f"{scenario['rate']:12g} {scenario['unit']:10s} "
                      f"(wall {scenario['wall_s'] * 1e3:.1f} ms)")
            print(f"wrote {path}")
        return 0
    except BenchError as exc:
        print(f"repro-marp: bench error: {exc}", file=sys.stderr)
        return 2


def _adversary(args) -> int:
    """The ``adversary`` command: fault campaigns over the kernel.

    Three modes: ``--replay FILE`` checks one schedule script,
    ``--index I`` checks exactly one campaign schedule (the printed
    reproduction command), and the default runs a ``--schedules``-sized
    seeded campaign, shrinking and optionally saving every failure.
    Exit code 1 means an invariant was violated.
    """
    from repro.core.machines.adversary import (
        InvariantViolation, Schedule, campaign_rng, check_schedule,
        generate_schedule, reproduction_command, run_campaign,
        shrink_schedule,
    )

    def check_one(schedule, label):
        try:
            outcome = check_schedule(schedule)
        except InvariantViolation as exc:
            print(f"{label}: VIOLATION [{exc.kind}] {exc.detail}",
                  file=sys.stderr)
            shrunk = shrink_schedule(schedule)
            print("shrunk replayable schedule:", file=sys.stderr)
            print(shrunk.to_json(), file=sys.stderr)
            if args.save_failures:
                import os

                os.makedirs(args.save_failures, exist_ok=True)
                path = shrunk.save(os.path.join(
                    args.save_failures, "adversary_failure.json"
                ))
                print(f"saved: {path}", file=sys.stderr)
            return 1
        print(f"{label}: ok — statuses {outcome.statuses}, "
              f"{outcome.events} events")
        return 0

    if args.replay is not None:
        return check_one(Schedule.load(args.replay), args.replay)
    if args.index is not None:
        schedule = generate_schedule(
            campaign_rng(args.seed, args.index), n_hosts=args.hosts
        )
        return check_one(
            schedule, f"schedule {args.index} (seed {args.seed})"
        )

    report = run_campaign(
        args.schedules,
        seed=args.seed,
        n_hosts=args.hosts,
        save_failures=args.save_failures,
    )
    for failure in report.failures:
        print(
            f"schedule {failure.index}: VIOLATION [{failure.kind}] "
            f"{failure.detail}",
            file=sys.stderr,
        )
        print(
            f"  reproduce: {reproduction_command(report.seed, failure.index)}",
            file=sys.stderr,
        )
        if failure.path:
            print(f"  shrunk schedule saved: {failure.path}",
                  file=sys.stderr)
    print(report.summary())
    return 0 if report.ok else 1


def _check_export_paths(args) -> None:
    """Fail fast on unwritable --metrics-out/--trace-out destinations
    (before the experiment runs, not after)."""
    import os

    for path in (args.metrics_out, args.trace_out):
        if not path:
            continue
        parent = os.path.dirname(path) or "."
        if not os.path.isdir(parent):
            raise SystemExit(
                f"repro-marp: error: cannot write {path!r}: "
                f"directory {parent!r} does not exist"
            )


def _write_obs_exports(args, hub) -> List[str]:
    from repro.obs.export import (
        summary_line, write_chrome_trace, write_jsonl,
    )

    lines = []
    if args.metrics_out:
        write_jsonl(hub, args.metrics_out, spans=False, events=False)
        lines.append(summary_line(hub, destination=args.metrics_out))
    if args.trace_out:
        if args.trace_format == "chrome":
            write_chrome_trace(hub, args.trace_out)
        else:
            write_jsonl(hub, args.trace_out, metrics=False)
        lines.append(summary_line(hub, destination=args.trace_out))
    return lines


def _build_runner(args):
    """The experiment engine for this invocation, or None for defaults.

    Caching is opt-in: ``--cache-dir DIR`` or ``$REPRO_CACHE_DIR``
    enables it, ``--no-cache`` wins over both. ``--jobs N`` (N >= 2)
    fans runs out over a process pool.
    """
    import os

    from repro.experiments.cache import ResultCache, default_cache_dir
    from repro.experiments.parallel import ParallelRunner

    if args.jobs < 1:
        raise SystemExit(f"repro-marp: error: --jobs must be >= 1: {args.jobs}")
    cache = None
    if not args.no_cache and (
        args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    ):
        cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.jobs == 1 and cache is None:
        return None
    return ParallelRunner(jobs=args.jobs, cache=cache)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    sections: List[str] = []
    command = args.command

    if command == "obs" and args.self_check:
        return _obs_self_check()
    if command == "bench":
        return _bench(args)

    hub = None
    if command == "obs" or args.metrics_out or args.trace_out:
        from repro import obs

        _check_export_paths(args)
        hub = obs.enable(obs.ObservabilityHub())

    if command == "adversary":
        # Runs under the hub when one is enabled (campaign counters).
        try:
            code = _adversary(args)
            if hub is not None:
                for line in _write_obs_exports(args, hub):
                    print(line)
            return code
        finally:
            if hub is not None:
                from repro.obs import disable

                disable()

    runner = _build_runner(args)
    previous_runner = None
    if runner is not None:
        from repro.experiments.parallel import set_default_runner

        # Every experiment command routes its runs through the default
        # engine, so installing one here parallelises/caches them all.
        previous_runner = set_default_runner(runner)
    try:
        if command == "obs":
            sections += _obs(args, hub)
        if command in ("fig2", "all"):
            sections += _figures(args, "fig2")
        if command in ("fig3", "all"):
            sections += _figures(args, "fig3")
        if command in ("fig4", "all"):
            sections += _figures(args, "fig4")
        if command in ("compare", "all"):
            sections += _compare(args, wan=False)
        if command in ("wan", "all"):
            sections += _compare(args, wan=True)
        if command in ("theorems", "all"):
            sections += _theorems(args)
        if command in ("ablations", "all"):
            sections += _ablations(args)
        if command in ("scale", "all"):
            sections += _scale(args)
        if command in ("scalability", "all"):
            sections += _scalability(args)
        if command in ("availability", "all"):
            sections += _availability(args)
        if command in ("throughput", "all"):
            sections += _throughput(args)
        if command in ("live", "all"):
            sections += _live(args)
        if hub is not None:
            sections += _write_obs_exports(args, hub)
        print("\n\n".join(sections))
        return 0
    finally:
        if runner is not None:
            from repro.experiments.parallel import set_default_runner

            set_default_runner(previous_runner)
            runner.close()
        if hub is not None:
            from repro.obs import disable

            disable()


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
