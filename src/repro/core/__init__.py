"""MARP — the paper's contribution: mobile-agent replication control."""

from repro.core.config import MARPConfig
from repro.core.locking_table import LockingTable
from repro.core.priority import (
    OTHER,
    STALEMATE,
    UNDECIDED,
    WIN,
    Decision,
    decide,
    rank_queue,
)
from repro.core.protocol import MARP
from repro.core.update_agent import UpdateAgent

__all__ = [
    "MARP",
    "MARPConfig",
    "UpdateAgent",
    "LockingTable",
    "Decision",
    "decide",
    "rank_queue",
    "WIN",
    "OTHER",
    "STALEMATE",
    "UNDECIDED",
]
