"""Request batching (paper §3.2).

"After a pre-defined number of requests have been received or
periodically, a mobile agent will be created and dispatched by Si for
processing the requests." One agent then carries the whole batch as its
Request List and commits every write under a single lock acquisition —
amortising migrations and the UPDATE/COMMIT rounds (ablation A3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.replication.requests import RequestRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import MARP

__all__ = ["BatchDispatcher"]


class BatchDispatcher:
    """Per-home buffering of write requests into agent batches."""

    def __init__(self, marp: "MARP") -> None:
        self.marp = marp
        self.batch_size = marp.config.batch_size
        self.flush_interval = marp.config.batch_flush_interval
        self._buffers: Dict[str, List[RequestRecord]] = {}
        self._flusher_running: Dict[str, bool] = {}
        self.flushes = 0
        self.timer_flushes = 0

    def add(self, record: RequestRecord) -> None:
        """Buffer one write; dispatch when the batch fills."""
        buffer = self._buffers.setdefault(record.home, [])
        buffer.append(record)
        if len(buffer) >= self.batch_size:
            self._flush(record.home)
        elif not self._flusher_running.get(record.home):
            self._flusher_running[record.home] = True
            self.marp.env.process(
                self._flush_timer(record.home),
                name=f"batch-timer-{record.home}",
            )

    def _flush(self, home: str) -> None:
        buffer = self._buffers.get(home)
        if not buffer:
            return
        records, self._buffers[home] = list(buffer), []
        self.flushes += 1
        self.marp.launch_agent(home, records)

    def _flush_timer(self, home: str):
        """Periodic dispatch of partial batches ("or periodically")."""
        yield self.marp.env.timeout(self.flush_interval)
        self._flusher_running[home] = False
        if self._buffers.get(home):
            self.timer_flushes += 1
            self._flush(home)

    def pending(self, home: str) -> int:
        return len(self._buffers.get(home, ()))

    def __repr__(self) -> str:
        return (
            f"<BatchDispatcher size={self.batch_size} "
            f"flushes={self.flushes}>"
        )
