"""MARP protocol configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machines.config import DES_TUNABLES
from repro.errors import ProtocolError

__all__ = ["MARPConfig"]


@dataclass
class MARPConfig:
    """Tunables of the MARP update protocol.

    Attributes
    ----------
    itinerary:
        Strategy name for choosing the next server
        (:mod:`repro.agents.itinerary`); the paper uses cost-sorted.
    read_strategy:
        ``"local"`` (paper: "a read operation may be executed on an
        arbitrary copy") or ``"quorum"`` (extension [D5]).
    batch_size:
        Requests carried per agent (paper §3.2: "after a pre-defined
        number of requests have been received ... a mobile agent will be
        created"). 1 = one agent per request (the evaluated setting).
    batch_flush_interval:
        Dispatch a partial batch after this many ms ("or periodically").
        Only meaningful when ``batch_size > 1``.
    park_timeout:
        Max ms a losing agent waits for a lock-release notification
        before proactively refreshing its view ([D2]).
    ack_timeout:
        Ms a claiming agent waits for the majority of UPDATE
        acknowledgements before releasing its grants and retrying.
    max_claims:
        Claim attempts before the agent aborts the request. Failed
        claims only occur under concurrent tie-break claims or server
        failures.
    claim_backoff:
        Mean of the randomized (exponential) delay before re-claiming
        after a failed claim, in ms.

    The agent-protocol fields default to the kernel's
    :data:`~repro.core.machines.config.DES_TUNABLES`; this dataclass is
    handed to :class:`~repro.core.machines.agent.AgentMachine` as its
    tunables object.
    """

    itinerary: str = "cost-sorted"
    read_strategy: str = "local"
    batch_size: int = 1
    batch_flush_interval: float = 100.0
    park_timeout: float = DES_TUNABLES.park_timeout
    ack_timeout: float = DES_TUNABLES.ack_timeout
    max_claims: int = DES_TUNABLES.max_claims
    claim_backoff: float = DES_TUNABLES.claim_backoff
    #: Delta-view data plane: must match the replicas' setting so agent
    #: Locking Tables report the compact wire encoding and hand servers
    #: their acked sequence (see ProtocolTunables.delta_views).
    delta_views: bool = DES_TUNABLES.delta_views

    def __post_init__(self) -> None:
        if self.read_strategy not in ("local", "quorum"):
            raise ProtocolError(
                f"unknown read strategy {self.read_strategy!r}"
            )
        if self.batch_size < 1:
            raise ProtocolError(f"batch_size must be >= 1: {self.batch_size}")
        if self.batch_flush_interval <= 0:
            raise ProtocolError("batch_flush_interval must be > 0")
        if self.park_timeout <= 0:
            raise ProtocolError("park_timeout must be > 0")
        if self.ack_timeout <= 0:
            raise ProtocolError("ack_timeout must be > 0")
        if self.max_claims < 1:
            raise ProtocolError("max_claims must be >= 1")
        if self.claim_backoff < 0:
            raise ProtocolError("claim_backoff must be >= 0")
