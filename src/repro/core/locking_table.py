"""The mobile agent's Locking Table (compatibility shim).

The Locking Table is the central protocol data structure of Algorithm 1,
so the implementation now lives in the sans-IO kernel —
:mod:`repro.core.machines.table`. This module re-exports it unchanged
for existing importers.
"""

from __future__ import annotations

from repro.core.machines.table import LockingTable

__all__ = ["LockingTable"]
