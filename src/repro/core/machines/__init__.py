"""The sans-IO protocol kernel.

One implementation of the paper's two algorithms, shared by every
execution backend:

* :mod:`~repro.core.machines.agent` — :class:`AgentMachine`,
  Algorithm 1 (tour → merge → decide → park/claim/back-off) over a
  picklable :class:`AgentCoreState`;
* :mod:`~repro.core.machines.replica` — :class:`ReplicaMachine`,
  Algorithm 2 (lock append, bulletin exchange, UPDATE grants, COMMIT
  application, release wake-ups);
* :mod:`~repro.core.machines.events` / :mod:`~repro.core.machines.effects`
  — the typed inputs the machines consume and the typed effects they
  emit; drivers (the DES :class:`~repro.core.update_agent.UpdateAgent`
  and :class:`~repro.replication.server.ReplicaServer`, the live
  :class:`~repro.runtime.host.HostRuntime`) perform all I/O, timing,
  randomness and observability;
* :mod:`~repro.core.machines.structures` / :mod:`~repro.core.machines.wire`
  / :mod:`~repro.core.machines.table` / :mod:`~repro.core.machines.priority`
  — the protocol-owned data structures and the priority calculation;
* :mod:`~repro.core.machines.config` — the single home of every
  protocol tunable (:class:`ProtocolTunables`);
* :mod:`~repro.core.machines.replay` — a deterministic script-replay
  harness that runs whole protocol scenarios with no simulator, no
  threads and no randomness, including fault primitives (partitions,
  per-message drop/duplicate/delay, agent churn);
* :mod:`~repro.core.machines.adversary` — a seeded, property-based
  schedule adversary over the harness: a JSON-serializable fault DSL,
  safety/liveness checkers, a generator, a shrinker and campaign
  tooling (see ``docs/fault-campaigns.md``).

The kernel imports nothing from :mod:`repro.core` (outside this
package), :mod:`repro.replication`, :mod:`repro.sim`, :mod:`repro.net`
or :mod:`repro.runtime` — only :mod:`repro.errors` and
:mod:`repro.agents.identity`. (The adversary's campaign runner binds
to :mod:`repro.obs` lazily, for counters, without dragging it into
kernel imports.) See ``docs/architecture.md``.
"""

from repro.core.machines.intern import Interner
from repro.core.machines.structures import (
    CommitRecord,
    HistoryLog,
    LockEntry,
    LockingList,
    LockView,
    UpdatedList,
    VersionedStore,
    VersionedValue,
)
from repro.core.machines.wire import (
    SharedView,
    Transform,
    UpdatePayload,
    VisitData,
    WriteOp,
)
from repro.core.machines.table import LockingTable
from repro.core.machines.priority import (
    OTHER,
    STALEMATE,
    UNDECIDED,
    WIN,
    Decision,
    decide,
    decide_reference,
    rank_queue,
)
from repro.core.machines.config import (
    DES_TUNABLES,
    LIVE_TUNABLES,
    ProtocolTunables,
)
from repro.core.machines.events import (
    Arrived,
    MsgReceived,
    ReplicaDown,
    TimerFired,
)
from repro.core.machines.effects import (
    Backoff,
    Broadcast,
    CancelTimer,
    ClaimResolved,
    ClaimStarted,
    CommitApplied,
    Dispose,
    Effect,
    Granted,
    LockWon,
    Migrate,
    Nacked,
    Note,
    Park,
    PostBulletin,
    QueueChanged,
    Recovered,
    ReleaseNotify,
    Send,
    SetTimer,
    Visit,
)
from repro.core.machines.replica import ReplicaMachine
from repro.core.machines.agent import AgentCoreState, AgentMachine
from repro.core.machines.replay import (
    DROPPABLE_KINDS,
    EventBudgetExceeded,
    KernelHarness,
    replay,
)
from repro.core.machines.adversary import (
    CampaignFailure,
    CampaignReport,
    CrashOp,
    DelayOp,
    DropOp,
    DuplicateOp,
    HealOp,
    InvariantViolation,
    KillOp,
    PartitionOp,
    RestartOp,
    Schedule,
    ScheduleOutcome,
    SubmitOp,
    check_schedule,
    generate_schedule,
    run_campaign,
    run_schedule,
    shrink_schedule,
)

__all__ = [
    # structures
    "CommitRecord", "HistoryLog", "Interner", "LockEntry", "LockingList",
    "LockView", "UpdatedList", "VersionedStore", "VersionedValue",
    # wire
    "SharedView", "Transform", "UpdatePayload", "VisitData", "WriteOp",
    # table + priority
    "LockingTable",
    "OTHER", "STALEMATE", "UNDECIDED", "WIN",
    "Decision", "decide", "decide_reference", "rank_queue",
    # config
    "DES_TUNABLES", "LIVE_TUNABLES", "ProtocolTunables",
    # events
    "Arrived", "MsgReceived", "ReplicaDown", "TimerFired",
    # effects
    "Backoff", "Broadcast", "CancelTimer", "ClaimResolved", "ClaimStarted",
    "CommitApplied", "Dispose", "Effect", "Granted", "LockWon", "Migrate",
    "Nacked", "Note", "Park", "PostBulletin", "QueueChanged", "Recovered",
    "ReleaseNotify", "Send", "SetTimer", "Visit",
    # machines + harness
    "ReplicaMachine", "AgentCoreState", "AgentMachine",
    "KernelHarness", "replay", "EventBudgetExceeded", "DROPPABLE_KINDS",
    # adversary
    "Schedule", "ScheduleOutcome", "InvariantViolation",
    "SubmitOp", "CrashOp", "RestartOp", "PartitionOp", "HealOp",
    "DropOp", "DuplicateOp", "DelayOp", "KillOp",
    "run_schedule", "check_schedule", "generate_schedule",
    "shrink_schedule", "run_campaign", "CampaignFailure", "CampaignReport",
]
