"""Property-based schedule adversary for the protocol kernel.

The replay harness (:mod:`~repro.core.machines.replay`) can realize
interleavings neither execution backend reaches naturally; this module
weaponizes it. A :class:`Schedule` is a declarative, JSON-serializable
fault script — submitted updates plus timed replica crashes/restarts,
network partitions, per-message drop/duplicate/delay directives and
mid-claim agent churn — and :func:`check_schedule` runs one through a
:class:`~repro.core.machines.replay.KernelHarness` and asserts the two
properties the paper's correctness argument rests on:

**Safety ([D1], Theorems 1-2).** Never two committed winners per
round: every committed ``(key, version)`` cell holds exactly one
``(request, value)`` across all replica histories, version chains per
key are gapless from 1, and only committed (or churned-away) agents
own cells.

**Liveness under heal.** Once faults stop — `run` heals partitions and
restarts every crashed replica at the schedule horizon — every
submitted update either commits or aborts within a bounded settle
window. Schedules that kill agents are exempt from the completion
check (a vanished agent's stale lock entries can legitimately park the
survivors; the paper delegates agent fault tolerance to the platform)
but still assert safety and bounded execution.

Failures raise :class:`InvariantViolation` carrying the full schedule
JSON, so a Hypothesis falsifying example — or a long random campaign
via :func:`run_campaign` — prints a script that replays the exact run.
:func:`shrink_schedule` greedily minimizes a failing schedule, and the
regression corpus under ``tests/machines/corpus/`` re-checks every
promoted script on every test run. See ``docs/fault-campaigns.md``.

The generator stays inside the paper's fault model on purpose (bounds
below): at most a minority of replicas down at any instant, reliable
(buffered, never lost) channels across partitions, commit/abort/sync
propagation never dropped, and grant TTLs that comfortably exceed any
live claim round plus the fault horizon. Schedules outside that
envelope can violate one-copy serializability *by design* — MARP's
ceiling argument genuinely needs those assumptions — so the adversary
explores every corner of the claimed envelope and nothing beyond it.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.machines.config import ProtocolTunables
from repro.core.machines.replay import EventBudgetExceeded, KernelHarness

__all__ = [
    "SCHEDULE_VERSION",
    "SubmitOp", "CrashOp", "RestartOp", "PartitionOp", "HealOp",
    "DropOp", "DuplicateOp", "DelayOp", "KillOp",
    "Schedule", "ScheduleOutcome", "InvariantViolation",
    "run_schedule", "check_schedule",
    "generate_schedule", "shrink_schedule",
    "CampaignFailure", "CampaignReport", "run_campaign",
    "campaign_rng", "reproduction_command",
]

#: Version stamp of the schedule JSON format.
SCHEDULE_VERSION = 1

# ---------------------------------------------------------------------------
# Generator bounds. These define the fault envelope the adversary explores;
# the grant-TTL floor is derived from them so a TTL can never expire while
# a live claim (or a partition that buffered its COMMIT) is still in
# flight — expiry past that point is the documented unsafe corner of the
# paper's model, not a protocol bug.
# ---------------------------------------------------------------------------

#: Simulated-time horizon: all scheduled faults happen before this, and
#: `run` heals everything still broken at exactly this time.
HORIZON = 300.0
#: Largest per-message extra delay a DelayOp/DuplicateOp may add.
MAX_EXTRA_DELAY = 30.0
#: Message-index range fault directives are drawn from.
MAX_MSG_INDEX = 300
#: Fixed claim-abort budget for generated schedules.
MAX_CLAIMS = 10


def grant_ttl_floor(ack_timeout: float, msg_latency: float = 1.0) -> float:
    """Smallest in-model grant TTL for the generator's bounds.

    A grant must outlive (a) any live claim round — bounded by the ack
    timeout plus a round trip with worst-case extra delays — and (b)
    any partition/crash window that buffered the corresponding COMMIT,
    bounded by the fault horizon.
    """
    return HORIZON + ack_timeout + 4 * (msg_latency + MAX_EXTRA_DELAY)


# ---------------------------------------------------------------------------
# The schedule DSL
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SubmitOp:
    """Create one update agent at ``home`` writing ``key = value``."""

    home: str
    request_id: int
    key: str
    value: Any
    at: float = 0.0


@dataclass(frozen=True)
class CrashOp:
    """Fail-stop ``host`` at time ``at``."""

    host: str
    at: float


@dataclass(frozen=True)
class RestartOp:
    """Bring ``host`` back at ``at`` with an atomic peer resync."""

    host: str
    at: float


@dataclass(frozen=True)
class PartitionOp:
    """Split the cluster into ``groups`` at ``at`` (buffering cut)."""

    groups: Tuple[Tuple[str, ...], ...]
    at: float


@dataclass(frozen=True)
class HealOp:
    """Heal the partition at ``at``, delivering buffered messages."""

    at: float


@dataclass(frozen=True)
class DropOp:
    """Drop the ``nth`` message (droppable kinds only)."""

    nth: int


@dataclass(frozen=True)
class DuplicateOp:
    """Deliver the ``nth`` message twice, ``extra_delay`` apart."""

    nth: int
    extra_delay: float = 0.0


@dataclass(frozen=True)
class DelayOp:
    """Add ``by`` to the ``nth`` message's latency."""

    nth: int
    by: float


@dataclass(frozen=True)
class KillOp:
    """Vanish the ``agent``-th submitted agent (0-based) at ``at``."""

    agent: int
    at: float


#: op-name <-> dataclass registry for (de)serialization.
_OP_TYPES: Dict[str, type] = {
    "submit": SubmitOp,
    "crash": CrashOp,
    "restart": RestartOp,
    "partition": PartitionOp,
    "heal": HealOp,
    "drop": DropOp,
    "duplicate": DuplicateOp,
    "delay": DelayOp,
    "kill": KillOp,
}
_OP_NAMES = {cls: name for name, cls in _OP_TYPES.items()}


def _op_to_dict(op) -> Dict[str, Any]:
    d: Dict[str, Any] = {"op": _OP_NAMES[type(op)]}
    for f in op.__dataclass_fields__:
        value = getattr(op, f)
        if isinstance(value, tuple):
            value = [list(g) if isinstance(g, tuple) else g for g in value]
        d[f] = value
    return d


def _op_from_dict(d: Dict[str, Any]):
    kind = d.get("op")
    cls = _OP_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown schedule op {kind!r}")
    kwargs = {k: v for k, v in d.items() if k != "op"}
    if cls is PartitionOp:
        kwargs["groups"] = tuple(tuple(g) for g in kwargs["groups"])
    return cls(**kwargs)


@dataclass(frozen=True)
class Schedule:
    """One complete, replayable adversary scenario.

    A schedule is a pure value: hosts are always ``s1..sN``, tunables
    are the :class:`~repro.core.machines.config.ProtocolTunables`
    keyword overrides, and everything else is the workload
    (``submits``) plus the fault script (``ops``). Running it through
    :func:`check_schedule` is a deterministic function of this value.
    """

    n_hosts: int
    tunables: Dict[str, Any] = field(default_factory=dict)
    submits: Tuple[SubmitOp, ...] = ()
    ops: Tuple[Any, ...] = ()
    horizon: float = HORIZON
    hop_latency: float = 1.0
    msg_latency: float = 1.0
    version: int = SCHEDULE_VERSION

    @property
    def hosts(self) -> Tuple[str, ...]:
        """The host names, ``s1..sN``."""
        return tuple(f"s{i}" for i in range(1, self.n_hosts + 1))

    @property
    def has_kills(self) -> bool:
        """True when the schedule churns agents (liveness-exempt)."""
        return any(isinstance(op, KillOp) for op in self.ops)

    def protocol_tunables(self) -> ProtocolTunables:
        """The tunables object the harness machines will read."""
        return ProtocolTunables(**self.tunables)

    def validate(self) -> None:
        """Raise ``ValueError`` on a malformed schedule."""
        if self.version != SCHEDULE_VERSION:
            raise ValueError(
                f"schedule version {self.version} != {SCHEDULE_VERSION}"
            )
        if self.n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        hosts = set(self.hosts)
        ids = [s.request_id for s in self.submits]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate request ids: {ids}")
        for submit in self.submits:
            if submit.home not in hosts:
                raise ValueError(f"unknown home {submit.home!r}")
        for op in self.ops:
            if isinstance(op, (CrashOp, RestartOp)) and op.host not in hosts:
                raise ValueError(f"unknown host {op.host!r} in {op}")
            if isinstance(op, PartitionOp):
                for group in op.groups:
                    for host in group:
                        if host not in hosts:
                            raise ValueError(
                                f"unknown host {host!r} in partition"
                            )
            if isinstance(op, KillOp) and not (
                0 <= op.agent < len(self.submits)
            ):
                raise ValueError(f"kill index {op.agent} out of range")
        self.protocol_tunables()  # bounds-check the overrides

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data rendering (stable under JSON round-trips)."""
        return {
            "version": self.version,
            "n_hosts": self.n_hosts,
            "tunables": dict(self.tunables),
            "horizon": self.horizon,
            "hop_latency": self.hop_latency,
            "msg_latency": self.msg_latency,
            "submits": [_op_to_dict(s) for s in self.submits],
            "ops": [_op_to_dict(op) for op in self.ops],
        }

    def to_json(self) -> str:
        """Canonical JSON text of this schedule."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Schedule":
        """Inverse of :meth:`to_dict`."""
        submits = tuple(
            SubmitOp(**{k: v for k, v in s.items() if k != "op"})
            for s in data.get("submits", ())
        )
        ops = tuple(_op_from_dict(op) for op in data.get("ops", ()))
        return cls(
            n_hosts=data["n_hosts"],
            tunables=dict(data.get("tunables", {})),
            submits=submits,
            ops=ops,
            horizon=data.get("horizon", HORIZON),
            hop_latency=data.get("hop_latency", 1.0),
            msg_latency=data.get("msg_latency", 1.0),
            version=data.get("version", SCHEDULE_VERSION),
        )

    @classmethod
    def from_json(cls, text: str) -> "Schedule":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> str:
        """Write the schedule JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
        return path

    @classmethod
    def load(cls, path: str) -> "Schedule":
        """Read a schedule JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


# ---------------------------------------------------------------------------
# Execution + invariants
# ---------------------------------------------------------------------------

#: Hard per-schedule event budget; exceeding it is a liveness failure.
DEFAULT_MAX_EVENTS = 250_000


class InvariantViolation(AssertionError):
    """A schedule broke safety or liveness; carries the replay script.

    The message embeds the schedule JSON so any reporter that prints
    the exception (pytest, Hypothesis's falsifying example, the
    campaign CLI) hands the reader a directly replayable script.
    """

    def __init__(self, kind: str, detail: str, schedule: Schedule) -> None:
        self.kind = kind
        self.detail = detail
        self.schedule = schedule
        super().__init__(
            f"[{kind}] {detail}\nreplayable schedule:\n{schedule.to_json()}"
        )


@dataclass
class ScheduleOutcome:
    """What one checked schedule did (when no invariant broke)."""

    statuses: Dict[int, str]
    chains: Dict[str, List[Tuple[int, Any]]]
    killed: int
    events: int


def _settle_window(tunables: ProtocolTunables, msg_latency: float) -> float:
    """Sim-time the cluster gets to converge after the heal."""
    claim_round = tunables.ack_timeout + 4 * tunables.claim_backoff \
        + 8 * msg_latency
    return (
        tunables.grant_ttl
        + 40 * tunables.park_timeout
        + (tunables.max_claims + 2) * claim_round
        + 500.0
    )


def run_schedule(
    schedule: Schedule, max_events: int = DEFAULT_MAX_EVENTS
) -> Tuple[KernelHarness, Tuple]:
    """Execute a schedule: fault phase, forced heal, settle phase.

    Returns ``(harness, agent_ids)`` — the drained world plus the agent
    ids in submit order. Raises
    :class:`~repro.core.machines.replay.EventBudgetExceeded` if either
    phase livelocks past ``max_events``.
    """
    schedule.validate()
    harness = KernelHarness(
        schedule.hosts,
        tunables=schedule.protocol_tunables(),
        hop_latency=schedule.hop_latency,
        msg_latency=schedule.msg_latency,
    )
    agent_ids = tuple(
        harness.submit(
            s.home, s.request_id, s.key, s.value, at=s.at, created_seq=i
        )
        for i, s in enumerate(schedule.submits)
    )
    for op in schedule.ops:
        if isinstance(op, CrashOp):
            harness.crash(op.host, at=op.at)
        elif isinstance(op, RestartOp):
            harness.restart(op.host, at=op.at, atomic=True)
        elif isinstance(op, PartitionOp):
            harness.set_partition(op.groups, at=op.at)
        elif isinstance(op, HealOp):
            harness.heal_partition(at=op.at)
        elif isinstance(op, DropOp):
            harness.drop_message(op.nth)
        elif isinstance(op, DuplicateOp):
            harness.duplicate_message(op.nth, op.extra_delay)
        elif isinstance(op, DelayOp):
            harness.delay_message(op.nth, op.by)
        elif isinstance(op, KillOp):
            harness.kill(agent_ids[op.agent], at=op.at)
        else:
            raise ValueError(f"unknown schedule op {op!r}")

    # Fault phase: everything the script threw at the cluster.
    harness.run(until=schedule.horizon, max_events=max_events)
    # Faults stop: heal the partition, restart every crashed replica.
    harness.heal_partition()
    for host in sorted(harness.down):
        harness.restart(host, atomic=True)
    # Settle phase: liveness-under-heal must resolve inside this window.
    deadline = schedule.horizon + _settle_window(
        schedule.protocol_tunables(), schedule.msg_latency
    )
    harness.run(until=deadline, max_events=max_events)
    return harness, agent_ids


def _safety_violations(harness: KernelHarness) -> List[str]:
    """The [D1] one-copy checks over the union of replica histories."""
    violations: List[str] = []
    # (key, version) -> set of (request_id, rendered value)
    cells: Dict[Tuple[str, int], Set[Tuple[int, str]]] = {}
    for replica in harness.replicas.values():
        for record in replica.history:
            cells.setdefault((record.key, record.version), set()).add(
                (record.request_id, repr(record.value))
            )
    for (key, version), owners in sorted(cells.items()):
        if len(owners) > 1:
            violations.append(
                f"two committed winners for round ({key!r}, v{version}): "
                f"{sorted(owners)}"
            )
    by_key: Dict[str, Set[int]] = {}
    for key, version in cells:
        by_key.setdefault(key, set()).add(version)
    for key, versions in sorted(by_key.items()):
        expected = set(range(1, max(versions) + 1))
        if versions != expected:
            violations.append(
                f"commit chain for {key!r} has gaps: "
                f"{sorted(versions)} (expected 1..{max(versions)})"
            )
    # Cell ownership must reconcile with agent dispositions.
    owners_by_request: Dict[int, Set[Tuple[str, int]]] = {}
    for cell, owners in cells.items():
        for request_id, _value in owners:
            owners_by_request.setdefault(request_id, set()).add(cell)
    for request_id, status in sorted(harness.results.items()):
        if status == "committed" and request_id not in owners_by_request:
            violations.append(
                f"request {request_id} reported committed but owns no "
                f"(key, version) cell on any replica"
            )
        if status == "failed" and request_id in owners_by_request:
            violations.append(
                f"request {request_id} aborted yet owns committed cells "
                f"{sorted(owners_by_request[request_id])}"
            )
    return violations


def _liveness_violations(
    harness: KernelHarness, schedule: Schedule
) -> List[str]:
    """Liveness under heal: every surviving update commits or aborts."""
    if schedule.has_kills:
        return []
    violations = []
    for submit in schedule.submits:
        status = harness.results.get(submit.request_id)
        if status not in ("committed", "failed"):
            violations.append(
                f"request {submit.request_id} (key {submit.key!r} from "
                f"{submit.home}) never resolved after the heal: "
                f"status={status!r}"
            )
    return violations


def check_schedule(
    schedule: Schedule, max_events: int = DEFAULT_MAX_EVENTS
) -> ScheduleOutcome:
    """Run a schedule and assert safety + liveness-under-heal.

    Returns a :class:`ScheduleOutcome` on success; raises
    :class:`InvariantViolation` (an ``AssertionError`` carrying the
    replayable schedule JSON) on any breach, including an exceeded
    event budget (livelock).
    """
    try:
        harness, _agent_ids = run_schedule(schedule, max_events=max_events)
    except EventBudgetExceeded as exc:
        raise InvariantViolation("livelock", str(exc), schedule) from exc
    safety = _safety_violations(harness)
    liveness = _liveness_violations(harness, schedule)
    if safety or liveness:
        kind = "safety" if safety else "liveness"
        raise InvariantViolation(
            kind, "; ".join(safety + liveness), schedule
        )
    return ScheduleOutcome(
        statuses=harness.statuses(),
        chains=harness.commit_chains(),
        killed=len(harness.killed),
        events=harness.events_processed,
    )


# ---------------------------------------------------------------------------
# Seeded generation
# ---------------------------------------------------------------------------


def generate_schedule(
    rng: random.Random, n_hosts: Optional[int] = None
) -> Schedule:
    """Draw one randomized in-model schedule from ``rng``.

    Pure function of the RNG state: the CLI's per-index
    :func:`campaign_rng` makes every campaign schedule individually
    reproducible. The draw respects the fault envelope documented in
    the module docstring — minority crashes, healed-by-horizon
    partitions, bounded delays, TTLs above :func:`grant_ttl_floor`.
    """
    n = n_hosts or rng.choice((3, 4, 5))
    hosts = tuple(f"s{i}" for i in range(1, n + 1))
    ack_timeout = round(rng.uniform(10.0, 60.0), 1)
    tunables = {
        "park_timeout": round(rng.uniform(5.0, 40.0), 1),
        "ack_timeout": ack_timeout,
        "claim_backoff": round(rng.uniform(1.0, 20.0), 1),
        "max_claims": MAX_CLAIMS,
        "grant_ttl": round(
            grant_ttl_floor(ack_timeout) * rng.uniform(2.0, 4.0), 1
        ),
    }
    # Workload: a handful of agents biased onto one hot key so conflict
    # rounds (the interesting case) actually form.
    n_agents = rng.randint(1, 6)
    keys = ("x",) if rng.random() < 0.6 else ("x", "y")
    submits = tuple(
        SubmitOp(
            home=rng.choice(hosts),
            request_id=i + 1,
            key=rng.choice(keys),
            value=f"v{i + 1}",
            # Mostly an early burst (maximum contention), occasionally a
            # straggler landing mid-fault-window.
            at=round(
                rng.uniform(0.0, 60.0)
                if rng.random() < 0.8
                else rng.uniform(60.0, HORIZON * 0.6),
                1,
            ),
        )
        for i in range(n_agents)
    )
    ops: List[Any] = []
    # Crashes: never more than a minority down at once — windows are
    # confined to a crashable subset of floor((N-1)/2) hosts.
    f = (n - 1) // 2
    if f > 0 and rng.random() < 0.8:
        for host in rng.sample(hosts, k=f):
            for _ in range(rng.randint(1, 2)):
                down_at = round(rng.uniform(0.0, HORIZON * 0.5), 1)
                up_at = round(
                    min(down_at + rng.uniform(3.0, 80.0), HORIZON - 1.0), 1
                )
                ops.append(CrashOp(host, down_at))
                ops.append(RestartOp(host, up_at))
    # At most one partition window, healed well before the horizon.
    if rng.random() < 0.5:
        shuffled = list(hosts)
        rng.shuffle(shuffled)
        cut = rng.randint(1, n - 1)
        groups = (tuple(shuffled[:cut]), tuple(shuffled[cut:]))
        start = round(rng.uniform(0.0, HORIZON * 0.4), 1)
        span = round(rng.uniform(5.0, HORIZON * 0.3), 1)
        ops.append(PartitionOp(groups, start))
        ops.append(HealOp(round(start + span, 1)))
    # Per-message perturbations on the deterministic send index. Biased
    # toward low indexes, where the live claim traffic actually is.
    for _ in range(rng.randint(0, 5)):
        nth = rng.randrange(
            MAX_MSG_INDEX if rng.random() < 0.3 else MAX_MSG_INDEX // 3
        )
        flavor = rng.random()
        if flavor < 0.4:
            ops.append(DropOp(nth))
        elif flavor < 0.7:
            ops.append(
                DuplicateOp(nth, round(rng.uniform(0.0, MAX_EXTRA_DELAY), 1))
            )
        else:
            ops.append(
                DelayOp(nth, round(rng.uniform(1.0, MAX_EXTRA_DELAY), 1))
            )
    # Mid-claim churn: occasionally vanish one agent outright.
    if n_agents > 1 and rng.random() < 0.25:
        ops.append(
            KillOp(
                agent=rng.randrange(n_agents),
                at=round(rng.uniform(5.0, HORIZON * 0.8), 1),
            )
        )
    return Schedule(
        n_hosts=n, tunables=tunables, submits=submits, ops=tuple(ops)
    )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _without_submit(schedule: Schedule, index: int) -> Schedule:
    """Remove one submit, dropping/re-aiming kill ops accordingly."""
    submits = tuple(
        s for i, s in enumerate(schedule.submits) if i != index
    )
    ops: List[Any] = []
    for op in schedule.ops:
        if isinstance(op, KillOp):
            if op.agent == index:
                continue
            if op.agent > index:
                op = KillOp(agent=op.agent - 1, at=op.at)
        ops.append(op)
    return Schedule(
        n_hosts=schedule.n_hosts,
        tunables=schedule.tunables,
        submits=submits,
        ops=tuple(ops),
        horizon=schedule.horizon,
        hop_latency=schedule.hop_latency,
        msg_latency=schedule.msg_latency,
    )


def _without_op(schedule: Schedule, index: int) -> Schedule:
    ops = tuple(op for i, op in enumerate(schedule.ops) if i != index)
    return Schedule(
        n_hosts=schedule.n_hosts,
        tunables=schedule.tunables,
        submits=schedule.submits,
        ops=ops,
        horizon=schedule.horizon,
        hop_latency=schedule.hop_latency,
        msg_latency=schedule.msg_latency,
    )


def shrink_schedule(
    schedule: Schedule,
    still_fails: Optional[Callable[[Schedule], bool]] = None,
    max_rounds: int = 10,
) -> Schedule:
    """Greedily minimize a failing schedule.

    Repeatedly tries to delete fault ops and submits while
    ``still_fails`` (default: :func:`check_schedule` raises
    :class:`InvariantViolation`) keeps holding, until a fixpoint or
    ``max_rounds``. Complements Hypothesis's own shrinking for
    failures found outside a property run (e.g. by the campaign CLI).
    """
    if still_fails is None:
        def still_fails(candidate: Schedule) -> bool:
            try:
                check_schedule(candidate)
            except InvariantViolation:
                return True
            return False

    current = schedule
    for _ in range(max_rounds):
        progressed = False
        index = len(current.ops) - 1
        while index >= 0:
            candidate = _without_op(current, index)
            if still_fails(candidate):
                current = candidate
                progressed = True
            index -= 1
        index = len(current.submits) - 1
        while index >= 0 and len(current.submits) > 1:
            candidate = _without_submit(current, index)
            if still_fails(candidate):
                current = candidate
                progressed = True
            index -= 1
        if not progressed:
            break
    return current


# ---------------------------------------------------------------------------
# Campaigns
# ---------------------------------------------------------------------------


@dataclass
class CampaignFailure:
    """One schedule that broke an invariant during a campaign."""

    index: int
    kind: str
    detail: str
    schedule: Schedule
    shrunk: Schedule
    path: Optional[str] = None


@dataclass
class CampaignReport:
    """Aggregate result of a seeded adversary campaign."""

    seed: int
    schedules: int
    passed: int
    failures: List[CampaignFailure]
    events: int

    @property
    def ok(self) -> bool:
        """True when every schedule upheld both invariants."""
        return not self.failures

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"adversary campaign: {self.passed}/{self.schedules} schedules "
            f"ok, {len(self.failures)} violations, "
            f"{self.events} harness events (seed {self.seed})"
        )


def campaign_rng(seed: int, index: int) -> random.Random:
    """The RNG for campaign schedule ``index`` under ``seed``.

    String-seeded so every schedule is reproducible in isolation —
    :func:`reproduction_command` names exactly this stream.
    """
    return random.Random(f"adversary:{seed}:{index}")


def reproduction_command(seed: int, index: int) -> str:
    """Shell command replaying one campaign schedule by itself."""
    return (
        f"PYTHONPATH=src python -m repro adversary "
        f"--seed {seed} --index {index}"
    )


def run_campaign(
    n_schedules: int,
    seed: int = 0,
    n_hosts: Optional[int] = None,
    save_failures: Optional[str] = None,
    shrink: bool = True,
    check: Callable[[Schedule], Any] = check_schedule,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> CampaignReport:
    """Run ``n_schedules`` generated schedules; collect every violation.

    Each schedule comes from its own :func:`campaign_rng` stream.
    Failures are shrunk (unless ``shrink=False``) and, when
    ``save_failures`` names a directory, written there as replayable
    JSON ready for promotion into the regression corpus. Campaign
    counters are mirrored into the process-wide observability hub when
    one is enabled (``adversary_schedules_total{outcome=}``,
    ``adversary_violations_total{kind=}``, ``adversary_events_total``).
    """
    # Lazy obs edge: the kernel stays import-pure unless a hub is used.
    hub = None
    try:
        from repro.obs.hub import get_hub

        hub = get_hub()
    except ImportError:  # pragma: no cover - obs is part of the package
        pass
    c_schedules = c_violations = c_events = None
    if hub is not None:
        c_schedules = hub.counter(
            "adversary_schedules_total",
            "adversary schedules checked", ("outcome",),
        )
        c_violations = hub.counter(
            "adversary_violations_total",
            "invariant violations found", ("kind",),
        )
        c_events = hub.counter(
            "adversary_events_total", "harness events across the campaign"
        )

    passed = 0
    events = 0
    failures: List[CampaignFailure] = []
    for index in range(n_schedules):
        schedule = generate_schedule(
            campaign_rng(seed, index), n_hosts=n_hosts
        )
        try:
            outcome = check(schedule)
            passed += 1
            if isinstance(outcome, ScheduleOutcome):
                events += outcome.events
                if c_events is not None:
                    c_events.inc(outcome.events)
            if c_schedules is not None:
                c_schedules.inc(outcome="ok")
        except InvariantViolation as exc:
            if c_schedules is not None:
                c_schedules.inc(outcome="violation")
            if c_violations is not None:
                c_violations.inc(kind=exc.kind)

            def _fails(candidate: Schedule) -> bool:
                try:
                    check(candidate)
                except InvariantViolation:
                    return True
                return False

            shrunk = (
                shrink_schedule(schedule, _fails) if shrink else schedule
            )
            failure = CampaignFailure(
                index=index,
                kind=exc.kind,
                detail=exc.detail,
                schedule=schedule,
                shrunk=shrunk,
            )
            if save_failures is not None:
                os.makedirs(save_failures, exist_ok=True)
                failure.path = shrunk.save(
                    os.path.join(
                        save_failures,
                        f"adversary_failure_seed{seed}_i{index}.json",
                    )
                )
            failures.append(failure)
        if on_progress is not None:
            on_progress(index + 1, n_schedules)
    return CampaignReport(
        seed=seed,
        schedules=n_schedules,
        passed=passed,
        failures=failures,
        events=events,
    )
