"""The update-agent protocol kernel — the paper's Algorithm 1, sans-IO.

:class:`AgentMachine` is the *logic* of one update mobile agent: tour
the replicas merging Locking Lists and Updated Lists into the carried
Locking Table, evaluate the distributed priority after every visit,
park when the tour is exhausted ([D2]), and — holding the lock — run
the claim round (UPDATE broadcast → majority of grants → version
assignment [D3] → COMMIT → dispose).

The machine operates over an :class:`AgentCoreState` record (picklable;
the live backend ships it between hosts and rebuilds a machine at every
hop) and communicates with the world exclusively through typed inputs
(:mod:`~repro.core.machines.events`) and effects
(:mod:`~repro.core.machines.effects`). It never touches a clock, a
queue, a socket, or a random stream: migration targets come back as a
``Migrate(candidates)`` effect (the *driver* owns the itinerary policy
and its RNG), and the claim back-off is a ``Backoff(mean)`` effect (the
driver samples the exponential).

Every input returns a finite effect batch that either ends in a
continuation effect (``Migrate`` / ``Park`` / ``Backoff`` / ``Visit`` /
``Dispose``) or leaves the machine awaiting replies
(:attr:`AgentMachine.awaiting` is ``"acks"`` or ``"fetch"``), so drivers
can run a flat interpretation loop with no recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.agents.identity import AgentId
from repro.core.machines.effects import (
    Backoff,
    Broadcast,
    CancelTimer,
    ClaimResolved,
    ClaimStarted,
    Dispose,
    Effect,
    LockWon,
    Migrate,
    Note,
    Park,
    PostBulletin,
    Send,
    SetTimer,
    Visit,
)
from repro.core.machines.events import (
    Arrived,
    MsgReceived,
    ReplicaDown,
    TimerFired,
)
from repro.core.machines.priority import OTHER, STALEMATE, WIN, Decision, decide
from repro.core.machines.table import LockingTable
from repro.core.machines.wire import Transform, UpdatePayload, WriteOp

__all__ = ["AgentCoreState", "AgentMachine"]

#: Lifecycle phases of the agent machine.
TOURING = "touring"
PARKED = "parked"
BACKOFF = "backoff"
CLAIMING = "claiming"
DONE = "done"


@dataclass
class AgentCoreState:
    """The protocol state one update agent carries.

    This is the paper's suitcase — Request List, Locking Table,
    Un-visited Servers List, identifiers — plus the transient claim
    bookkeeping. Everything is picklable; the live backend serialises
    this record for migration (claim transients are only populated while
    the agent is stationary, never mid-flight).

    ``requests`` entries are tuples whose first three elements are
    ``(request_id, key, value)``; backends may append extra elements
    (the live runtime carries ``created_at``), which the kernel ignores.
    """

    agent_id: AgentId
    home: str
    batch_id: int
    requests: List[Tuple]
    table: LockingTable = field(default_factory=LockingTable)
    visited: Set[str] = field(default_factory=set)
    tour_remaining: Set[str] = field(default_factory=set)
    unavailable: Set[str] = field(default_factory=set)
    visit_events: int = 0
    epoch: int = 0
    failed_claims: int = 0
    park_count: int = 0
    location: str = ""
    phase: str = TOURING
    # -- causal trace context (observational only) ---------------------
    # The trace id names this agent's whole journey; the root span id
    # points at the journey's root span in the recording tracer. Both
    # ride in the suitcase so spans recorded at *different hosts* (live
    # backend: a pickle hop per migration) still link into one journey.
    # The kernel never reads either beyond copying them into payloads.
    trace_id: Optional[str] = None
    trace_root: Optional[int] = None
    #: "acks" | "fetch" | None — what reply the claim round is blocked on.
    awaiting: Optional[str] = None
    # -- claim-round transients (reset by start_claim) -----------------
    acked_versions: Dict[str, Dict[str, int]] = field(default_factory=dict)
    acked_votes: int = 0
    nack_votes: int = 0
    nack_hosts: Set[str] = field(default_factory=set)
    quorum_hosts: Tuple[str, ...] = ()
    #: remaining (key, source_host) RMW base-value fetches, in key order
    fetch_plan: List[Tuple[str, str]] = field(default_factory=list)
    fetch_key: Optional[str] = None
    base_values: Dict[str, Any] = field(default_factory=dict)


class AgentMachine:
    """Pure Algorithm 1 over an :class:`AgentCoreState`."""

    def __init__(
        self,
        state: AgentCoreState,
        hosts,
        tunables,
        votes: Optional[Dict[str, int]] = None,
    ) -> None:
        self.state = state
        self.hosts = list(hosts)
        #: duck-typed: park_timeout / ack_timeout / max_claims /
        #: claim_backoff are read per-use.
        self.tunables = tunables
        self.votes = dict(votes) if votes else None
        # Normalise containers: the live backend historically carried
        # tour_remaining as a list; the kernel reasons over sets.
        state.visited = set(state.visited)
        state.tour_remaining = set(state.tour_remaining)
        state.unavailable = set(state.unavailable)

    # -- voting (mirrors MARP's weighted-voting generalisation) --------

    @property
    def n_replicas(self) -> int:
        return len(self.hosts)

    @property
    def total_votes(self) -> int:
        return sum(self.votes.values()) if self.votes else self.n_replicas

    @property
    def vote_majority(self) -> int:
        return self.total_votes // 2 + 1

    def vote_of(self, host: str) -> int:
        if self.votes is None:
            return 1
        return self.votes.get(host, 0)

    @property
    def awaiting(self) -> Optional[str]:
        return self.state.awaiting

    # -- input dispatch -------------------------------------------------

    def on(self, event) -> List[Effect]:
        if isinstance(event, Arrived):
            return self.on_arrived(event)
        if isinstance(event, ReplicaDown):
            return self.on_replica_down(event)
        if isinstance(event, MsgReceived):
            return self.on_message(event.kind, event.payload, event.now)
        if isinstance(event, TimerFired):
            return self.on_timer(event)
        raise TypeError(f"agent machine cannot handle {event!r}")

    # -- touring (steps 1-2 of Algorithm 1) ----------------------------

    def on_arrived(self, event: Arrived) -> List[Effect]:
        """One completed visit: merge, share, decide, act."""
        s = self.state
        woke = s.phase == PARKED
        s.phase = TOURING
        s.location = event.host
        s.table.ingest(event.view)
        s.table.merge_bulletin(event.bulletin)
        effects: List[Effect] = [
            PostBulletin(s.table.shareable_views(event.host))
        ]
        s.visited.add(event.host)
        s.visit_events += 1
        s.tour_remaining.discard(event.host)
        effects.append(
            Note("visit", f"rank {event.rank} of {event.ll_len}")
        )

        decision = self._decide()
        if self._holds_lock(decision):
            return effects + self._win_and_claim(decision, event.now)
        if woke and decision.outcome != OTHER:
            # Still unclear after the park refresh: start a new tour over
            # all other servers; previously unavailable replicas get
            # another chance in the new round. (On OTHER a known winner
            # is in its update round; its COMMIT will wake us here, so
            # the agent re-parks without touring.)
            s.unavailable.clear()
            s.tour_remaining = set(self.hosts) - {s.location}
        return effects + self._advance()

    def on_replica_down(self, event: ReplicaDown) -> List[Effect]:
        """Paper §2: give up on this replica until the next round.

        Unavailability feeds the completeness requirement of the
        tie-break rules, so the machine re-decides immediately — knowing
        a replica is down can flip an undecided state into a designated
        stalemate win.
        """
        s = self.state
        s.unavailable.add(event.host)
        effects: List[Effect] = [Note("unavailable", host=event.host)]
        decision = self._decide()
        if self._holds_lock(decision):
            return effects + self._win_and_claim(decision, event.now)
        return effects + self._advance()

    def _decide(self) -> Decision:
        s = self.state
        return decide(
            s.table,
            self.n_replicas,
            s.agent_id,
            votes=self.votes,
            unavailable=frozenset(s.unavailable),
        )

    def _holds_lock(self, decision: Decision) -> bool:
        """Paper rule: majority of top-ranks, or the identifier tie-break."""
        if decision.outcome == WIN:
            return True
        return (
            decision.outcome == STALEMATE
            and decision.winner == self.state.agent_id
        )

    def _advance(self) -> List[Effect]:
        """One movement step: tour onward, or park and refresh ([D2])."""
        s = self.state
        candidates = s.tour_remaining - s.unavailable
        if candidates:
            return [Migrate(tuple(sorted(candidates)))]
        s.park_count += 1
        s.phase = PARKED
        return [Note("park"), Park(self.tunables.park_timeout)]

    # -- the claim round (step 3: UPDATE / ACK / COMMIT) ---------------

    def _win_and_claim(
        self, decision: Decision, now: float
    ) -> List[Effect]:
        s = self.state
        effects: List[Effect] = [
            LockWon(
                reason=decision.reason,
                visits=len(s.visited),
                visit_events=s.visit_events,
                parks=s.park_count,
            )
        ]
        return effects + self.start_claim(
            now, quorum_hosts=decision.quorum_hosts
        )

    def start_claim(
        self, now: float, quorum_hosts: Tuple[str, ...] = ()
    ) -> List[Effect]:
        """Open a claim round: broadcast UPDATE, await a grant majority.

        Public so the live backend can drive a claim directly; the epoch
        bump makes acknowledgements of an abandoned earlier round
        uncountable toward this one.
        """
        s = self.state
        s.epoch += 1
        s.phase = CLAIMING
        s.awaiting = "acks"
        s.acked_versions = {}
        s.acked_votes = 0
        s.nack_votes = 0
        s.nack_hosts = set()
        s.quorum_hosts = tuple(quorum_hosts)
        s.fetch_plan = []
        s.fetch_key = None
        s.base_values = {}
        return [
            ClaimStarted(s.epoch),
            Note("claim", f"epoch {s.epoch}"),
            Broadcast("UPDATE", self._payload()),
            SetTimer("ack", self.tunables.ack_timeout),
        ]

    def _payload(self, writes: Tuple[WriteOp, ...] = ()) -> UpdatePayload:
        s = self.state
        return UpdatePayload(
            batch_id=s.batch_id,
            agent_id=s.agent_id,
            origin=s.home,
            writes=tuple(writes),
            reply_to=s.location,
            epoch=s.epoch,
            trace_id=s.trace_id,
        )

    def on_message(
        self, kind: str, payload: Any, now: float
    ) -> List[Effect]:
        s = self.state
        if kind in ("ACK", "NACK"):
            if (
                s.awaiting != "acks"
                or payload["batch_id"] != s.batch_id
                or payload["epoch"] != s.epoch
            ):
                return []
            sender = payload["from"]
            if kind == "ACK":
                if sender in s.acked_versions:
                    return []
                s.acked_versions[sender] = payload["versions"]
                s.acked_votes += self.vote_of(sender)
                if s.acked_votes >= self.vote_majority:
                    return self._majority_reached(now)
                return []
            if sender in s.nack_hosts:
                return []
            s.nack_hosts.add(sender)
            s.nack_votes += self.vote_of(sender)
            # Early exit when a majority is provably out of reach.
            if self.total_votes - s.nack_votes < self.vote_majority:
                return self._fail_claim("conflict", fired=None)
            return []
        if kind == "READR":
            if s.awaiting != "fetch" or s.fetch_key is None:
                return []
            if payload["request_id"] != (s.batch_id, s.epoch, s.fetch_key):
                return []
            s.base_values[s.fetch_key] = payload["value"]
            s.fetch_key = None
            effects: List[Effect] = [CancelTimer("fetch")]
            if s.fetch_plan:
                return effects + self._next_fetch()
            s.awaiting = None
            return effects + self._finalize()
        return []

    def on_timer(self, event: TimerFired) -> List[Effect]:
        s = self.state
        if event.kind == "ack" and s.awaiting == "acks":
            outcome = "conflict" if s.nack_votes > 0 else "timeout"
            return self._fail_claim(outcome, fired="ack")
        if event.kind == "fetch" and s.awaiting == "fetch":
            return self._fail_claim("timeout", fired="fetch")
        if event.kind == "backoff" and s.phase == BACKOFF:
            s.phase = TOURING
            return [Visit()]
        return []

    def _majority_reached(self, now: float) -> List[Effect]:
        """Grant majority assembled: fetch RMW bases, then COMMIT."""
        s = self.state
        effects: List[Effect] = [CancelTimer("ack")]
        # The base-value source for each RMW key is the acknowledger
        # reporting the highest version — it holds "the most recent
        # copy" the quorum knows (paper §3.1).
        rmw_keys = sorted(
            {req[1] for req in s.requests if isinstance(req[2], Transform)}
        )
        plan: List[Tuple[str, str]] = []
        for key in rmw_keys:
            best_host, best_version = None, 0
            for host, versions in s.acked_versions.items():
                if versions.get(key, 0) >= best_version:
                    best_host, best_version = host, versions.get(key, 0)
            if best_version == 0:
                s.base_values[key] = None  # never written
                continue
            plan.append((key, best_host))
        s.fetch_plan = plan
        if plan:
            s.awaiting = "fetch"
            return effects + self._next_fetch()
        s.awaiting = None
        return effects + self._finalize()

    def _next_fetch(self) -> List[Effect]:
        s = self.state
        key, host = s.fetch_plan.pop(0)
        s.fetch_key = key
        return [
            Send(
                host,
                "READQ",
                {"request_id": (s.batch_id, s.epoch, key), "key": key},
            ),
            SetTimer("fetch", self.tunables.ack_timeout),
        ]

    def _finalize(self) -> List[Effect]:
        """[D3] version assignment + COMMIT broadcast + dispose."""
        s = self.state
        writes = self._assign_versions()
        s.phase = DONE
        return [
            Broadcast("COMMIT", self._payload(writes)),
            Note(
                "commit",
                ", ".join(f"{w.key}=v{w.version}" for w in writes),
            ),
            ClaimResolved("committed", s.epoch),
            Dispose("committed", writes),
        ]

    def _assign_versions(self) -> Tuple[WriteOp, ...]:
        """[D3]: next versions above everything known committed.

        The ceiling folds (a) the Locking Table's monotone committed-max
        and (b) the version vectors reported in this claim's ACKs. Any
        previous winner's grant at an ACKing server was released by the
        processing of its COMMIT, so the ACK quorum always reports every
        previously committed version — the ceiling is collision-free.

        RMW requests chain: within a batch, each Transform sees the
        value produced by the previous write to the same key.
        """
        s = self.state
        next_version: Dict[str, int] = {}
        current_value: Dict[str, Any] = dict(s.base_values)
        writes: List[WriteOp] = []
        for req in s.requests:
            request_id, key, value = req[0], req[1], req[2]
            if key not in next_version:
                ceiling = s.table.version_ceiling(key, s.quorum_hosts)
                for versions in s.acked_versions.values():
                    ceiling = max(ceiling, versions.get(key, 0))
                next_version[key] = ceiling + 1
            if isinstance(value, Transform):
                value = value(current_value.get(key))
            current_value[key] = value
            writes.append(
                WriteOp(
                    request_id=request_id,
                    key=key,
                    value=value,
                    version=next_version[key],
                )
            )
            next_version[key] += 1
        return tuple(writes)

    def _fail_claim(self, outcome: str, fired: Optional[str]) -> List[Effect]:
        """Release grants, then abort, or back off and retry.

        ``fired`` names the timer that caused the failure (its
        ``CancelTimer`` is skipped — it already fired).
        """
        s = self.state
        s.awaiting = None
        effects: List[Effect] = []
        if fired != "ack" and s.fetch_key is None:
            effects.append(CancelTimer("ack"))
        elif fired != "fetch" and s.fetch_key is not None:
            effects.append(CancelTimer("fetch"))
        effects.append(Broadcast("RELEASE", self._payload()))
        effects.append(ClaimResolved(outcome, s.epoch))
        if outcome == "conflict":
            # Another claimer holds grants: genuine contention counts
            # toward the abort budget.
            s.failed_claims += 1
            if s.failed_claims >= self.tunables.max_claims:
                s.phase = DONE
                effects.append(Broadcast("ABORT", self._payload()))
                effects.append(
                    Note("abort", f"{s.failed_claims} failed claims")
                )
                effects.append(Dispose("failed"))
                return effects
            backoff_mean = self.tunables.claim_backoff
        else:
            # Timeout with no NACKs: too few replicas are reachable to
            # assemble a majority (e.g. mid-outage). Quorum semantics
            # require stalling, not aborting — wait longer and retry
            # when the cluster may have healed.
            backoff_mean = max(
                4 * self.tunables.claim_backoff, self.tunables.park_timeout
            )
        s.phase = BACKOFF
        effects.append(Backoff(backoff_mean))
        return effects
