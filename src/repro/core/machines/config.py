"""One kernel-level home for every protocol tunable.

Both execution backends used to restate the same timer/tunable fields
(``MARPConfig`` + ``ReplicaConfig`` for the DES, ``LiveConfig`` for the
live runtime) with independently maintained defaults — a drift hazard.
The machines consume only a :class:`ProtocolTunables`, and the two
backend config dataclasses now *source their defaults from here*:

* :data:`DES_TUNABLES` — the paper-evaluation scale (simulated ms).
* :data:`LIVE_TUNABLES` — wall-clock scale for the threaded runtime,
  where a whole experiment runs in a couple of real seconds.

The scale difference between the backends is intentional and now
explicit in one file instead of scattered across three dataclasses.

``ProtocolTunables`` is duck-typed on purpose: the machines only read
the attributes, so any object exposing them (``MARPConfig``,
``ReplicaConfig``, ``LiveConfig``, or a ``ProtocolTunables`` itself)
can drive a machine — including configs mutated after construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError

__all__ = ["ProtocolTunables", "DES_TUNABLES", "LIVE_TUNABLES"]

#: Attribute names the agent machine reads off its tunables object.
AGENT_TUNABLE_FIELDS = ("park_timeout", "ack_timeout", "max_claims", "claim_backoff")
#: Attribute names the replica machine reads off its tunables object.
REPLICA_TUNABLE_FIELDS = (
    "grant_ttl", "enable_bulletin", "ul_retention", "delta_views",
)


@dataclass(frozen=True)
class ProtocolTunables:
    """The protocol-level knobs shared by Algorithm 1 and Algorithm 2.

    Attributes
    ----------
    park_timeout:
        Max ms a losing agent waits for a lock-release notification
        before proactively refreshing its view ([D2]).
    ack_timeout:
        Ms a claiming agent waits for the majority of UPDATE
        acknowledgements (and for each RMW base-value fetch) before
        releasing its grants and retrying.
    max_claims:
        Claim attempts before the agent aborts the request.
    claim_backoff:
        Mean of the randomized (exponential) delay before re-claiming
        after a failed claim, in ms.
    grant_ttl:
        Ms after which an unreleased server-side update grant expires,
        so a claimer that crashed mid-claim cannot wedge a server
        forever. Must comfortably exceed any realistic claim round.
    enable_bulletin:
        Paper §3.1 information sharing via server bulletin boards.
        Off for the A2 ablation.
    ul_retention:
        Retention window (ms) for the server-side Updated List. ``None``
        (the paper's semantics, and the default) keeps completed-agent
        ids forever; scale runs set a finite window so per-view UL cost
        stays O(window) instead of O(total agents). See
        :class:`repro.core.machines.structures.UpdatedList` for the
        safety argument. Must comfortably exceed ``grant_ttl`` plus the
        worst RELEASE propagation delay when set.
    delta_views:
        Opt into the delta-view data plane: replicas keep a mutation
        journal (:class:`repro.core.machines.delta.DeltaJournal`) and
        hand returning visitors a
        :class:`~repro.core.machines.wire.SharedViewDelta` — only what
        changed since the visitor's acknowledged sequence — instead of a
        full snapshot, and agent Locking Tables report the compact
        interned wire encoding. Off by default: view wire sizes feed the
        network latency model, so flipping this changes event timing
        (never commit outcomes — see ``tests/integration/
        test_delta_conformance.py``).
    """

    park_timeout: float = 100.0
    ack_timeout: float = 1000.0
    max_claims: int = 10
    claim_backoff: float = 25.0
    grant_ttl: float = 10_000.0
    enable_bulletin: bool = True
    ul_retention: "float | None" = None
    delta_views: bool = False

    def __post_init__(self) -> None:
        if self.park_timeout <= 0:
            raise ProtocolError("park_timeout must be > 0")
        if self.ack_timeout <= 0:
            raise ProtocolError("ack_timeout must be > 0")
        if self.max_claims < 1:
            raise ProtocolError("max_claims must be >= 1")
        if self.claim_backoff < 0:
            raise ProtocolError("claim_backoff must be >= 0")
        if self.grant_ttl <= 0:
            raise ProtocolError("grant_ttl must be > 0")
        if self.ul_retention is not None and self.ul_retention <= 0:
            raise ProtocolError("ul_retention must be > 0 (or None)")


#: Defaults for the discrete-event backend (simulated milliseconds;
#: matches the paper's evaluated configuration).
DES_TUNABLES = ProtocolTunables()

#: Defaults for the live threaded/process backend (real milliseconds;
#: compressed so a test cluster converges in wall-clock seconds).
LIVE_TUNABLES = ProtocolTunables(
    park_timeout=60.0,
    ack_timeout=500.0,
    max_claims=10,
    claim_backoff=15.0,
    grant_ttl=5_000.0,
    enable_bulletin=True,
)
