"""The replica-side mutation journal behind the delta-view data plane.

Every migrating agent carries one :class:`~repro.core.machines.wire
.SharedView` per known server, and every visit re-merges all of them —
so both the suitcase wire size and the per-tour merge cost grow as
O(replicas × agents × keys) even when almost nothing changed between
visits. The delta plane replaces the repeat traffic with "ship only
what the receiver hasn't seen": each :class:`ReplicaMachine` keeps a
monotone sequence number plus a bounded changelog of its lock-state
mutations, and a returning visitor that acknowledges sequence ``s``
receives a :class:`~repro.core.machines.wire.SharedViewDelta` replaying
only the events after ``s``.

Journal events (``kind``, ``payload``):

* ``"enq"``, *agent_id* — appended to the Locking List (always at the
  tail);
* ``"deq"``, *agent_id* — removed from the Locking List;
* ``"fin"``, *agent_id* — added to the Updated List;
* ``"ver"``, *(key, version)* — a version-vector cell advanced.

The changelog is bounded (:data:`DEFAULT_CAPACITY` events): when the
receiver's base falls off the retained window — first contact, a long
absence, or a bulk change like a recovery snapshot install (which calls
:meth:`DeltaJournal.reset`) — delta production declines and the server
falls back to a full snapshot. Correctness never depends on the window;
it only sizes how often the fallback pays full price.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.core.machines.wire import SharedViewDelta

__all__ = ["DeltaJournal", "DEFAULT_CAPACITY"]

#: Retained changelog events. Sized so that a tour-length absence at
#: paper-scale activity stays inside the window; memory cost is one
#: small tuple per retained event per replica.
DEFAULT_CAPACITY = 1024


class DeltaJournal:
    """Monotone sequence + bounded changelog for one replica."""

    def __init__(self, host: str, capacity: int = DEFAULT_CAPACITY) -> None:
        self.host = host
        self.capacity = capacity
        #: current sequence number; every logged mutation bumps it.
        self.seq = 0
        self._log: Deque[Tuple[int, str, Any]] = deque()
        #: bases below this cannot be served (evicted or reset).
        self._reset_floor = 0
        self.resets = 0

    def bump(self, kind: str, payload: Any) -> int:
        """Log one mutation; returns the new sequence number."""
        self.seq += 1
        log = self._log
        log.append((self.seq, kind, payload))
        if len(log) > self.capacity:
            log.popleft()
        return self.seq

    def reset(self) -> None:
        """Invalidate the whole window after a bulk state change.

        Recovery installs a snapshot and rewrites LL/UL/store state in
        one stroke; rather than journal a bulk diff, advance the
        sequence and force every receiver through the full-snapshot
        fallback once.
        """
        self.seq += 1
        self._log.clear()
        self._reset_floor = self.seq
        self.resets += 1

    @property
    def floor(self) -> int:
        """Lowest base sequence a delta can still be cut against."""
        if self._log:
            return max(self._log[0][0] - 1, self._reset_floor)
        return max(self.seq, self._reset_floor)

    def can_delta(self, base_seq: int) -> bool:
        return self.floor <= base_seq <= self.seq

    def delta_since(
        self, base_seq: int, as_of: float
    ) -> Optional[SharedViewDelta]:
        """Cut a delta against ``base_seq``, or None (full fallback).

        Replays the retained events after ``base_seq`` into the net
        locking-list edit (an id enqueued and dequeued inside the window
        cancels out; a requeue becomes remove + re-append), the newly
        finished ids, and the changed version cells at their newest
        values.
        """
        if not self.can_delta(base_seq):
            return None
        removed: List[Any] = []
        appended: List[Any] = []
        finished: List[Any] = []
        versions = None
        for seq, kind, payload in self._log:
            if seq <= base_seq:
                continue
            if kind == "enq":
                appended.append(payload)
            elif kind == "deq":
                if payload in appended:
                    appended.remove(payload)
                else:
                    removed.append(payload)
            elif kind == "fin":
                finished.append(payload)
            else:  # "ver"
                key, version = payload
                if versions is None:
                    versions = {}
                if version > versions.get(key, 0):
                    versions[key] = version
        return SharedViewDelta(
            host=self.host,
            as_of=as_of,
            base_seq=base_seq,
            seq=self.seq,
            removed=tuple(removed),
            appended=tuple(appended),
            finished=tuple(finished),
            versions=versions,
        )

    def __repr__(self) -> str:
        return (
            f"<DeltaJournal {self.host!r} seq={self.seq} "
            f"window={len(self._log)}/{self.capacity}>"
        )
