"""Typed effects emitted by the protocol machines.

An effect is an *instruction to the driver*: the machine has updated its
protocol state and now needs the outside world to move something. The
kernel never performs I/O, sleeps, or samples randomness — it asks for
those through effects, and the driver (DES generator, live event loop,
or the replay harness) interprets them however its substrate requires.

Effect vocabulary (agent machine)
---------------------------------
``Migrate``       pick one of ``candidates`` (itinerary policy is the
                  driver's) and move the agent there, then feed back an
                  ``Arrived`` or ``ReplicaDown`` input.
``Visit``         redo the local exchange at the current host (after a
                  back-off), then feed back ``Arrived``.
``Park``          wait at the current host for a lock release or
                  ``timeout`` ms ([D2]), then visit + feed ``Arrived``.
``Backoff``       sample an exponential delay with the given ``mean``
                  (randomness stays driver-side so the DES stays
                  bit-reproducible), then feed ``TimerFired("backoff")``.
``SetTimer``      arm the named timer; feed ``TimerFired(kind)`` if it
                  elapses before being replaced or cancelled.
``CancelTimer``   disarm the named timer.
``Send``/``Broadcast``  transmit a protocol message.
``PostBulletin``  deposit Locking-Table views on the local bulletin.
``LockWon``/``ClaimStarted``/``ClaimResolved``/``Note``
                  protocol milestones — drivers map these to traces,
                  metrics, spans and record bookkeeping; ignoring them
                  is always safe.
``Dispose``       the agent finished (``status`` = committed/failed);
                  ``writes`` carries the final versioned writes of a
                  successful batch.

Effect vocabulary (replica machine)
-----------------------------------
``Send``          reply/forward a protocol message.
``Granted``/``Nacked``    the grant decision taken for an UPDATE.
``CommitApplied`` one write of a COMMIT was applied to the store.
``ReleaseNotify`` wake agents parked at this replica ([D2]).
``QueueChanged``  the Locking List length changed (gauge refresh).
``Recovered``     a crash-recovery snapshot was installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.agents.identity import AgentId
from repro.core.machines.wire import SharedView, WriteOp

__all__ = [
    "Effect",
    "Migrate", "Visit", "Park", "Backoff", "SetTimer", "CancelTimer",
    "Send", "Broadcast", "PostBulletin", "Note",
    "LockWon", "ClaimStarted", "ClaimResolved", "Dispose",
    "Granted", "Nacked", "CommitApplied", "ReleaseNotify",
    "QueueChanged", "Recovered",
]


class Effect:
    """Marker base class for everything a machine can ask a driver for."""

    __slots__ = ()


@dataclass(frozen=True)
class Migrate(Effect):
    """Move the agent to one of ``candidates`` (driver picks which)."""

    candidates: Tuple[str, ...]


@dataclass(frozen=True)
class Visit(Effect):
    """Re-run the local exchange at the agent's current host."""


@dataclass(frozen=True)
class Park(Effect):
    """Wait for a lock release here, or at most ``timeout`` ms ([D2])."""

    timeout: float


@dataclass(frozen=True)
class Backoff(Effect):
    """Sleep an exponential delay (mean ``mean`` ms; 0 = no sleep)."""

    mean: float


@dataclass(frozen=True)
class SetTimer(Effect):
    """Arm the named timer for ``delay`` ms from now."""

    kind: str
    delay: float


@dataclass(frozen=True)
class CancelTimer(Effect):
    """Disarm the named timer."""

    kind: str


@dataclass(frozen=True)
class Send(Effect):
    """Transmit one protocol message to ``dst``."""

    dst: str
    kind: str
    payload: Any
    category: str = ""


@dataclass(frozen=True)
class Broadcast(Effect):
    """Transmit one protocol message to every replica (self included)."""

    kind: str
    payload: Any


@dataclass(frozen=True)
class PostBulletin(Effect):
    """Deposit the agent's shareable views on the local bulletin board."""

    views: Dict[str, SharedView]


@dataclass(frozen=True)
class Note(Effect):
    """A trace-worthy protocol event (kind/detail match the DES trace)."""

    kind: str
    detail: str = ""
    host: Optional[str] = None


@dataclass(frozen=True)
class LockWon(Effect):
    """The agent holds the distributed lock; claim round follows."""

    reason: str
    visits: int
    visit_events: int
    parks: int


@dataclass(frozen=True)
class ClaimStarted(Effect):
    """A claim round (UPDATE broadcast) is beginning."""

    epoch: int


@dataclass(frozen=True)
class ClaimResolved(Effect):
    """A claim round ended: committed, conflict, or timeout."""

    outcome: str
    epoch: int


@dataclass(frozen=True)
class Dispose(Effect):
    """The agent's lifecycle ended with ``status``."""

    status: str
    writes: Tuple[WriteOp, ...] = ()


@dataclass(frozen=True)
class Granted(Effect):
    """Replica issued its exclusive update grant (an ACK follows)."""

    agent_id: AgentId
    batch_id: int
    epoch: int


@dataclass(frozen=True)
class Nacked(Effect):
    """Replica refused an UPDATE; the grant is held by ``holder``."""

    agent_id: AgentId
    batch_id: int
    holder: Optional[AgentId] = None


@dataclass(frozen=True)
class CommitApplied(Effect):
    """One committed write was applied to the replica's store."""

    agent_id: AgentId
    request_id: int
    key: str
    version: int


@dataclass(frozen=True)
class ReleaseNotify(Effect):
    """A lock release happened here: wake parked agents ([D2])."""


@dataclass(frozen=True)
class QueueChanged(Effect):
    """The Locking List length changed (refresh gauges/monitors)."""


@dataclass(frozen=True)
class Recovered(Effect):
    """A recovery snapshot from ``src`` was installed."""

    src: str
