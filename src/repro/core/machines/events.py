"""Typed inputs consumed by the protocol machines.

Every way the world can poke the protocol is one of these values. Time
enters the kernel **only** through the ``now`` field — the machines
never read a clock — and the inputs carry data, never live objects
(no sockets, queues, events or Environments).

Input vocabulary
----------------
``Arrived``
    The agent completed a local visit at a replica (arrival — or wake-up
    at the current host — plus the synchronous information exchange):
    the replica's fresh lock view, its bulletin board, and the agent's
    rank in the Locking List.
``ReplicaDown``
    A migration attempt to ``host`` failed permanently for this round
    (paper §2's unavailability declaration).
``MsgReceived``
    A protocol message was delivered. For the agent machine: ACK, NACK,
    READR. For the replica machine: UPDATE, COMMIT, ABORT, RELEASE,
    SYNC_REQUEST, SYNC_REPLY, READQ.
``TimerFired``
    A timer previously requested via a ``SetTimer``/``Backoff`` effect
    elapsed. ``kind`` is the timer's name ("ack", "fetch", "backoff").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.machines.wire import SharedView

__all__ = ["Arrived", "ReplicaDown", "MsgReceived", "TimerFired"]


@dataclass(frozen=True)
class Arrived:
    """Agent input: a completed visit (arrival + local exchange)."""

    host: str
    now: float
    view: SharedView
    bulletin: Dict[str, SharedView] = field(default_factory=dict)
    rank: Optional[int] = None
    ll_len: int = 0


@dataclass(frozen=True)
class ReplicaDown:
    """Agent input: ``host`` declared unavailable for this round."""

    host: str
    now: float


@dataclass(frozen=True)
class MsgReceived:
    """A delivered protocol message (agent or replica machine)."""

    kind: str
    payload: Any
    now: float
    src: str = ""
    sent_at: float = 0.0


@dataclass(frozen=True)
class TimerFired:
    """A previously requested timer elapsed."""

    kind: str
    now: float
