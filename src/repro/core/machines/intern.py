"""Dense-integer interning for kernel hot-path state.

The flat-state kernel (see ``docs/architecture.md``, "Kernel internals")
stores protocol state — locking-list queues, Updated-List membership,
priority tallies — as preallocated flat arrays indexed by *interned*
ids: each distinct :class:`~repro.agents.identity.AgentId` (or host
name) a structure encounters is assigned the next dense integer slot,
first-seen order. Interning turns the dataclass hashing that dominated
``decide`` profiles (one ``AgentId.__hash__`` per membership probe)
into integer indexing into a ``bytearray``.

Two invariants keep interning invisible to the protocol:

* **Ids are aliases, never order.** Protocol tie-breaks sort by the
  *AgentId's own* total order, never by slot number — slot assignment
  depends on visit interleavings and must not leak into any decision.
  :meth:`Interner.sort_key` exposes the identifier's ordering key for
  exactly this reason.
* **Interning is process-local.** Nothing interned ever crosses the
  wire: ``SharedView`` / ``UpdatePayload`` / replay & adversary JSON
  carry full identifiers, and each structure re-interns on ingestion,
  so the wire and persistence formats are byte-identical to the
  pre-flattening kernel (round-trip pinned by
  ``tests/machines/test_flat_structures.py``).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

__all__ = ["Interner"]


class Interner:
    """First-seen-order bijection between hashable values and dense ints.

    Also maintains a parallel ``sort_key`` slab so callers can order
    interned slots by the underlying value's ``_key()`` (AgentId's total
    order) without re-touching the objects, and grows any number of
    registered flat side-arrays (e.g. membership flags) in lock step.
    """

    __slots__ = ("_values", "_index", "_sort_keys")

    def __init__(self) -> None:
        self._values: List[Any] = []
        self._index: Dict[Any, int] = {}
        self._sort_keys: List[Any] = []

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._index

    def intern(self, value: Hashable) -> int:
        """Slot of ``value``, allocating the next dense slot if new."""
        slot = self._index.get(value)
        if slot is None:
            slot = len(self._values)
            self._index[value] = slot
            self._values.append(value)
            key = getattr(value, "_key", None)
            self._sort_keys.append(key() if callable(key) else value)
        return slot

    def index_of(self, value: Hashable) -> Optional[int]:
        """Slot of ``value`` if already interned, else ``None``."""
        return self._index.get(value)

    def value(self, slot: int) -> Any:
        """The original value stored in ``slot``."""
        return self._values[slot]

    def sort_key(self, slot: int) -> Any:
        """The value's own ordering key (``_key()`` when it has one)."""
        return self._sort_keys[slot]

    def values(self):
        """All interned values, slot order (a direct, do-not-mutate view)."""
        return self._values

    def __repr__(self) -> str:
        return f"<Interner n={len(self._values)}>"
