"""The distributed priority calculation (paper §3.3, Theorems 1–2).

Every agent evaluates :func:`decide` over its own Locking Table. The
rules, in order:

1. **Majority** — an agent that is effective-top at more than N/2 known
   servers holds the lock. Acting on this is *unconditionally safe* even
   with stale views: an agent's set of topped servers can only grow until
   it commits (appends go to the tail; removals only delete finished
   agents), so two simultaneous self-observed majorities would have to
   intersect at a server topped by both — impossible.
2. **Paper tie-break** — with M agents tied at S top-ranks each and
   ``S + (N − M·S) < ⌈(N+1)/2⌉`` no tied agent can ever reach a
   majority; the tie is resolved by agent identifier (smallest wins).
3. **Complete-information tie-break ([D1])** — when views of *all* N
   servers are known and every locking list is non-empty but no majority
   exists, the frozen tie is again resolved by identifier.

Crucially (deviation [D1], documented in DESIGN.md): a tie-break winner
does **not** act directly — with stale views two agents could crown
different winners. Instead the decision is returned as a ``STALEMATE``
and the protocol has tie-break *losers* re-queue their lock entries
(back-off), which lets the designated winner rise to a genuine, safely
actionable majority. Rules 2–3 therefore drive liveness, never safety.

Two implementations live here, deliberately:

* :func:`decide` — the hot path. It evaluates the same rule cascade
  over the Locking Table's *packed* state (interned integer slots and a
  flag slab, see :mod:`repro.core.machines.table`), and memoises the
  self-independent core of the decision against the table's mutation
  counter: re-evaluating an unchanged table is one cache probe. Tie
  groups are still ordered by the **AgentId's own total order** (via
  the interner's sort-key slab) — interned slot numbers never order
  anything.
* :func:`decide_reference` — the original dataclass-and-dict
  evaluation, kept as the executable specification. The weighted-voting
  generalisation always routes here (it is off the per-event path), and
  ``tests/machines/test_flat_structures.py`` property-checks
  ``decide == decide_reference`` over randomized tables.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.agents.identity import AgentId
from repro.core.machines.table import LockingTable

__all__ = [
    "Decision", "decide", "decide_reference", "rank_queue",
    "WIN", "OTHER", "STALEMATE", "UNDECIDED",
]

#: Outcomes of the priority calculation.
WIN = "win"
OTHER = "other"
STALEMATE = "stalemate"
UNDECIDED = "undecided"


@dataclass(frozen=True)
class Decision:
    """Result of one priority evaluation.

    Attributes
    ----------
    outcome:
        One of :data:`WIN` (self holds the lock), :data:`OTHER` (another
        agent holds it), :data:`STALEMATE` (frozen tie; ``winner`` names
        the tie-break designee), :data:`UNDECIDED`.
    winner:
        The agent the rule points at (None when undecided).
    reason:
        ``"majority"``, ``"paper-tie-break"``, ``"complete-info"`` or
        ``""``.
    quorum_hosts:
        For majority outcomes, the servers certifying the majority.
    """

    outcome: str
    winner: Optional[AgentId] = None
    reason: str = ""
    top_counts: Dict[AgentId, int] = field(default_factory=dict)
    quorum_hosts: Tuple[str, ...] = ()

    @property
    def decided(self) -> bool:
        return self.outcome != UNDECIDED


def decide(
    table: LockingTable,
    n_replicas: int,
    self_id: AgentId,
    votes: Optional[Mapping[str, int]] = None,
    extra_done: frozenset = frozenset(),
    unavailable: frozenset = frozenset(),
) -> Decision:
    """Evaluate the MARP priority rules for ``self_id``.

    Deterministic: agents with identical tables reach identical decisions
    (Theorem 1/2's agreement property — covered by property tests).

    ``unavailable`` lists replicas the agent has declared unavailable
    after repeated failed migrations (paper §2). They count toward the
    completeness requirement of the tie-break rules — with a replica
    down for good, no agent could ever assemble all N views and a
    top-rank split among the survivors would deadlock. Acting on a
    tie-break is grant-certified either way, so a wrong unavailability
    suspicion can cost a failed claim but never consistency.

    ``votes`` generalises the scheme to Gifford-style weighted voting
    (the paper's §5 "generic method" claim): topping a server earns that
    server's vote weight, and winning requires a strict majority of the
    total votes. The paper's early tie-break guard only applies to the
    unweighted case; weighted deployments rely on the complete-
    information rule (liveness is unaffected — the claim round's grants
    provide safety either way). Weighted evaluation runs on the
    reference implementation; it is not on the per-event hot path.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1: {n_replicas}")
    if votes is not None or type(table) is not LockingTable:
        return decide_reference(
            table, n_replicas, self_id, votes=votes,
            extra_done=extra_done, unavailable=unavailable,
        )
    majority = n_replicas // 2 + 1
    if not extra_done:
        key = (table._mutations, n_replicas, unavailable)
        cache = table._decide_cache
        if cache is not None and cache[0] == key:
            core = cache[1]
        else:
            core = _decide_core(table, n_replicas, majority,
                                frozenset(), unavailable)
            table._decide_cache = (key, core)
    else:
        core = _decide_core(table, n_replicas, majority,
                            extra_done, unavailable)
    reason, winner, counts, quorum = core
    if reason == "majority":
        return Decision(
            outcome=WIN if winner == self_id else OTHER,
            winner=winner,
            reason="majority",
            top_counts=dict(counts),
            quorum_hosts=quorum,
        )
    if winner is not None:
        return Decision(
            outcome=STALEMATE,
            winner=winner,
            reason=reason,
            top_counts=dict(counts),
        )
    return Decision(outcome=UNDECIDED, top_counts=dict(counts))


def _decide_core(
    table: LockingTable,
    n_replicas: int,
    majority: int,
    extra_done: frozenset,
    unavailable: frozenset,
):
    """The self-independent part of the rule cascade, over packed slots.

    Returns ``(reason, winner, top_counts, quorum_hosts)`` with
    ``reason`` in ``{"majority", "paper-tie-break", "complete-info",
    ""}`` and ``winner is None`` exactly when undecided. Mirrors
    :func:`decide_reference` rule for rule.
    """
    tops_slots, counts_slots = table._tops_slots(extra_done)
    value = table._ids.value
    counts = {value(slot): n for slot, n in counts_slots.items()}

    # Rule 1: majority of top-ranks (at most one candidate can qualify).
    for slot, n in counts_slots.items():
        if n >= majority:
            quorum = tuple(sorted(
                host for host, top in tops_slots.items() if top == slot
            ))
            return ("majority", value(slot), counts, quorum)

    known_or_unavailable = (
        len(tops_slots) + len(unavailable - set(tops_slots))
    )
    if known_or_unavailable < n_replicas or not counts_slots:
        return ("", None, counts, ())

    # All N views known. Identify the leading tie group; the designee is
    # the smallest by the AgentId's own total order, never by slot.
    top_score = max(counts_slots.values())
    tied = [s for s, n in counts_slots.items() if n == top_score]
    winner_slot = min(tied, key=table._ids.sort_key)
    m_tied = len(tied)

    # Rule 2: the paper's early tie-break guard (unweighted only). Even
    # if a tied agent captured every server not currently topped by the
    # tie group it could not reach a majority, so waiting cannot resolve
    # the tie.
    unclaimed = n_replicas - m_tied * top_score
    if m_tied > 1 and top_score + unclaimed < majority:
        return ("paper-tie-break", value(winner_slot), counts, ())

    # Rule 3 ([D1]): complete information, every list non-empty, no
    # majority -> frozen stalemate; designate by identifier.
    # (Some locking list empty: tops can still change freely — a new
    # arrival becomes top there — so keep gathering.)
    for top in tops_slots.values():
        if top is None:
            return ("", None, counts, ())
    return ("complete-info", value(winner_slot), counts, ())


def decide_reference(
    table: LockingTable,
    n_replicas: int,
    self_id: AgentId,
    votes: Optional[Mapping[str, int]] = None,
    extra_done: frozenset = frozenset(),
    unavailable: frozenset = frozenset(),
) -> Decision:
    """Executable specification of :func:`decide` (original code path).

    Operates through the table's public dataclass API only; the fast
    path is property-tested equal to this on randomized tables. Also the
    live path for weighted voting.
    """
    if n_replicas < 1:
        raise ValueError(f"n_replicas must be >= 1: {n_replicas}")
    tops = table.tops(extra_done)
    if votes is None:
        majority = n_replicas // 2 + 1
        counts = table.top_counts(extra_done)
    else:
        total_votes = sum(votes.values())
        if total_votes < 1:
            raise ValueError("total vote weight must be >= 1")
        majority = total_votes // 2 + 1
        counts = Counter()
        for host, top in tops.items():
            if top is not None:
                counts[top] += votes.get(host, 0)

    # Rule 1: majority of top-ranks.
    for agent_id, count in counts.items():
        if count >= majority:
            quorum = tuple(
                sorted(h for h, top in tops.items() if top == agent_id)
            )
            outcome = WIN if agent_id == self_id else OTHER
            return Decision(
                outcome=outcome,
                winner=agent_id,
                reason="majority",
                top_counts=dict(counts),
                quorum_hosts=quorum,
            )

    known_or_unavailable = len(tops) + len(unavailable - set(tops))
    if known_or_unavailable < n_replicas or not counts:
        return Decision(outcome=UNDECIDED, top_counts=dict(counts))

    # All N views known. Identify the leading tie group.
    top_score = max(counts.values())
    tied = sorted(a for a, c in counts.items() if c == top_score)
    m_tied = len(tied)

    # Rule 2: the paper's early tie-break guard (unweighted only). Even
    # if a tied agent captured every server not currently topped by the
    # tie group it could not reach a majority, so waiting cannot resolve
    # the tie.
    unclaimed = n_replicas - m_tied * top_score
    if votes is None and m_tied > 1 and top_score + unclaimed < majority:
        return Decision(
            outcome=STALEMATE,
            winner=tied[0],
            reason="paper-tie-break",
            top_counts=dict(counts),
        )

    # Rule 3 ([D1]): complete information, every list non-empty, no
    # majority -> frozen stalemate; designate by identifier.
    if all(top is not None for top in tops.values()):
        return Decision(
            outcome=STALEMATE,
            winner=tied[0],
            reason="complete-info",
            top_counts=dict(counts),
        )

    # Some locking list is empty: tops can still change freely (a new
    # arrival becomes top there), so keep gathering.
    return Decision(outcome=UNDECIDED, top_counts=dict(counts))


def rank_queue(
    table: LockingTable,
    n_replicas: int,
    limit: Optional[int] = None,
    votes: Optional[Mapping[str, int]] = None,
) -> Tuple[AgentId, ...]:
    """Predict the lock-grant order — the paper's pipelining extension.

    Paper §3.3: the algorithm "can be extended so that mobile agents can
    determine not only the first mobile agent who will obtain the lock
    next, but also the second agent, the third agent, etc." Successive
    winners are computed by repeatedly evaluating the decision rules
    while treating earlier predicted winners as already finished.

    The prediction is exact for the lock state the table knows about
    (agents not yet enqueued can only join behind), and like the decision
    itself it is a pure function of the table — every agent with the same
    information predicts the same order (the agreement property,
    property-tested).
    """
    order = []
    done: set = set()
    probe = AgentId("\x00rank-probe", float("-inf"), 0)  # never a winner
    while limit is None or len(order) < limit:
        decision = decide(
            table, n_replicas, probe, votes=votes,
            extra_done=frozenset(done),
        )
        if decision.winner is None or decision.winner in done:
            break
        order.append(decision.winner)
        done.add(decision.winner)
    return tuple(order)
