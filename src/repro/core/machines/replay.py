"""Deterministic script-replay harness for the protocol machines.

Because the machines are sans-IO, an entire multi-agent, multi-replica
protocol run can be executed with **no** simulator, no threads, no
clocks and no randomness — just a manual event queue interpreting the
machines' effects. That is what this module provides:

* :func:`replay` — feed a recorded input script straight into a single
  machine and collect the effect batches it emits. The unit-level tool:
  any interleaving (a COMMIT overtaking an ACK round, a grant expiring
  mid-claim, a park wake racing a release) can be written down as a
  literal list of inputs and asserted on, byte for byte.
* :class:`KernelHarness` — a miniature deterministic world wiring N
  replica machines and any number of agent machines together through a
  priority event queue with fixed hop and message latencies. Where the
  DES backend uses seeded randomness (itinerary choice, back-off
  sampling), the harness is deliberately degenerate — lowest-named
  candidate, back-off equal to its mean — so every run is a pure
  function of the submitted workload and fault script.

Beyond replica crash/restart, the harness exposes the fault primitives
the schedule adversary (:mod:`~repro.core.machines.adversary`)
randomizes over, all of them deterministic:

* **partitions** (:meth:`KernelHarness.set_partition` /
  :meth:`KernelHarness.heal_partition`) — messages crossing the cut are
  buffered and delivered after the heal (asynchrony, not loss: the
  paper's model assumes reliable channels between live servers), and an
  agent migrating across the cut receives ``ReplicaDown``;
* **per-message perturbations** (:meth:`KernelHarness.drop_message`,
  :meth:`KernelHarness.duplicate_message`,
  :meth:`KernelHarness.delay_message`) — addressed by the global send
  index, which is well-defined because the harness is deterministic.
  Drops are restricted to :data:`DROPPABLE_KINDS`, the request/response
  traffic the protocol itself retries; COMMIT/ABORT/SYNC propagation is
  reliable in the paper's model and may be delayed or duplicated but
  never silently lost;
* **agent churn** (:meth:`KernelHarness.kill`) — an agent vanishes
  mid-flight, leaving its lock entries and any unreleased grants behind
  (the grant-TTL expiry path exists exactly for this).

The harness is *not* a third execution backend for experiments; it
exists so protocol edge cases and cross-machine races are testable
without booting either real backend.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.agents.identity import AgentId
from repro.core.machines.agent import AgentCoreState, AgentMachine
from repro.core.machines.config import DES_TUNABLES
from repro.core.machines.effects import (
    Backoff,
    Broadcast,
    CancelTimer,
    Dispose,
    Migrate,
    Note,
    Park,
    PostBulletin,
    ReleaseNotify,
    Send,
    SetTimer,
    Visit,
)
from repro.core.machines.events import Arrived, MsgReceived, ReplicaDown, TimerFired
from repro.core.machines.replica import ReplicaMachine
from repro.core.machines.wire import UpdatePayload

__all__ = [
    "replay",
    "KernelHarness",
    "EventBudgetExceeded",
    "DROPPABLE_KINDS",
]

#: Message kinds a ``drop_message`` directive may actually lose. These
#: are the claim-round request/response messages the protocol retries on
#: its own timers. COMMIT/ABORT (write-all propagation) and the
#: SYNC pair (crash recovery) are reliable in the paper's fault model —
#: losing them silently would manufacture divergence the protocol never
#: claims to survive — so drop directives aimed at them are no-ops.
DROPPABLE_KINDS = frozenset(
    ("UPDATE", "ACK", "NACK", "RELEASE", "READQ", "READR")
)


class EventBudgetExceeded(RuntimeError):
    """The harness hit its ``max_events`` budget before the queue drained.

    Raised (never swallowed) so a livelocked schedule reads as a test
    *failure* rather than a silent truncated pass. Subclasses
    ``RuntimeError`` for backward compatibility with callers that caught
    the old generic error.
    """

    def __init__(self, max_events: int, now: float, pending: int) -> None:
        super().__init__(
            f"harness exceeded {max_events} events at t={now:g} with "
            f"{pending} still queued — livelock?"
        )
        self.max_events = max_events
        self.now = now
        self.pending = pending


def replay(machine, inputs) -> List[List[Any]]:
    """Feed a recorded input script into a machine, batch by batch.

    Returns one effect list per input, in order. Works for both
    :class:`~repro.core.machines.agent.AgentMachine` and
    :class:`~repro.core.machines.replica.ReplicaMachine` (anything with
    an ``on(event)`` method).
    """
    return [list(machine.on(event)) for event in inputs]


#: Replies a replica addresses to the *agent* waiting at a host, not to
#: the replica process itself.
_AGENT_BOUND = ("ACK", "NACK", "READR")


@dataclass
class _AgentRun:
    machine: AgentMachine
    host: str
    status: Optional[str] = None
    writes: Tuple = ()
    notes: List[Tuple[float, str, str]] = field(default_factory=list)
    timer_token: Dict[str, int] = field(default_factory=dict)
    wake_token: int = 0


class KernelHarness:
    """A deterministic interpreter wiring machines together.

    Latencies are fixed (``hop_latency`` per migration, ``msg_latency``
    per message) and the back-off "sample" is exactly its mean, so the
    whole run is reproducible from the call sequence alone. Hosts can be
    crashed and restarted (fail-stop: a down replica machine receives
    nothing, and migrating to it yields a ``ReplicaDown`` input).
    """

    def __init__(
        self,
        hosts,
        tunables=DES_TUNABLES,
        hop_latency: float = 1.0,
        msg_latency: float = 1.0,
    ) -> None:
        self.hosts = sorted(hosts)
        self.tunables = tunables
        self.hop_latency = hop_latency
        self.msg_latency = msg_latency
        self.replicas: Dict[str, ReplicaMachine] = {
            host: ReplicaMachine(host, self.hosts, tunables)
            for host in self.hosts
        }
        self.down: Set[str] = set()
        self.now = 0.0
        self.agents: Dict[AgentId, _AgentRun] = {}
        self.parked: Dict[str, Set[AgentId]] = {h: set() for h in self.hosts}
        self.results: Dict[int, str] = {}
        self._queue: List[Tuple[float, int, Tuple]] = []
        self._seq = 0
        # -- fault-injection state (all empty => classic behaviour) -----
        self.partition: Optional[Dict[str, int]] = None
        self._partition_buffer: List[Tuple[str, str, Any, str]] = []
        self.msg_index = 0
        self.drop_msgs: Set[int] = set()
        self.dup_msgs: Dict[int, float] = {}
        self.delay_msgs: Dict[int, float] = {}
        self.dropped: List[Tuple[float, str, str, str]] = []
        self.killed: Set[AgentId] = set()
        self.events_processed = 0

    # -- workload & faults ----------------------------------------------

    def submit(
        self,
        home: str,
        request_id: int,
        key: str,
        value: Any,
        at: float = 0.0,
        created_seq: int = 0,
    ) -> AgentId:
        """Create one update agent at ``home``; it starts touring at ``at``."""
        agent_id = AgentId(home, at, created_seq)
        state = AgentCoreState(
            agent_id=agent_id,
            home=home,
            batch_id=request_id,
            requests=[(request_id, key, value)],
            tour_remaining=set(self.hosts) - {home},
            location=home,
        )
        run = _AgentRun(
            machine=AgentMachine(state, self.hosts, self.tunables),
            host=home,
        )
        self.agents[agent_id] = run
        self._schedule(at, ("visit", agent_id, home))
        return agent_id

    def crash(self, host: str, at: Optional[float] = None) -> None:
        if at is None:
            self.down.add(host)
        else:
            self._schedule(at, ("crash", host))

    def restart(
        self,
        host: str,
        at: Optional[float] = None,
        sync_from: Optional[str] = None,
        atomic: bool = False,
    ) -> None:
        """Bring a crashed replica back, optionally resyncing from a peer.

        ``atomic=True`` models the backends' recovery discipline (the
        server completes its catch-up *before* rejoining): the snapshot
        is pulled synchronously from ``sync_from`` — or, when omitted,
        from the lowest-named live peer — instead of via a SYNC message
        round-trip during which the stale replica could already answer
        claims.
        """
        if at is None:
            self._do_restart(host, sync_from, atomic)
        else:
            self._schedule(at, ("restart", host, sync_from, atomic))

    def kill(self, agent_id: AgentId, at: Optional[float] = None) -> None:
        """Remove an agent from the world (mid-flight churn).

        The agent simply vanishes: its lock entries and any grant it
        holds stay behind at the replicas, exactly as when a mobile
        agent's host platform dies. Grant-TTL expiry is what unwedges
        the servers it claimed at.
        """
        if at is None:
            self._do_kill(agent_id)
        else:
            self._schedule(at, ("kill", agent_id))

    def set_partition(self, groups, at: Optional[float] = None) -> None:
        """Split the cluster into ``groups`` (iterables of host names).

        Messages crossing the cut are buffered and delivered after
        :meth:`heal_partition` (reliable-but-asynchronous channels, the
        paper's model); migrations across the cut yield ``ReplicaDown``.
        Hosts named in no group are isolated singletons. A new partition
        replaces the previous one wholesale.
        """
        if at is not None:
            self._schedule(at, ("partition", tuple(map(tuple, groups))))
            return
        mapping: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for host in group:
                if host not in self.replicas:
                    raise ValueError(f"unknown host {host!r} in partition")
                mapping[host] = index
        next_group = len(mapping)
        for host in self.hosts:
            if host not in mapping:
                mapping[host] = next_group
                next_group += 1
        self.partition = mapping

    def heal_partition(self, at: Optional[float] = None) -> None:
        """Remove the partition and deliver every buffered message."""
        if at is not None:
            self._schedule(at, ("heal",))
            return
        self.partition = None
        buffered, self._partition_buffer = self._partition_buffer, []
        for dst, kind, payload, src in buffered:
            self._schedule(
                self.now + self.msg_latency, ("deliver", dst, kind, payload, src)
            )

    def drop_message(self, nth: int) -> None:
        """Drop the ``nth`` message handed to the network (0-based).

        Only kinds in :data:`DROPPABLE_KINDS` are actually lost; a drop
        directive landing on reliable traffic (COMMIT/ABORT/SYNC) is a
        recorded no-op.
        """
        self.drop_msgs.add(nth)

    def duplicate_message(self, nth: int, extra_delay: float = 0.0) -> None:
        """Deliver the ``nth`` message twice, the copy ``extra_delay`` later."""
        self.dup_msgs[nth] = extra_delay

    def delay_message(self, nth: int, by: float) -> None:
        """Add ``by`` to the ``nth`` message's delivery latency."""
        self.delay_msgs[nth] = by

    def _reachable(self, src: str, dst: str) -> bool:
        if self.partition is None or src == dst:
            return True
        return self.partition.get(src) == self.partition.get(dst)

    def _do_restart(
        self, host: str, sync_from: Optional[str], atomic: bool
    ) -> None:
        self.down.discard(host)
        if atomic:
            peer = sync_from or min(
                (h for h in self.hosts if h not in self.down and h != host),
                default=None,
            )
            if peer is None:
                return  # no live peer: rejoin on durable state alone
            replica = self.replicas[host]
            for effect in self.replicas[peer].on_message(
                "SYNC_REQUEST", {}, src=host, now=self.now
            ):
                if isinstance(effect, Send) and effect.kind == "SYNC_REPLY":
                    self._run_replica(
                        replica,
                        replica.on_message(
                            "SYNC_REPLY", effect.payload, src=peer,
                            now=self.now,
                        ),
                    )
        elif sync_from is not None:
            self._deliver_later(sync_from, "SYNC_REQUEST", {}, src=host)

    def _do_kill(self, agent_id: AgentId) -> None:
        run = self.agents.pop(agent_id, None)
        if run is None:
            return
        self.killed.add(agent_id)
        for waiting in self.parked.values():
            waiting.discard(agent_id)

    # -- event loop -----------------------------------------------------

    def run(self, until: float = 1e9, max_events: int = 100_000) -> float:
        """Drain the event queue up to ``until``; returns the final time.

        Raises :class:`EventBudgetExceeded` when more than ``max_events``
        events fire before the queue drains — a livelocked schedule must
        surface as a failure, never as a silently truncated pass.
        """
        processed = 0
        while self._queue and self._queue[0][0] <= until:
            processed += 1
            self.events_processed += 1
            if processed > max_events:
                raise EventBudgetExceeded(
                    max_events, self.now, len(self._queue)
                )
            when, _seq, action = heapq.heappop(self._queue)
            self.now = when
            self._handle(action)
        return self.now

    def _schedule(self, when: float, action: Tuple) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, action))

    def _deliver_later(
        self, dst: str, kind: str, payload: Any, src: str
    ) -> None:
        index = self.msg_index
        self.msg_index += 1
        if index in self.drop_msgs and kind in DROPPABLE_KINDS:
            self.dropped.append((self.now, src, dst, kind))
            return
        if not self._reachable(src, dst):
            self._partition_buffer.append((dst, kind, payload, src))
            return
        latency = self.msg_latency + self.delay_msgs.get(index, 0.0)
        self._schedule(
            self.now + latency, ("deliver", dst, kind, payload, src)
        )
        if index in self.dup_msgs:
            self._schedule(
                self.now + latency + self.dup_msgs[index],
                ("deliver", dst, kind, payload, src),
            )

    def _handle(self, action: Tuple) -> None:
        op = action[0]
        if op == "visit":
            self._do_visit(action[1], action[2])
        elif op == "deliver":
            self._do_deliver(action[1], action[2], action[3], action[4])
        elif op == "timer":
            _op, agent_id, kind, token = action
            run = self.agents.get(agent_id)
            if run is None or run.timer_token.get(kind) != token:
                return  # cancelled or superseded
            self._run_agent(run, run.machine.on(TimerFired(kind, self.now)))
        elif op == "wake":
            _op, agent_id, token = action
            run = self.agents.get(agent_id)
            if run is None or run.wake_token != token:
                return
            self._wake(agent_id)
        elif op == "crash":
            self.down.add(action[1])
        elif op == "restart":
            _op, host, sync_from, atomic = action
            self._do_restart(host, sync_from, atomic)
        elif op == "partition":
            self.set_partition(action[1])
        elif op == "heal":
            self.heal_partition()
        elif op == "kill":
            self._do_kill(action[1])

    # -- visits ----------------------------------------------------------

    def _do_visit(self, agent_id: AgentId, host: str) -> None:
        run = self.agents.get(agent_id)
        if run is None:
            return
        # run.host is still the origin until the visit lands, so the
        # reachability check covers migrations across a partition cut.
        if host in self.down or not self._reachable(run.host, host):
            self._run_agent(run, run.machine.on(ReplicaDown(host, self.now)))
            return
        run.host = host
        run.machine.state.location = host
        replica = self.replicas[host]
        data, effects = replica.begin_visit(
            agent_id, run.machine.state.batch_id, self.now,
            acked=run.machine.state.table.acked_seq(host),
        )
        self._run_replica(replica, effects)
        self._run_agent(
            run,
            run.machine.on(
                Arrived(
                    host=host,
                    now=self.now,
                    view=data.view,
                    bulletin=data.bulletin,
                    rank=data.rank,
                    ll_len=data.ll_len,
                )
            ),
        )

    def _wake(self, agent_id: AgentId) -> None:
        run = self.agents.get(agent_id)
        if run is None:
            return
        self.parked[run.host].discard(agent_id)
        run.wake_token += 1
        self._do_visit(agent_id, run.host)

    # -- message delivery -------------------------------------------------

    def _do_deliver(
        self, dst: str, kind: str, payload: Any, src: str
    ) -> None:
        if kind in _AGENT_BOUND:
            # Addressed to whatever agent is waiting at the host; the
            # machines' batch/epoch guards discard mismatches.
            for run in list(self.agents.values()):
                if run.host == dst and run.status is None:
                    self._run_agent(
                        run,
                        run.machine.on(
                            MsgReceived(kind, payload, self.now, src=src)
                        ),
                    )
            return
        if dst in self.down:
            return  # fail-stop: a crashed server processes nothing
        replica = self.replicas[dst]
        self._run_replica(
            replica,
            replica.on_message(kind, payload, src=src, now=self.now),
        )

    # -- effect interpretation ---------------------------------------------

    def _run_agent(self, run: _AgentRun, effects) -> None:
        agent_id = run.machine.state.agent_id
        for effect in effects:
            if isinstance(effect, Note):
                run.notes.append((self.now, effect.kind, effect.detail))
            elif isinstance(effect, PostBulletin):
                if run.host not in self.down:
                    self.replicas[run.host].post_bulletin(effect.views)
            elif isinstance(effect, Migrate):
                dst = min(effect.candidates)
                self._schedule(
                    self.now + self.hop_latency, ("visit", agent_id, dst)
                )
            elif isinstance(effect, Park):
                self.parked[run.host].add(agent_id)
                self._schedule(
                    self.now + effect.timeout,
                    ("wake", agent_id, run.wake_token),
                )
            elif isinstance(effect, Backoff):
                # Deterministic "sample": exactly the mean.
                token = run.timer_token.get("backoff", 0) + 1
                run.timer_token["backoff"] = token
                self._schedule(
                    self.now + effect.mean,
                    ("timer", agent_id, "backoff", token),
                )
            elif isinstance(effect, Visit):
                self._do_visit(agent_id, run.host)
            elif isinstance(effect, SetTimer):
                token = run.timer_token.get(effect.kind, 0) + 1
                run.timer_token[effect.kind] = token
                self._schedule(
                    self.now + effect.delay,
                    ("timer", agent_id, effect.kind, token),
                )
            elif isinstance(effect, CancelTimer):
                run.timer_token[effect.kind] = (
                    run.timer_token.get(effect.kind, 0) + 1
                )
            elif isinstance(effect, Send):
                self._deliver_later(
                    effect.dst, effect.kind, effect.payload, src=run.host
                )
            elif isinstance(effect, Broadcast):
                for host in self.hosts:
                    self._deliver_later(
                        host, effect.kind, effect.payload, src=run.host
                    )
            elif isinstance(effect, Dispose):
                run.status = effect.status
                run.writes = effect.writes
                self.results[run.machine.state.batch_id] = effect.status
            # LockWon / ClaimStarted / ClaimResolved are bookkeeping
            # milestones; the harness has no spans or records to update.

    def _run_replica(self, replica: ReplicaMachine, effects) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self._deliver_later(
                    effect.dst, effect.kind, effect.payload, src=replica.host
                )
            elif isinstance(effect, ReleaseNotify):
                for agent_id in list(self.parked[replica.host]):
                    self._wake(agent_id)
            # Granted / Nacked / CommitApplied / QueueChanged / Recovered
            # are observability milestones with no harness action.

    # -- inspection --------------------------------------------------------

    def commit_chains(self) -> Dict[str, List[Tuple[int, Any]]]:
        """Per-key ``[(version, value), ...]`` from the union of histories."""
        chains: Dict[str, Dict[int, Any]] = {}
        for replica in self.replicas.values():
            for record in replica.history:
                chains.setdefault(record.key, {})[record.version] = (
                    record.value
                )
        return {
            key: sorted(versions.items())
            for key, versions in chains.items()
        }

    def statuses(self) -> Dict[int, str]:
        return dict(self.results)


def update_payload_from_dict(p: Dict[str, Any]) -> UpdatePayload:
    """Helper for tests replaying wire-level dict payloads."""
    return UpdatePayload(
        batch_id=p["batch_id"],
        agent_id=p["agent_id"],
        origin=p.get("origin", ""),
        writes=tuple(p.get("writes", ())),
        reply_to=p.get("reply_to", ""),
        epoch=p.get("epoch", 0),
    )
