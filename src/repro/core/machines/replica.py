"""The replica protocol kernel — the paper's Algorithm 2, sans-IO.

A :class:`ReplicaMachine` is the *logic* of one replicated server: the
versioned store, the Locking List and Updated List, the bulletin board,
and the exclusive update grant behind every acknowledgement. It is a
pure state machine — time enters only through ``now`` arguments, every
outward action is returned as a typed effect, and nothing in here knows
whether it runs under the discrete-event simulator, a live thread, or a
replay harness.

Two kinds of entry points:

* the **local interface** (``begin_visit``, ``request_lock``,
  ``lock_view``, ``post_bulletin`` …) used by a co-located mobile agent
  during a visit — method calls, "taking the advantage of being in the
  same site as the peer process";
* the **message interface** (:meth:`on` / :meth:`on_message`) for
  UPDATE / COMMIT / ABORT / RELEASE / SYNC_REQUEST / SYNC_REPLY / READQ,
  each returning the effects the driver must perform.

Crash behaviour stays driver-side: a crashed server simply stops
feeding its machine (fail-stop), and recovery is a SYNC_REQUEST /
SYNC_REPLY exchange driven from outside.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.agents.identity import AgentId
from repro.core.machines.effects import (
    CommitApplied,
    Effect,
    Granted,
    Nacked,
    QueueChanged,
    Recovered,
    ReleaseNotify,
    Send,
)
from repro.core.machines.delta import DeltaJournal
from repro.core.machines.events import MsgReceived
from repro.core.machines.structures import (
    CommitRecord,
    HistoryLog,
    LockEntry,
    LockingList,
    UpdatedList,
    VersionedStore,
)
from repro.core.machines.wire import (
    SharedView,
    SharedViewDelta,
    UpdatePayload,
    VisitData,
)

__all__ = ["ReplicaMachine"]

#: Message kinds the replica machine consumes.
HANDLED_KINDS = (
    "UPDATE", "COMMIT", "ABORT", "RELEASE",
    "SYNC_REQUEST", "SYNC_REPLY", "READQ",
)


class ReplicaMachine:
    """Pure Algorithm 2 state: store, LL, UL, history, bulletin, grant."""

    def __init__(self, host: str, peers, tunables) -> None:
        if host not in peers:
            raise ProtocolError(f"peers list must include the host {host!r}")
        self.host = host
        self.peers = list(peers)
        #: duck-typed: only ``grant_ttl`` and ``enable_bulletin`` are read,
        #: and they are read per-call so live config mutation is honoured.
        self.tunables = tunables

        self.store = VersionedStore()
        self.locking_list = LockingList(host)
        self.updated_list = UpdatedList(
            retention=getattr(tunables, "ul_retention", None)
        )
        self.history = HistoryLog(host)
        self.bulletin: Dict[str, SharedView] = {}
        self.pending_updates: Dict[int, UpdatePayload] = {}
        # Exclusive update grant: the server-side promise behind an ACK.
        # While held (and unexpired), UPDATEs from other agents are
        # NACKed, which is what makes a majority of ACKs an exclusive
        # critical section regardless of how stale the claimer's Locking
        # Table was.
        self.grant_holder: Optional[AgentId] = None
        self.grant_batch: Optional[int] = None
        self.grant_epoch: int = 0
        self.grant_expires_at: float = float("-inf")

        #: delta-view data plane (opt-in): a mutation journal that lets
        #: :meth:`begin_visit` hand returning visitors only what changed
        #: since their acknowledged sequence. ``None`` = classic plane;
        #: nothing below journals and every view ships unstamped.
        self.journal: Optional[DeltaJournal] = (
            DeltaJournal(host)
            if getattr(tunables, "delta_views", False)
            else None
        )

        self.acks_sent = 0
        self.nacks_sent = 0
        self.commits_applied = 0
        self.recoveries = 0

    @property
    def n_replicas(self) -> int:
        return len(self.peers)

    # ------------------------------------------------------------------
    # Local interface used by co-located mobile agents
    # ------------------------------------------------------------------

    def begin_visit(
        self, agent_id: AgentId, request_id: int, now: float,
        acked: Optional[int] = None,
    ) -> Tuple[VisitData, List[Effect]]:
        """One agent visit: guarded lock enqueue + information exchange.

        Returns the :class:`VisitData` the agent machine needs (fresh
        lock view, bulletin board, post-enqueue rank) plus any effects
        (a ``QueueChanged`` when the visit appended a lock entry). The
        agent's answering ``PostBulletin`` effect is routed back to
        :meth:`post_bulletin` by the driver.

        ``acked`` is the visitor's acknowledged sequence for this server
        (:meth:`LockingTable.acked_seq`). When the delta plane is on and
        the journal still retains that base, the handed view is a
        :class:`SharedViewDelta` covering only what changed since —
        including this visit's own enqueue, exactly like the full
        snapshot would. First contact (``acked`` = -1), an evicted base,
        or the classic plane all fall back to the full snapshot.
        """
        effects: List[Effect] = []
        enqueued = False
        if (
            agent_id not in self.updated_list
            and agent_id not in self.locking_list
        ):
            effects.extend(self.request_lock(agent_id, request_id, now))
            enqueued = True
        view: Any = None
        if self.journal is not None and acked is not None:
            view = self.delta_view(now, acked)
        if view is None:
            view = self.lock_view(now)
        data = VisitData(
            view=view,
            bulletin=self.read_bulletin(),
            rank=self.locking_list.rank(agent_id),
            ll_len=len(self.locking_list),
            enqueued=enqueued,
        )
        return data, effects

    def request_lock(
        self, agent_id: AgentId, request_id: int, now: float
    ) -> List[Effect]:
        """Append the visiting agent to the Locking List (idempotent)."""
        if agent_id in self.locking_list:
            return []
        if agent_id in self.updated_list:
            raise ProtocolError(
                f"agent {agent_id} already completed its update; it must "
                "not re-request the lock"
            )
        self.locking_list.append(
            LockEntry(agent_id=agent_id, request_id=request_id,
                      enqueued_at=now)
        )
        if self.journal is not None:
            self.journal.bump("enq", agent_id)
        return [QueueChanged()]

    def requeue_lock(
        self, agent_id: AgentId, request_id: int, now: float
    ) -> List[Effect]:
        """Move the agent's lock entry to the tail of the Locking List.

        A voluntary back-off primitive: withdrawing and immediately
        re-appending one's *own* entry can only demote oneself, so
        mutual exclusion is unaffected. The current protocol resolves
        stalemates through grant-certified claims instead ([D1]), but
        the primitive remains available to alternative policies.
        """
        removed = self.locking_list.remove(agent_id)
        self.locking_list.append(
            LockEntry(agent_id=agent_id, request_id=request_id,
                      enqueued_at=now)
        )
        if self.journal is not None:
            if removed:
                self.journal.bump("deq", agent_id)
            self.journal.bump("enq", agent_id)
        return [ReleaseNotify()]

    def lock_view(self, now: float) -> SharedView:
        """Fresh snapshot of this server's lock state."""
        self.updated_list.prune(now)
        return SharedView(
            host=self.host,
            as_of=now,
            view=self.locking_list.view(),
            updated=self.updated_list.as_set(),
            versions=self.store.version_vector(),
            seq=self.journal.seq if self.journal is not None else -1,
        )

    def delta_view(
        self, now: float, base_seq: int
    ) -> Optional[SharedViewDelta]:
        """Delta since ``base_seq``, or None when only a full snapshot
        will do (classic plane, first contact, base evicted/reset).

        Under a finite ``ul_retention`` the receiver's reconstructed
        ``updated`` set is a monotone *superset* of this server's pruned
        UL — safe (finished is monotone knowledge; pruning only forgets),
        and exact in the default keep-forever configuration.
        """
        if self.journal is None:
            return None
        self.updated_list.prune(now)
        return self.journal.delta_since(base_seq, now)

    def read_bulletin(self) -> Dict[str, SharedView]:
        """Views of *other* servers deposited by previous visitors."""
        if not self.tunables.enable_bulletin:
            return {}
        return dict(self.bulletin)

    def post_bulletin(self, views: Dict[str, SharedView]) -> int:
        """Deposit lock views; keeps only the freshest per server.

        Returns the number of entries that were news to this server.
        """
        if not self.tunables.enable_bulletin:
            return 0
        posted = 0
        for host, view in views.items():
            if host == self.host:
                continue  # our own state is always fresher locally
            if view.is_newer_than(self.bulletin.get(host)):
                self.bulletin[host] = view
                posted += 1
        return posted

    def read(self, key: str):
        """Local read — the paper's fast read path (not guaranteed fresh)."""
        return self.store.read(key)

    def version_of(self, key: str) -> int:
        return self.store.version_of(key)

    def last_update_time(self, key: str) -> float:
        return self.store.last_update_time(key)

    # ------------------------------------------------------------------
    # Message interface (Algorithm 2's message clauses)
    # ------------------------------------------------------------------

    def on(self, event: MsgReceived) -> List[Effect]:
        return self.on_message(
            event.kind, event.payload, src=event.src, now=event.now
        )

    def on_message(
        self, kind: str, payload: Any, src: str = "", now: float = 0.0
    ) -> List[Effect]:
        if kind == "UPDATE":
            return self._on_update(payload, now)
        if kind == "COMMIT":
            return self._on_commit(payload, now)
        if kind == "ABORT":
            return self._on_abort(payload, now)
        if kind == "RELEASE":
            return self._on_release(payload)
        if kind == "SYNC_REQUEST":
            return self._on_sync_request(src)
        if kind == "SYNC_REPLY":
            return self._on_sync_reply(payload, src, now)
        if kind == "READQ":
            return self._on_read_query(payload, src)
        raise ProtocolError(f"replica machine cannot handle {kind!r}")

    def grant_is_free(self, now: float) -> bool:
        return self.grant_holder is None or now > self.grant_expires_at

    def release_grant(
        self, agent_id: AgentId, up_to_epoch: Optional[int] = None
    ) -> None:
        """Free the grant if held by ``agent_id``.

        ``up_to_epoch`` (RELEASE/ABORT messages) guards against the race
        where a re-claim's UPDATE overtakes the failed claim's RELEASE:
        a release must not clear a grant issued for a *later* epoch.
        """
        if self.grant_holder != agent_id:
            return
        if up_to_epoch is not None and self.grant_epoch > up_to_epoch:
            return
        self.grant_holder = None
        self.grant_batch = None
        self.grant_epoch = 0
        self.grant_expires_at = float("-inf")

    def _on_update(self, payload: UpdatePayload, now: float) -> List[Effect]:
        """Grant request: ACK (with our version vector) or NACK.

        The ACK's version vector is what lets the winner pick versions
        above everything previously committed ([D3]): any earlier
        winner's grant here was released by processing its COMMIT, i.e.
        *after* applying its writes, so an ACK never predates a commit
        this server participated in.
        """
        if payload.agent_id == self.grant_holder or self.grant_is_free(now):
            if self.grant_holder == payload.agent_id:
                # A stale UPDATE must not roll the epoch backwards.
                self.grant_epoch = max(self.grant_epoch, payload.epoch)
            else:
                self.grant_epoch = payload.epoch
            self.grant_holder = payload.agent_id
            self.grant_batch = payload.batch_id
            self.grant_expires_at = now + self.tunables.grant_ttl
            self.pending_updates[payload.batch_id] = payload
            self.acks_sent += 1
            return [
                Granted(payload.agent_id, payload.batch_id, payload.epoch),
                Send(
                    payload.reply_to,
                    "ACK",
                    {
                        "batch_id": payload.batch_id,
                        "epoch": payload.epoch,
                        "from": self.host,
                        "versions": self.store.version_vector(),
                    },
                ),
            ]
        self.nacks_sent += 1
        holder = self.grant_holder
        return [
            Nacked(payload.agent_id, payload.batch_id, holder),
            Send(
                payload.reply_to,
                "NACK",
                {
                    "batch_id": payload.batch_id,
                    "epoch": payload.epoch,
                    "from": self.host,
                    "holder": str(holder),
                },
            ),
        ]

    def _on_commit(self, payload: UpdatePayload, now: float) -> List[Effect]:
        # COMMIT is self-contained: even if our UPDATE was lost (e.g. we
        # were briefly down), the commit can still be applied.
        self.pending_updates.pop(payload.batch_id, None)
        effects: List[Effect] = []
        journal = self.journal
        for write in payload.writes:
            applied = self.store.apply(
                write.key, write.value, write.version, now
            )
            if applied:
                self.history.append(
                    CommitRecord(
                        request_id=write.request_id,
                        key=write.key,
                        value=write.value,
                        version=write.version,
                        committed_at=now,
                        origin=payload.origin,
                    )
                )
                self.commits_applied += 1
                if journal is not None:
                    journal.bump("ver", (write.key, write.version))
                effects.append(
                    CommitApplied(
                        payload.agent_id, write.request_id,
                        write.key, write.version,
                    )
                )
        # Locks from this agent are removed regardless of staleness.
        self.release_grant(payload.agent_id)
        removed = self.locking_list.remove(payload.agent_id)
        finished = self.updated_list.add(payload.agent_id, at=now)
        if journal is not None:
            if removed:
                journal.bump("deq", payload.agent_id)
            if finished:
                journal.bump("fin", payload.agent_id)
        effects.append(QueueChanged())
        effects.append(ReleaseNotify())
        return effects

    def _on_abort(self, payload: UpdatePayload, now: float) -> List[Effect]:
        """An agent gave up on its request entirely: forget it."""
        self.pending_updates.pop(payload.batch_id, None)
        self.release_grant(payload.agent_id)
        removed = self.locking_list.remove(payload.agent_id)
        finished = self.updated_list.add(payload.agent_id, at=now)
        if self.journal is not None:
            if removed:
                self.journal.bump("deq", payload.agent_id)
            if finished:
                self.journal.bump("fin", payload.agent_id)
        return [QueueChanged(), ReleaseNotify()]

    def _on_release(self, payload: UpdatePayload) -> List[Effect]:
        """A claim failed: give back the grant, keep the lock entry."""
        self.pending_updates.pop(payload.batch_id, None)
        self.release_grant(payload.agent_id, up_to_epoch=payload.epoch)
        return []

    def _on_sync_request(self, src: str) -> List[Effect]:
        return [
            Send(
                src,
                "SYNC_REPLY",
                {
                    "snapshot": self.store.snapshot(),
                    "updated": tuple(self.updated_list.ids()),
                },
                category="data",
            )
        ]

    def _on_sync_reply(
        self, payload: Dict[str, Any], src: str, now: float
    ) -> List[Effect]:
        self.store.install_snapshot(payload["snapshot"], now)
        self.updated_list.merge(payload["updated"], at=now)
        self.recoveries += 1
        # Stale lock entries from agents that finished while we were down
        # would wedge our LL top forever; clear them.
        for agent_id in list(self.locking_list.view()):
            if agent_id in self.updated_list:
                self.locking_list.remove(agent_id)
        if self.grant_holder is not None and self.grant_holder in self.updated_list:
            self.release_grant(self.grant_holder)
        if self.journal is not None:
            # Recovery rewrote store/UL/LL state in one stroke; rather
            # than journal a bulk diff, invalidate the window so every
            # visitor takes the full-snapshot fallback once.
            self.journal.reset()
        return [Recovered(src), QueueChanged(), ReleaseNotify()]

    def _on_read_query(
        self, payload: Dict[str, Any], src: str
    ) -> List[Effect]:
        """Quorum-read support ([D5] extension): report version + value."""
        key = payload["key"]
        entry = self.store.read(key)
        return [
            Send(
                src,
                "READR",
                {
                    "request_id": payload["request_id"],
                    "key": key,
                    "from": self.host,
                    "version": entry.version if entry else 0,
                    "value": entry.value if entry else None,
                },
            )
        ]

    def __repr__(self) -> str:
        return (
            f"<ReplicaMachine {self.host!r} ll={len(self.locking_list)} "
            f"ul={len(self.updated_list)} commits={self.commits_applied}>"
        )
