"""Protocol-owned replica state structures.

The sans-IO kernel owns every data structure whose contents the paper's
algorithms reason about:

* the per-server **Locking List (LL)** — lock requests from visiting
  mobile agents, "sorted according to the time the entries are created"
  (paper §3.2, FIFO append order);
* the per-server **Updated List (UL)** — identifiers of agents "that
  have already obtained the lock and performed the actual update";
* the **versioned object store** — per-key versions assigned by the
  protocol, strictly increasing at every replica, which is what makes
  write-all application safe under message reordering ([D3]);
* the **commit history log** — the audit trail compared across replicas
  by :mod:`repro.analysis.consistency`.

They live here (rather than in :mod:`repro.replication`) so the kernel
has no import edge back into any execution backend; the historical
``repro.replication.locking`` / ``store`` / ``history`` modules re-export
these names unchanged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.agents.identity import AgentId

__all__ = [
    "LockEntry", "LockingList", "UpdatedList", "LockView",
    "VersionedValue", "VersionedStore",
    "CommitRecord", "HistoryLog",
]


@dataclass(frozen=True)
class LockEntry:
    """One agent's pending lock request at one server."""

    agent_id: AgentId
    request_id: int
    enqueued_at: float


#: An immutable view of a server's LL at a point in time: the ordered
#: tuple of agent ids, newest last. Shared between agents (information
#: sharing) and merged into Locking Tables.
LockView = Tuple[AgentId, ...]


class LockingList:
    """FIFO list of pending lock requests at one replica server.

    Flat-state backing: alongside the ordered entry list, membership is
    a set (O(1) probes instead of an equality scan — the guarded enqueue
    in ``begin_visit`` probes on every visit) and the immutable
    :meth:`view` tuple is cached between mutations, since one queue
    state is snapshotted into many ``SharedView``s.
    """

    def __init__(self, host: str) -> None:
        self.host = host
        self._entries: List[LockEntry] = []
        self._members: set = set()
        self._view_cache: Optional[LockView] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, agent_id: AgentId) -> bool:
        return agent_id in self._members

    def append(self, entry: LockEntry) -> None:
        """Append a new lock request (one entry per agent)."""
        if entry.agent_id in self._members:
            raise ProtocolError(
                f"agent {entry.agent_id} already holds a lock entry at "
                f"{self.host}"
            )
        if self._entries and entry.enqueued_at < self._entries[-1].enqueued_at:
            raise ProtocolError(
                f"lock entries at {self.host} must be appended in time order"
            )
        self._entries.append(entry)
        self._members.add(entry.agent_id)
        self._view_cache = None

    def top(self) -> Optional[AgentId]:
        """The agent currently ranked first, or None if empty."""
        return self._entries[0].agent_id if self._entries else None

    def rank(self, agent_id: AgentId) -> Optional[int]:
        """0-based position of the agent, or None if absent."""
        if agent_id not in self._members:
            return None
        for index, entry in enumerate(self._entries):
            if entry.agent_id == agent_id:
                return index
        return None

    def remove(self, agent_id: AgentId) -> bool:
        """Remove the agent's entry (after its COMMIT). True if present."""
        if agent_id not in self._members:
            return False
        for index, entry in enumerate(self._entries):
            if entry.agent_id == agent_id:
                del self._entries[index]
                self._members.discard(agent_id)
                self._view_cache = None
                return True
        return False

    def view(self) -> LockView:
        """Immutable ordered snapshot of the queued agent ids."""
        cached = self._view_cache
        if cached is None:
            cached = tuple(entry.agent_id for entry in self._entries)
            self._view_cache = cached
        return cached

    def entries(self) -> List[LockEntry]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._members.clear()
        self._view_cache = None

    def __repr__(self) -> str:
        ids = ", ".join(str(e.agent_id) for e in self._entries)
        return f"<LockingList {self.host!r}: [{ids}]>"


class UpdatedList:
    """Ordered set of agents that completed their update at this server.

    Merging ULs across servers yields an agent's Updated Agents List
    (UAL) — agents known to have finished, whose (possibly stale) lock
    entries can be disregarded.

    Retention
    ---------
    The paper keeps the UL forever, which is what the default
    (``retention=None``) does — and what every conformance scenario and
    fingerprint pins. Long runs cannot afford that: the UL is carried in
    every ``SharedView`` and merged into every visiting agent's Locking
    Table, so an unbounded UL makes per-event cost *and* memory grow
    with total completed agents (quadratic wall time over a run). With
    ``retention=r`` set, entries older than ``now - r`` are pruned.

    Pruning is safe but not free: the UAL is an optimisation that lets
    deciders disregard stale LL entries of completed agents. A pruned id
    can at worst make a decider treat such a stale entry as live again
    and wait for the grant TTL / park refresh to clear it — a bounded
    liveness cost, never a safety violation, because write exclusivity
    is enforced by the server-side update grant, not the UAL. Under
    fault-free operation a RELEASE removes the LL entry within one
    message delay of completion, so any retention comfortably above the
    RTT + grant TTL window makes the pruned-but-still-queued case
    vanishingly rare.
    """

    def __init__(self, retention: Optional[float] = None) -> None:
        #: (agent_id, completed_at) in nondecreasing completion time.
        self._entries: Deque[Tuple[AgentId, float]] = deque()
        self._members: set = set()
        self._frozen: Optional[frozenset] = None
        self.retention = retention
        self.pruned_total = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, agent_id: AgentId) -> bool:
        return agent_id in self._members

    def add(self, agent_id: AgentId, at: float = 0.0) -> bool:
        """Record a completed agent. True if newly added."""
        if agent_id in self._members:
            return False
        self._members.add(agent_id)
        self._entries.append((agent_id, at))
        self._frozen = None
        return True

    def merge(self, other_ids, at: float = 0.0) -> int:
        """Union in another UL/UAL; returns number of new entries."""
        members = self._members
        entries = self._entries
        added = 0
        for agent_id in other_ids:
            if agent_id not in members:
                members.add(agent_id)
                entries.append((agent_id, at))
                added += 1
        if added:
            self._frozen = None
        return added

    def prune(self, now: float) -> int:
        """Drop entries older than the retention window (no-op when
        ``retention`` is None). Returns the number pruned."""
        retention = self.retention
        if retention is None:
            return 0
        entries = self._entries
        if not entries:
            return 0
        cutoff = now - retention
        members = self._members
        dropped = 0
        while entries and entries[0][1] < cutoff:
            agent_id, _ = entries.popleft()
            members.discard(agent_id)
            dropped += 1
        if dropped:
            self._frozen = None
            self.pruned_total += dropped
        return dropped

    def ids(self) -> Tuple[AgentId, ...]:
        """Completion order as an immutable tuple."""
        return tuple(agent_id for agent_id, _ in self._entries)

    def as_set(self) -> frozenset:
        """Frozen membership snapshot (cached between mutations — one
        queue state is snapshotted into many ``SharedView``s)."""
        cached = self._frozen
        if cached is None:
            cached = frozenset(self._members)
            self._frozen = cached
        return cached

    def __iter__(self):
        return iter(agent_id for agent_id, _ in self._entries)

    def __repr__(self) -> str:
        return f"<UpdatedList n={len(self._entries)}>"


@dataclass(frozen=True)
class VersionedValue:
    """One key's current state at a replica."""

    value: Any
    version: int
    updated_at: float

    def __repr__(self) -> str:
        return f"VersionedValue(v{self.version}={self.value!r} @ {self.updated_at:g})"


class VersionedStore:
    """Per-replica key/value store with per-key version ordering.

    Versions are per-key, assigned by the replication protocol, and
    strictly increasing at every replica: an arriving update older than
    the installed version is *stale* and ignored (the installed value
    already supersedes it).
    """

    # Flat-state backing: three parallel plain dicts (value / version /
    # updated-at) instead of a dict of frozen ``VersionedValue``s. The
    # hot paths — ``version_of`` per priority probe, ``version_vector``
    # per SharedView snapshot and per ACK — become single dict lookups
    # and a dict copy; ``VersionedValue`` objects are materialised only
    # at the API boundary (``read``/``snapshot``), whose callers are the
    # cold read/recovery/audit paths.

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}
        self._versions: Dict[str, int] = {}
        self._times: Dict[str, float] = {}
        #: versions applied, in application order, per key (for audits)
        self.applied_log: List[Tuple[str, int, float]] = []
        self.stale_rejections = 0

    def bound_applied_log(self, maxlen: int = 1024) -> None:
        """Swap the applied log for a bounded ring buffer.

        No protocol logic reads the log — it exists for audits and
        tests that inspect application order — but it grows by one
        entry per applied write, which dominates peak memory on
        million-request streaming runs (~100 B x writes x replicas).
        Streaming accounting calls this at enable time so per-host
        state stays O(1) in run length; ``apply`` keeps appending and
        the deque discards the oldest entries.
        """
        self.applied_log = deque(self.applied_log, maxlen=maxlen)

    # -- reads --------------------------------------------------------------

    def read(self, key: str) -> Optional[VersionedValue]:
        """Current versioned value, or ``None`` if never written."""
        version = self._versions.get(key)
        if version is None:
            return None
        return VersionedValue(self._values[key], version, self._times[key])

    def version_of(self, key: str) -> int:
        """Installed version for ``key`` (0 if absent)."""
        return self._versions.get(key, 0)

    def last_update_time(self, key: str) -> float:
        """Paper's 'time of last update' (-inf if never written)."""
        return self._times.get(key, float("-inf"))

    def keys(self) -> List[str]:
        return sorted(self._versions)

    def snapshot(self) -> Dict[str, VersionedValue]:
        """Copy of the full store (for recovery transfer and audits)."""
        values = self._values
        times = self._times
        return {
            key: VersionedValue(values[key], version, times[key])
            for key, version in self._versions.items()
        }

    def version_vector(self) -> Dict[str, int]:
        """``key -> version`` for every key present."""
        return self._versions.copy()

    # -- writes -------------------------------------------------------------

    def apply(
        self, key: str, value: Any, version: int, timestamp: float
    ) -> bool:
        """Install ``value`` at ``version`` if it is newer.

        Returns True if applied, False if stale (already superseded).
        Duplicate deliveries of the same version are stale by definition.
        """
        if version <= 0:
            raise ValueError(f"versions are positive integers: {version}")
        current = self._versions.get(key)
        if current is not None and version <= current:
            self.stale_rejections += 1
            return False
        self._values[key] = value
        self._versions[key] = version
        self._times[key] = timestamp
        self.applied_log.append((key, version, timestamp))
        return True

    def install_snapshot(
        self, snapshot: Dict[str, VersionedValue], timestamp: float
    ) -> int:
        """Recovery catch-up: adopt any strictly newer entries.

        Returns the number of keys updated.
        """
        updated = 0
        for key, vv in snapshot.items():
            if self.apply(key, vv.value, vv.version, timestamp):
                updated += 1
        return updated

    def __len__(self) -> int:
        return len(self._versions)

    def __repr__(self) -> str:
        return f"<VersionedStore keys={len(self._versions)}>"


@dataclass(frozen=True)
class CommitRecord:
    """One committed update as seen by one replica."""

    request_id: int
    key: str
    value: Any
    version: int
    committed_at: float
    origin: str  # home server of the request

    def identity(self) -> Tuple[int, str, int]:
        """Fields that must agree across replicas for the same commit."""
        return (self.request_id, self.key, self.version)


class HistoryLog:
    """Append-only commit log of a single replica.

    Default mode retains every :class:`CommitRecord` for post-run
    audits. Streaming runs instead call :meth:`stream_to` with a sink
    (e.g. a rolling chain digest): commits are forwarded as appended and
    *not* retained, so a replica's memory stays O(1) in run length. The
    count, time-order guard and :meth:`last` keep working either way.
    """

    def __init__(self, host: str) -> None:
        self.host = host
        self._records: List[CommitRecord] = []
        self._sink: Optional[Callable[[CommitRecord], None]] = None
        self._last: Optional[CommitRecord] = None
        self._count = 0

    def stream_to(self, sink: Callable[[CommitRecord], None]) -> None:
        """Forward commits to ``sink`` instead of retaining them.

        Must be enabled before the first append (the already-retained
        prefix would otherwise be invisible to the sink).
        """
        if self._count:
            raise ProtocolError(
                f"history at {self.host} already holds {self._count} "
                "records; stream_to must be enabled before the first append"
            )
        self._sink = sink

    @property
    def streaming(self) -> bool:
        return self._sink is not None

    def append(self, record: CommitRecord) -> None:
        last = self._last
        if last is not None and record.committed_at < last.committed_at:
            raise ValueError(
                f"history at {self.host} must be appended in time order"
            )
        self._last = record
        self._count += 1
        sink = self._sink
        if sink is not None:
            sink(record)
            return
        self._records.append(record)

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        return iter(self._records)

    def records(self) -> List[CommitRecord]:
        return list(self._records)

    def identities(self) -> List[Tuple[int, str, int]]:
        """The commit-identity sequence used for order comparison."""
        return [record.identity() for record in self._records]

    def versions_for(self, key: str) -> List[int]:
        """Version sequence applied for one key, in commit order."""
        return [r.version for r in self._records if r.key == key]

    def last(self) -> Optional[CommitRecord]:
        return self._last

    def __repr__(self) -> str:
        return f"<HistoryLog {self.host!r} commits={self._count}>"
