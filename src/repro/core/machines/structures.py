"""Protocol-owned replica state structures.

The sans-IO kernel owns every data structure whose contents the paper's
algorithms reason about:

* the per-server **Locking List (LL)** — lock requests from visiting
  mobile agents, "sorted according to the time the entries are created"
  (paper §3.2, FIFO append order);
* the per-server **Updated List (UL)** — identifiers of agents "that
  have already obtained the lock and performed the actual update";
* the **versioned object store** — per-key versions assigned by the
  protocol, strictly increasing at every replica, which is what makes
  write-all application safe under message reordering ([D3]);
* the **commit history log** — the audit trail compared across replicas
  by :mod:`repro.analysis.consistency`.

They live here (rather than in :mod:`repro.replication`) so the kernel
has no import edge back into any execution backend; the historical
``repro.replication.locking`` / ``store`` / ``history`` modules re-export
these names unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.agents.identity import AgentId

__all__ = [
    "LockEntry", "LockingList", "UpdatedList", "LockView",
    "VersionedValue", "VersionedStore",
    "CommitRecord", "HistoryLog",
]


@dataclass(frozen=True)
class LockEntry:
    """One agent's pending lock request at one server."""

    agent_id: AgentId
    request_id: int
    enqueued_at: float


#: An immutable view of a server's LL at a point in time: the ordered
#: tuple of agent ids, newest last. Shared between agents (information
#: sharing) and merged into Locking Tables.
LockView = Tuple[AgentId, ...]


class LockingList:
    """FIFO list of pending lock requests at one replica server.

    Flat-state backing: alongside the ordered entry list, membership is
    a set (O(1) probes instead of an equality scan — the guarded enqueue
    in ``begin_visit`` probes on every visit) and the immutable
    :meth:`view` tuple is cached between mutations, since one queue
    state is snapshotted into many ``SharedView``s.
    """

    def __init__(self, host: str) -> None:
        self.host = host
        self._entries: List[LockEntry] = []
        self._members: set = set()
        self._view_cache: Optional[LockView] = None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, agent_id: AgentId) -> bool:
        return agent_id in self._members

    def append(self, entry: LockEntry) -> None:
        """Append a new lock request (one entry per agent)."""
        if entry.agent_id in self._members:
            raise ProtocolError(
                f"agent {entry.agent_id} already holds a lock entry at "
                f"{self.host}"
            )
        if self._entries and entry.enqueued_at < self._entries[-1].enqueued_at:
            raise ProtocolError(
                f"lock entries at {self.host} must be appended in time order"
            )
        self._entries.append(entry)
        self._members.add(entry.agent_id)
        self._view_cache = None

    def top(self) -> Optional[AgentId]:
        """The agent currently ranked first, or None if empty."""
        return self._entries[0].agent_id if self._entries else None

    def rank(self, agent_id: AgentId) -> Optional[int]:
        """0-based position of the agent, or None if absent."""
        if agent_id not in self._members:
            return None
        for index, entry in enumerate(self._entries):
            if entry.agent_id == agent_id:
                return index
        return None

    def remove(self, agent_id: AgentId) -> bool:
        """Remove the agent's entry (after its COMMIT). True if present."""
        if agent_id not in self._members:
            return False
        for index, entry in enumerate(self._entries):
            if entry.agent_id == agent_id:
                del self._entries[index]
                self._members.discard(agent_id)
                self._view_cache = None
                return True
        return False

    def view(self) -> LockView:
        """Immutable ordered snapshot of the queued agent ids."""
        cached = self._view_cache
        if cached is None:
            cached = tuple(entry.agent_id for entry in self._entries)
            self._view_cache = cached
        return cached

    def entries(self) -> List[LockEntry]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._members.clear()
        self._view_cache = None

    def __repr__(self) -> str:
        ids = ", ".join(str(e.agent_id) for e in self._entries)
        return f"<LockingList {self.host!r}: [{ids}]>"


class UpdatedList:
    """Ordered set of agents that completed their update at this server.

    Merging ULs across servers yields an agent's Updated Agents List
    (UAL) — agents known to have finished, whose (possibly stale) lock
    entries can be disregarded.
    """

    def __init__(self) -> None:
        self._order: List[AgentId] = []
        self._members: set = set()
        self._frozen: Optional[frozenset] = None

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, agent_id: AgentId) -> bool:
        return agent_id in self._members

    def add(self, agent_id: AgentId) -> bool:
        """Record a completed agent. True if newly added."""
        if agent_id in self._members:
            return False
        self._members.add(agent_id)
        self._order.append(agent_id)
        self._frozen = None
        return True

    def merge(self, other_ids) -> int:
        """Union in another UL/UAL; returns number of new entries."""
        members = self._members
        order = self._order
        added = 0
        for agent_id in other_ids:
            if agent_id not in members:
                members.add(agent_id)
                order.append(agent_id)
                added += 1
        if added:
            self._frozen = None
        return added

    def ids(self) -> Tuple[AgentId, ...]:
        """Completion order as an immutable tuple."""
        return tuple(self._order)

    def as_set(self) -> frozenset:
        """Frozen membership snapshot (cached between mutations — one
        queue state is snapshotted into many ``SharedView``s)."""
        cached = self._frozen
        if cached is None:
            cached = frozenset(self._members)
            self._frozen = cached
        return cached

    def __iter__(self):
        return iter(self._order)

    def __repr__(self) -> str:
        return f"<UpdatedList n={len(self._order)}>"


@dataclass(frozen=True)
class VersionedValue:
    """One key's current state at a replica."""

    value: Any
    version: int
    updated_at: float

    def __repr__(self) -> str:
        return f"VersionedValue(v{self.version}={self.value!r} @ {self.updated_at:g})"


class VersionedStore:
    """Per-replica key/value store with per-key version ordering.

    Versions are per-key, assigned by the replication protocol, and
    strictly increasing at every replica: an arriving update older than
    the installed version is *stale* and ignored (the installed value
    already supersedes it).
    """

    # Flat-state backing: three parallel plain dicts (value / version /
    # updated-at) instead of a dict of frozen ``VersionedValue``s. The
    # hot paths — ``version_of`` per priority probe, ``version_vector``
    # per SharedView snapshot and per ACK — become single dict lookups
    # and a dict copy; ``VersionedValue`` objects are materialised only
    # at the API boundary (``read``/``snapshot``), whose callers are the
    # cold read/recovery/audit paths.

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}
        self._versions: Dict[str, int] = {}
        self._times: Dict[str, float] = {}
        #: versions applied, in application order, per key (for audits)
        self.applied_log: List[Tuple[str, int, float]] = []
        self.stale_rejections = 0

    # -- reads --------------------------------------------------------------

    def read(self, key: str) -> Optional[VersionedValue]:
        """Current versioned value, or ``None`` if never written."""
        version = self._versions.get(key)
        if version is None:
            return None
        return VersionedValue(self._values[key], version, self._times[key])

    def version_of(self, key: str) -> int:
        """Installed version for ``key`` (0 if absent)."""
        return self._versions.get(key, 0)

    def last_update_time(self, key: str) -> float:
        """Paper's 'time of last update' (-inf if never written)."""
        return self._times.get(key, float("-inf"))

    def keys(self) -> List[str]:
        return sorted(self._versions)

    def snapshot(self) -> Dict[str, VersionedValue]:
        """Copy of the full store (for recovery transfer and audits)."""
        values = self._values
        times = self._times
        return {
            key: VersionedValue(values[key], version, times[key])
            for key, version in self._versions.items()
        }

    def version_vector(self) -> Dict[str, int]:
        """``key -> version`` for every key present."""
        return self._versions.copy()

    # -- writes -------------------------------------------------------------

    def apply(
        self, key: str, value: Any, version: int, timestamp: float
    ) -> bool:
        """Install ``value`` at ``version`` if it is newer.

        Returns True if applied, False if stale (already superseded).
        Duplicate deliveries of the same version are stale by definition.
        """
        if version <= 0:
            raise ValueError(f"versions are positive integers: {version}")
        current = self._versions.get(key)
        if current is not None and version <= current:
            self.stale_rejections += 1
            return False
        self._values[key] = value
        self._versions[key] = version
        self._times[key] = timestamp
        self.applied_log.append((key, version, timestamp))
        return True

    def install_snapshot(
        self, snapshot: Dict[str, VersionedValue], timestamp: float
    ) -> int:
        """Recovery catch-up: adopt any strictly newer entries.

        Returns the number of keys updated.
        """
        updated = 0
        for key, vv in snapshot.items():
            if self.apply(key, vv.value, vv.version, timestamp):
                updated += 1
        return updated

    def __len__(self) -> int:
        return len(self._versions)

    def __repr__(self) -> str:
        return f"<VersionedStore keys={len(self._versions)}>"


@dataclass(frozen=True)
class CommitRecord:
    """One committed update as seen by one replica."""

    request_id: int
    key: str
    value: Any
    version: int
    committed_at: float
    origin: str  # home server of the request

    def identity(self) -> Tuple[int, str, int]:
        """Fields that must agree across replicas for the same commit."""
        return (self.request_id, self.key, self.version)


class HistoryLog:
    """Append-only commit log of a single replica."""

    def __init__(self, host: str) -> None:
        self.host = host
        self._records: List[CommitRecord] = []

    def append(self, record: CommitRecord) -> None:
        if self._records and record.committed_at < self._records[-1].committed_at:
            raise ValueError(
                f"history at {self.host} must be appended in time order"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(self) -> List[CommitRecord]:
        return list(self._records)

    def identities(self) -> List[Tuple[int, str, int]]:
        """The commit-identity sequence used for order comparison."""
        return [record.identity() for record in self._records]

    def versions_for(self, key: str) -> List[int]:
        """Version sequence applied for one key, in commit order."""
        return [r.version for r in self._records if r.key == key]

    def last(self) -> Optional[CommitRecord]:
        return self._records[-1] if self._records else None

    def __repr__(self) -> str:
        return f"<HistoryLog {self.host!r} commits={len(self._records)}>"
