"""Protocol-owned replica state structures.

The sans-IO kernel owns every data structure whose contents the paper's
algorithms reason about:

* the per-server **Locking List (LL)** — lock requests from visiting
  mobile agents, "sorted according to the time the entries are created"
  (paper §3.2, FIFO append order);
* the per-server **Updated List (UL)** — identifiers of agents "that
  have already obtained the lock and performed the actual update";
* the **versioned object store** — per-key versions assigned by the
  protocol, strictly increasing at every replica, which is what makes
  write-all application safe under message reordering ([D3]);
* the **commit history log** — the audit trail compared across replicas
  by :mod:`repro.analysis.consistency`.

They live here (rather than in :mod:`repro.replication`) so the kernel
has no import edge back into any execution backend; the historical
``repro.replication.locking`` / ``store`` / ``history`` modules re-export
these names unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.agents.identity import AgentId

__all__ = [
    "LockEntry", "LockingList", "UpdatedList", "LockView",
    "VersionedValue", "VersionedStore",
    "CommitRecord", "HistoryLog",
]


@dataclass(frozen=True)
class LockEntry:
    """One agent's pending lock request at one server."""

    agent_id: AgentId
    request_id: int
    enqueued_at: float


#: An immutable view of a server's LL at a point in time: the ordered
#: tuple of agent ids, newest last. Shared between agents (information
#: sharing) and merged into Locking Tables.
LockView = Tuple[AgentId, ...]


class LockingList:
    """FIFO list of pending lock requests at one replica server."""

    def __init__(self, host: str) -> None:
        self.host = host
        self._entries: List[LockEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, agent_id: AgentId) -> bool:
        return any(e.agent_id == agent_id for e in self._entries)

    def append(self, entry: LockEntry) -> None:
        """Append a new lock request (one entry per agent)."""
        if entry.agent_id in self:
            raise ProtocolError(
                f"agent {entry.agent_id} already holds a lock entry at "
                f"{self.host}"
            )
        if self._entries and entry.enqueued_at < self._entries[-1].enqueued_at:
            raise ProtocolError(
                f"lock entries at {self.host} must be appended in time order"
            )
        self._entries.append(entry)

    def top(self) -> Optional[AgentId]:
        """The agent currently ranked first, or None if empty."""
        return self._entries[0].agent_id if self._entries else None

    def rank(self, agent_id: AgentId) -> Optional[int]:
        """0-based position of the agent, or None if absent."""
        for index, entry in enumerate(self._entries):
            if entry.agent_id == agent_id:
                return index
        return None

    def remove(self, agent_id: AgentId) -> bool:
        """Remove the agent's entry (after its COMMIT). True if present."""
        for index, entry in enumerate(self._entries):
            if entry.agent_id == agent_id:
                del self._entries[index]
                return True
        return False

    def view(self) -> LockView:
        """Immutable ordered snapshot of the queued agent ids."""
        return tuple(entry.agent_id for entry in self._entries)

    def entries(self) -> List[LockEntry]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        ids = ", ".join(str(e.agent_id) for e in self._entries)
        return f"<LockingList {self.host!r}: [{ids}]>"


class UpdatedList:
    """Ordered set of agents that completed their update at this server.

    Merging ULs across servers yields an agent's Updated Agents List
    (UAL) — agents known to have finished, whose (possibly stale) lock
    entries can be disregarded.
    """

    def __init__(self) -> None:
        self._order: List[AgentId] = []
        self._members: set = set()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, agent_id: AgentId) -> bool:
        return agent_id in self._members

    def add(self, agent_id: AgentId) -> bool:
        """Record a completed agent. True if newly added."""
        if agent_id in self._members:
            return False
        self._members.add(agent_id)
        self._order.append(agent_id)
        return True

    def merge(self, other_ids) -> int:
        """Union in another UL/UAL; returns number of new entries."""
        added = 0
        for agent_id in other_ids:
            if self.add(agent_id):
                added += 1
        return added

    def ids(self) -> Tuple[AgentId, ...]:
        """Completion order as an immutable tuple."""
        return tuple(self._order)

    def as_set(self) -> frozenset:
        return frozenset(self._members)

    def __iter__(self):
        return iter(self._order)

    def __repr__(self) -> str:
        return f"<UpdatedList n={len(self._order)}>"


@dataclass(frozen=True)
class VersionedValue:
    """One key's current state at a replica."""

    value: Any
    version: int
    updated_at: float

    def __repr__(self) -> str:
        return f"VersionedValue(v{self.version}={self.value!r} @ {self.updated_at:g})"


class VersionedStore:
    """Per-replica key/value store with per-key version ordering.

    Versions are per-key, assigned by the replication protocol, and
    strictly increasing at every replica: an arriving update older than
    the installed version is *stale* and ignored (the installed value
    already supersedes it).
    """

    def __init__(self) -> None:
        self._data: Dict[str, VersionedValue] = {}
        #: versions applied, in application order, per key (for audits)
        self.applied_log: List[Tuple[str, int, float]] = []
        self.stale_rejections = 0

    # -- reads --------------------------------------------------------------

    def read(self, key: str) -> Optional[VersionedValue]:
        """Current versioned value, or ``None`` if never written."""
        return self._data.get(key)

    def version_of(self, key: str) -> int:
        """Installed version for ``key`` (0 if absent)."""
        entry = self._data.get(key)
        return entry.version if entry is not None else 0

    def last_update_time(self, key: str) -> float:
        """Paper's 'time of last update' (-inf if never written)."""
        entry = self._data.get(key)
        return entry.updated_at if entry is not None else float("-inf")

    def keys(self) -> List[str]:
        return sorted(self._data)

    def snapshot(self) -> Dict[str, VersionedValue]:
        """Copy of the full store (for recovery transfer and audits)."""
        return dict(self._data)

    def version_vector(self) -> Dict[str, int]:
        """``key -> version`` for every key present."""
        return {key: vv.version for key, vv in self._data.items()}

    # -- writes -------------------------------------------------------------

    def apply(
        self, key: str, value: Any, version: int, timestamp: float
    ) -> bool:
        """Install ``value`` at ``version`` if it is newer.

        Returns True if applied, False if stale (already superseded).
        Duplicate deliveries of the same version are stale by definition.
        """
        if version <= 0:
            raise ValueError(f"versions are positive integers: {version}")
        current = self._data.get(key)
        if current is not None and version <= current.version:
            self.stale_rejections += 1
            return False
        self._data[key] = VersionedValue(value, version, timestamp)
        self.applied_log.append((key, version, timestamp))
        return True

    def install_snapshot(
        self, snapshot: Dict[str, VersionedValue], timestamp: float
    ) -> int:
        """Recovery catch-up: adopt any strictly newer entries.

        Returns the number of keys updated.
        """
        updated = 0
        for key, vv in snapshot.items():
            if self.apply(key, vv.value, vv.version, timestamp):
                updated += 1
        return updated

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"<VersionedStore keys={len(self._data)}>"


@dataclass(frozen=True)
class CommitRecord:
    """One committed update as seen by one replica."""

    request_id: int
    key: str
    value: Any
    version: int
    committed_at: float
    origin: str  # home server of the request

    def identity(self) -> Tuple[int, str, int]:
        """Fields that must agree across replicas for the same commit."""
        return (self.request_id, self.key, self.version)


class HistoryLog:
    """Append-only commit log of a single replica."""

    def __init__(self, host: str) -> None:
        self.host = host
        self._records: List[CommitRecord] = []

    def append(self, record: CommitRecord) -> None:
        if self._records and record.committed_at < self._records[-1].committed_at:
            raise ValueError(
                f"history at {self.host} must be appended in time order"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(self) -> List[CommitRecord]:
        return list(self._records)

    def identities(self) -> List[Tuple[int, str, int]]:
        """The commit-identity sequence used for order comparison."""
        return [record.identity() for record in self._records]

    def versions_for(self, key: str) -> List[int]:
        """Version sequence applied for one key, in commit order."""
        return [r.version for r in self._records if r.key == key]

    def last(self) -> Optional[CommitRecord]:
        return self._records[-1] if self._records else None

    def __repr__(self) -> str:
        return f"<HistoryLog {self.host!r} commits={len(self._records)}>"
