"""The mobile agent's Locking Table (LT) and Updated Agents List (UAL).

Paper §3.2: the agent carries

* **LT** — "a table of locking information obtained from all visited
  servers" (here: the freshest :class:`SharedView` known per server,
  whether learned by visiting or from server bulletin boards), and
* **UAL** — "a list of mobile agents that have already finished their
  request processing ... obtained by merging the UL maintained at each of
  the replicated servers".

The *effective top* of a server is the first agent in its known locking
list that is not in the UAL — stale entries of finished agents must not
count ("Other mobile agents will then be able to change their priorities
in their locking tables").

Flat-state backing (see ``docs/architecture.md``, "Kernel internals"):
alongside the wire-format ``views`` dict the table keeps each known
locking list *packed* as a list of interned integer ids and the UAL as
a flag ``bytearray`` indexed by interned id. The effective-top scan —
the inner loop of every priority evaluation — thereby probes a byte
slab instead of hashing ``AgentId`` dataclasses, and the top-per-host /
tally computation is cached against a mutation counter so repeated
``decide`` calls on an unchanged table cost one cache probe. The packed
state is a pure index over ``views``/``ual`` (rebuilt on unpickle, never
serialised), so the wire and replay formats are unchanged.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.agents.identity import AgentId
from repro.core.machines.intern import Interner
from repro.core.machines.structures import UpdatedList
from repro.core.machines.wire import SharedView, SharedViewDelta

__all__ = ["LockingTable"]


class LockingTable:
    """Per-agent accumulated lock knowledge."""

    def __init__(self, delta_views: bool = False) -> None:
        self.views: Dict[str, SharedView] = {}
        self.ual = UpdatedList()
        # Monotone max committed version per key, folded from *every*
        # ingested view (even stale ones). Knowledge of a finished agent
        # always arrives inside a SharedView whose version vector already
        # reflects that agent's commit at the snapshotting server, so this
        # map dominates every commit the UAL knows about — the property
        # that makes version assignment ([D3]) collision-free.
        self.max_versions: Dict[str, int] = {}
        #: delta-view data plane: report the compact wire encoding from
        #: :meth:`wire_size` (the merge paths need no flag — they engage
        #: on stamped sequence numbers alone).
        self.delta_views = delta_views
        #: highest server sequence fully merged, per host. Advanced only
        #: when this table holds the complete state at that sequence
        #: (an adopted full view, or an applied delta).
        self.acked: Dict[str, int] = {}
        #: per host, the wire cells of the last version payload merged —
        #: the delta-plane cost model for per-host version deviations.
        self._ver_dev: Dict[str, int] = {}
        self._init_packed()

    def _init_packed(self) -> None:
        """Fresh flat-state index (also used on unpickle)."""
        #: AgentId <-> dense slot; slot order is first-seen and carries
        #: no protocol meaning (tie-breaks sort by the AgentId itself).
        self._ids = Interner()
        #: per host, the known locking list as interned slots, queue order
        self._packed: Dict[str, List[int]] = {}
        #: finished flag per slot (the UAL, flat)
        self._done = bytearray()
        #: bumped on every change that can move an effective top
        self._mutations = 0
        #: (mutations, tops host->slot|None, counts slot->n) memo
        self._tops_cache: Optional[Tuple[int, dict, dict]] = None
        #: single-entry memo used by priority.decide (key, core result)
        self._decide_cache: Optional[tuple] = None
        #: (mutations, sorted hosts) memo for :attr:`known_hosts`
        self._hosts_cache: Optional[Tuple[int, List[str]]] = None

    # -- pickling ----------------------------------------------------------

    # The packed index is derived state: drop it from pickles (the live
    # backend ships the table inside AgentCoreState on every migration)
    # and rebuild on load. Slot numbering after a hop may differ from the
    # pre-hop numbering — harmless, since slots never leave the process
    # and never order anything.

    def __getstate__(self):
        state = {
            "views": self.views,
            "ual": self.ual,
            "max_versions": self.max_versions,
        }
        # The delta-plane fields ride only when the plane is on, so the
        # classic pickle payload stays byte-identical.
        if self.delta_views or self.acked:
            state["delta_views"] = self.delta_views
            state["acked"] = self.acked
            state["ver_dev"] = self._ver_dev
        return state

    def __setstate__(self, state) -> None:
        self.views = state["views"]
        self.ual = state["ual"]
        self.max_versions = state["max_versions"]
        self.delta_views = state.get("delta_views", False)
        self.acked = state.get("acked", {})
        self._ver_dev = state.get("ver_dev", {})
        self._init_packed()
        for agent_id in self.ual:
            self._finish_slot(agent_id)
        for host, view in self.views.items():
            self._packed[host] = self._pack(view.view)

    # -- packed-index plumbing ---------------------------------------------

    def _slot(self, agent_id: AgentId) -> int:
        """Interned slot of ``agent_id``, growing the flag slab if new."""
        slot = self._ids.intern(agent_id)
        if slot == len(self._done):
            self._done.append(0)
        return slot

    def _finish_slot(self, agent_id: AgentId) -> None:
        self._done[self._slot(agent_id)] = 1

    def _pack(self, view_ids) -> List[int]:
        return [self._slot(agent_id) for agent_id in view_ids]

    def _tops_slots(
        self, extra_done: frozenset = frozenset()
    ) -> Tuple[Dict[str, Optional[int]], Dict[int, int]]:
        """(host -> top slot | None, slot -> top tally), memoised.

        The memo only covers the ``extra_done``-free case — the per-event
        decision path; the pipelining extension passes growing
        ``extra_done`` sets and recomputes.
        """
        if not extra_done:
            cache = self._tops_cache
            if cache is not None and cache[0] == self._mutations:
                return cache[1], cache[2]
            extra = None
        else:
            index_of = self._ids.index_of
            extra = {
                slot
                for slot in map(index_of, extra_done)
                if slot is not None
            }
        done = self._done
        tops: Dict[str, Optional[int]] = {}
        counts: Dict[int, int] = {}
        for host, packed in self._packed.items():
            top = None
            for slot in packed:
                if not done[slot] and (extra is None or slot not in extra):
                    top = slot
                    break
            tops[host] = top
            if top is not None:
                counts[top] = counts.get(top, 0) + 1
        if extra is None:
            self._tops_cache = (self._mutations, tops, counts)
        return tops, counts

    # -- ingestion --------------------------------------------------------

    def update(self, view: SharedView) -> bool:
        """Merge a server view; keeps only the freshest per host.

        The view's ``updated`` set is always merged into the UAL (finished
        is monotone knowledge even from an older snapshot).
        Returns True if the view replaced the stored one.

        This is the flattened LL/UL->LT merge: one pass marks newly
        finished agents in both the UAL and the flag slab, one pass folds
        the version vector, and an adopted view is interned into its
        packed form immediately — nothing is re-materialised later.

        Delta plane: a view stamped with a server sequence number at or
        below this table's acknowledged sequence for that host is
        discarded in O(1) — both its queue (``as_of`` cannot be fresher)
        and its updated/version knowledge (monotone in ``seq``) are
        subsets of what was already merged. This is what turns the
        per-visit bulletin re-merge from O(hosts × agents) into O(hosts).
        """
        seq = view.seq
        if seq >= 0:
            acked = self.acked.get(view.host, -1)
            if seq < acked:
                return False
            if seq == acked:
                # Same sequence → identical queue/updated/versions
                # content; only the timestamp can differ. Adopt a
                # fresher one without re-merging (the packed index and
                # every memo stay valid — no effective top can move).
                if view.is_newer_than(self.views.get(view.host)):
                    self.views[view.host] = view
                    return True
                return False
        changed = False
        ual_add = self.ual.add
        for agent_id in view.updated:
            if ual_add(agent_id):
                self._done[self._slot(agent_id)] = 1
                changed = True
        if view.versions:
            max_versions = self.max_versions
            for key, version in view.versions.items():
                if version > max_versions.get(key, 0):
                    max_versions[key] = version
        if view.is_newer_than(self.views.get(view.host)):
            self.views[view.host] = view
            self._packed[view.host] = self._pack(view.view)
            self._mutations += 1
            if seq >= 0:
                # A full snapshot at seq was adopted wholesale: this
                # table now holds the complete state at that sequence.
                self.acked[view.host] = seq
                self._ver_dev[view.host] = (
                    len(view.versions) if view.versions else 0
                )
            return True
        if changed:
            self._mutations += 1
        return False

    def apply_delta(self, delta: SharedViewDelta) -> bool:
        """Patch one host's state in place from a server delta.

        O(changed entries): only newly finished ids touch the UAL flag
        slab, only changed cells fold into the version ceiling, and the
        packed slot list is edited rather than re-packed. The stored
        :class:`SharedView` is rebuilt to exactly what the server's full
        snapshot at ``delta.seq`` would have been (queue reconstruction
        is exact because LL appends land strictly at the tail), so
        everything downstream — bulletin deposits, freshness checks,
        pickled suitcases — is indistinguishable from the full plane.

        Returns True if anything changed.
        """
        host = delta.host
        stored = self.views.get(host)
        if stored is None or delta.base_seq != self.acked.get(host, -1):
            raise ProtocolError(
                f"delta for {host!r} built against base {delta.base_seq}, "
                f"but this table acknowledged "
                f"{self.acked.get(host, -1)} (view "
                f"{'present' if stored is not None else 'missing'})"
            )
        changed = False
        done = self._done
        if delta.finished:
            ual_add = self.ual.add
            for agent_id in delta.finished:
                if ual_add(agent_id):
                    done[self._slot(agent_id)] = 1
                    changed = True
        if delta.versions:
            max_versions = self.max_versions
            for key, version in delta.versions.items():
                if version > max_versions.get(key, 0):
                    max_versions[key] = version
        # Rebuild this host's stored snapshot at delta.seq.
        if delta.removed or delta.appended:
            removed = set(delta.removed)
            new_ids = tuple(
                a for a in stored.view if a not in removed
            ) + delta.appended
            packed = self._packed[host]
            if removed:
                index_of = self._ids.index_of
                gone = {
                    slot for slot in map(index_of, removed)
                    if slot is not None
                }
                packed = [slot for slot in packed if slot not in gone]
            if delta.appended:
                packed = packed + [
                    self._slot(a) for a in delta.appended
                ]
            self._packed[host] = packed
            changed = True
        else:
            new_ids = stored.view
        new_updated = stored.updated
        if delta.finished:
            new_updated = stored.updated.union(delta.finished)
        new_versions = stored.versions
        if delta.versions:
            new_versions = dict(stored.versions or ())
            new_versions.update(delta.versions)
            self._ver_dev[host] = len(delta.versions)
        self.views[host] = SharedView(
            host=host,
            as_of=delta.as_of,
            view=new_ids,
            updated=new_updated,
            versions=new_versions,
            seq=delta.seq,
        )
        self.acked[host] = delta.seq
        if changed:
            self._mutations += 1
        return changed

    def ingest(self, view) -> bool:
        """Merge a visit's view, whichever encoding the server chose."""
        if type(view) is SharedViewDelta:
            return self.apply_delta(view)
        return self.update(view)

    def acked_seq(self, host: str) -> int:
        """The server sequence this table acknowledges for ``host``
        (``-1`` = no complete state held — request a full snapshot)."""
        return self.acked.get(host, -1)

    def merge_bulletin(self, views: Dict[str, SharedView]) -> int:
        """Ingest a server's bulletin board; returns views adopted."""
        adopted = 0
        for view in views.values():
            if self.update(view):
                adopted += 1
        return adopted

    # -- queries -----------------------------------------------------------

    @property
    def known_hosts(self) -> List[str]:
        """Sorted hosts with a known view, memoised against mutations.

        Callers treat the result as read-only; every adoption of a view
        for a new host bumps ``_mutations``, so the memo can never serve
        a stale host list.
        """
        cache = self._hosts_cache
        if cache is not None and cache[0] == self._mutations:
            return cache[1]
        hosts = sorted(self.views)
        self._hosts_cache = (self._mutations, hosts)
        return hosts

    def view_of(self, host: str) -> Optional[SharedView]:
        return self.views.get(host)

    def effective_top(
        self, host: str, extra_done: frozenset = frozenset()
    ) -> Optional[AgentId]:
        """First queued agent at ``host`` not known to have finished.

        ``extra_done`` treats additional agents as finished — used by the
        lock-pipelining extension to predict successive winners.
        """
        packed = self._packed.get(host)
        if packed is None:
            return None
        done = self._done
        if extra_done:
            index_of = self._ids.index_of
            extra = {
                slot
                for slot in map(index_of, extra_done)
                if slot is not None
            }
            for slot in packed:
                if not done[slot] and slot not in extra:
                    return self._ids.value(slot)
            return None
        for slot in packed:
            if not done[slot]:
                return self._ids.value(slot)
        return None

    def tops(
        self, extra_done: frozenset = frozenset()
    ) -> Dict[str, Optional[AgentId]]:
        """Effective top per known host (None = empty/unknown)."""
        tops_slots, _counts = self._tops_slots(extra_done)
        value = self._ids.value
        return {
            host: (None if slot is None else value(slot))
            for host, slot in tops_slots.items()
        }

    def top_counts(self, extra_done: frozenset = frozenset()) -> Counter:
        """How many known servers each agent currently tops."""
        _tops, counts = self._tops_slots(extra_done)
        value = self._ids.value
        return Counter({value(slot): n for slot, n in counts.items()})

    def version_ceiling(self, key: str, hosts=()) -> int:
        """Highest version of ``key`` this agent knows committed ([D3]).

        Dominated by :attr:`max_versions`; the per-host views of ``hosts``
        are folded in for completeness but can never exceed it.
        """
        best = self.max_versions.get(key, 0)
        for host in hosts:
            view = self.views.get(host)
            if view is not None:
                best = max(best, view.version_of(key))
        return best

    def shareable_views(self, exclude_host: str) -> Dict[str, SharedView]:
        """Views worth leaving on ``exclude_host``'s bulletin board."""
        return {
            host: view
            for host, view in self.views.items()
            if host != exclude_host
        }

    def wire_size(self) -> int:
        """Approximate bytes the LT adds to the agent's migrations."""
        if self.delta_views:
            # Compact suitcase encoding enabled by the interner: the id
            # dictionary ships once, every per-host queue is 4-byte slot
            # indices into it, and the UAL plus each view's finished set
            # are dense slot bitsets — instead of repeating the full
            # AgentId tuple for every occurrence in every view. Version
            # vectors are charged at their last-merged deviation per
            # host (the full vector travels once via max_versions).
            slots = len(self._done)
            bitset = (slots + 7) // 8
            value = self._ids.value
            total = 16 + bitset  # container + global UAL bitset
            total += sum(value(slot).wire_size() for slot in range(slots))
            total += 16 * len(self.max_versions)
            for host, view in self.views.items():
                total += 16 + len(host) + 8 + 8  # host + as_of + seq
                total += 4 * len(self._packed[host])
                total += bitset  # the view's updated-set bitset
                total += 16 * self._ver_dev.get(
                    host, len(view.versions) if view.versions else 0
                )
            return total
        total = 16
        for view in self.views.values():
            total += 16 + len(view.host) + 8  # host + as_of
            total += sum(a.wire_size() for a in view.view)
            total += sum(a.wire_size() for a in view.updated)
            if view.versions:
                total += 16 * len(view.versions)
        total += sum(a.wire_size() for a in self.ual)
        return total

    def __repr__(self) -> str:
        return (
            f"<LockingTable hosts={len(self.views)} ual={len(self.ual)}>"
        )
