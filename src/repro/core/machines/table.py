"""The mobile agent's Locking Table (LT) and Updated Agents List (UAL).

Paper §3.2: the agent carries

* **LT** — "a table of locking information obtained from all visited
  servers" (here: the freshest :class:`SharedView` known per server,
  whether learned by visiting or from server bulletin boards), and
* **UAL** — "a list of mobile agents that have already finished their
  request processing ... obtained by merging the UL maintained at each of
  the replicated servers".

The *effective top* of a server is the first agent in its known locking
list that is not in the UAL — stale entries of finished agents must not
count ("Other mobile agents will then be able to change their priorities
in their locking tables").
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.agents.identity import AgentId
from repro.core.machines.structures import UpdatedList
from repro.core.machines.wire import SharedView

__all__ = ["LockingTable"]


class LockingTable:
    """Per-agent accumulated lock knowledge."""

    def __init__(self) -> None:
        self.views: Dict[str, SharedView] = {}
        self.ual = UpdatedList()
        # Monotone max committed version per key, folded from *every*
        # ingested view (even stale ones). Knowledge of a finished agent
        # always arrives inside a SharedView whose version vector already
        # reflects that agent's commit at the snapshotting server, so this
        # map dominates every commit the UAL knows about — the property
        # that makes version assignment ([D3]) collision-free.
        self.max_versions: Dict[str, int] = {}

    # -- ingestion --------------------------------------------------------

    def update(self, view: SharedView) -> bool:
        """Merge a server view; keeps only the freshest per host.

        The view's ``updated`` set is always merged into the UAL (finished
        is monotone knowledge even from an older snapshot).
        Returns True if the view replaced the stored one.
        """
        self.ual.merge(view.updated)
        if view.versions:
            for key, version in view.versions.items():
                if version > self.max_versions.get(key, 0):
                    self.max_versions[key] = version
        if view.is_newer_than(self.views.get(view.host)):
            self.views[view.host] = view
            return True
        return False

    def merge_bulletin(self, views: Dict[str, SharedView]) -> int:
        """Ingest a server's bulletin board; returns views adopted."""
        adopted = 0
        for view in views.values():
            if self.update(view):
                adopted += 1
        return adopted

    # -- queries -----------------------------------------------------------

    @property
    def known_hosts(self) -> List[str]:
        return sorted(self.views)

    def view_of(self, host: str) -> Optional[SharedView]:
        return self.views.get(host)

    def effective_top(
        self, host: str, extra_done: frozenset = frozenset()
    ) -> Optional[AgentId]:
        """First queued agent at ``host`` not known to have finished.

        ``extra_done`` treats additional agents as finished — used by the
        lock-pipelining extension to predict successive winners.
        """
        view = self.views.get(host)
        if view is None:
            return None
        for agent_id in view.view:
            if agent_id not in self.ual and agent_id not in extra_done:
                return agent_id
        return None

    def tops(
        self, extra_done: frozenset = frozenset()
    ) -> Dict[str, Optional[AgentId]]:
        """Effective top per known host (None = empty/unknown)."""
        return {
            host: self.effective_top(host, extra_done)
            for host in self.views
        }

    def top_counts(self, extra_done: frozenset = frozenset()) -> Counter:
        """How many known servers each agent currently tops."""
        return Counter(
            top
            for top in self.tops(extra_done).values()
            if top is not None
        )

    def version_ceiling(self, key: str, hosts=()) -> int:
        """Highest version of ``key`` this agent knows committed ([D3]).

        Dominated by :attr:`max_versions`; the per-host views of ``hosts``
        are folded in for completeness but can never exceed it.
        """
        best = self.max_versions.get(key, 0)
        for host in hosts:
            view = self.views.get(host)
            if view is not None:
                best = max(best, view.version_of(key))
        return best

    def shareable_views(self, exclude_host: str) -> Dict[str, SharedView]:
        """Views worth leaving on ``exclude_host``'s bulletin board."""
        return {
            host: view
            for host, view in self.views.items()
            if host != exclude_host
        }

    def wire_size(self) -> int:
        """Approximate bytes the LT adds to the agent's migrations."""
        total = 16
        for view in self.views.values():
            total += 16 + len(view.host) + 8  # host + as_of
            total += sum(a.wire_size() for a in view.view)
            total += sum(a.wire_size() for a in view.updated)
            if view.versions:
                total += 16 * len(view.versions)
        total += sum(a.wire_size() for a in self.ual)
        return total

    def __repr__(self) -> str:
        return (
            f"<LockingTable hosts={len(self.views)} ual={len(self.ual)}>"
        )
