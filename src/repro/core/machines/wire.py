"""Wire-level protocol payloads shared by every backend.

These are the values the machines put *inside* their ``Send`` /
``Broadcast`` effects and expect back inside ``MsgReceived`` inputs.
They carry no behaviour beyond pure accessors, and they are all
picklable — the live backend ships them (or dict renderings of them)
across real queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.agents.identity import AgentId
from repro.core.machines.structures import LockView

__all__ = ["SharedView", "WriteOp", "UpdatePayload", "Transform", "VisitData"]


@dataclass(frozen=True)
class SharedView:
    """A (possibly stale) snapshot of one server's lock state.

    Carried by agents in their Locking Tables and deposited on server
    bulletin boards for other agents. ``versions`` is the server's
    per-key version vector at snapshot time — this is how a winner
    "checks the time of last update of all the quorum members" ([D3]):
    a view that certifies the winner as top also certifies which commits
    that server had applied.
    """

    host: str
    as_of: float
    view: LockView
    updated: frozenset  # agent ids known to have completed
    versions: Any = None  # Dict[str, int] | None

    def version_of(self, key: str) -> int:
        if not self.versions:
            return 0
        return self.versions.get(key, 0)

    def is_newer_than(self, other: Optional["SharedView"]) -> bool:
        return other is None or self.as_of > other.as_of


@dataclass(frozen=True)
class WriteOp:
    """One write within an UPDATE batch (the agent's Request List)."""

    request_id: int
    key: str
    value: Any
    version: int

    def wire_size(self) -> int:
        # Must equal the generic structural estimate (16 + per-field
        # sizes): message sizes feed the network latency model, so any
        # drift here changes event timing and breaks run fingerprints.
        from repro.net.message import estimate_size

        return (
            16 + 8 + len(self.key.encode("utf-8"))
            + estimate_size(self.value) + 8
        )


@dataclass(frozen=True)
class UpdatePayload:
    """Body of UPDATE/COMMIT/ABORT/RELEASE messages.

    ``batch_id`` identifies the agent's update batch (= the first carried
    request id); ``epoch`` distinguishes successive claim attempts of the
    same agent so stale acknowledgements from an abandoned claim cannot
    be counted toward a later one. UPDATE and RELEASE carry no writes;
    COMMIT carries the full Request List with the final versions.

    ``trace_id`` is the sender's causal trace context (see
    :mod:`repro.obs.journeys`): purely observational, never consulted by
    protocol logic, but carried on the wire so replica-side telemetry
    can attribute grant/commit work to the agent journey that caused it.
    """

    batch_id: int
    agent_id: AgentId
    origin: str
    writes: Tuple[WriteOp, ...] = ()
    reply_to: str = ""
    epoch: int = 0
    trace_id: Optional[str] = None

    def wire_size(self) -> int:
        # Equals the generic structural estimate exactly (see WriteOp);
        # cached because a broadcast ships one frozen payload N times.
        size = self.__dict__.get("_wire_size")
        if size is None:
            size = (
                16 + 8 + self.agent_id.wire_size()
                + len(self.origin.encode("utf-8"))
                + 16 + sum(op.wire_size() for op in self.writes)
                + len(self.reply_to.encode("utf-8")) + 8
                + (0 if self.trace_id is None
                   else len(self.trace_id.encode("utf-8")))
            )
            object.__setattr__(self, "_wire_size", size)
        return size


class Transform:
    """A read-modify-write update: ``new_value = fn(current_value)``.

    Submit via :meth:`MARP.submit_rmw`. The winning agent fetches the
    freshest committed copy from its acknowledgement quorum ("uses the
    most recent copy", paper §3.1) before applying ``fn``, so the
    transformation always sees the latest committed state.
    """

    __slots__ = ("fn", "description")

    def __init__(self, fn, description: str = "") -> None:
        if not callable(fn):
            raise TypeError(f"Transform needs a callable, got {fn!r}")
        self.fn = fn
        self.description = description or getattr(fn, "__name__", "fn")

    def __call__(self, current):
        return self.fn(current)

    def wire_size(self) -> int:
        # A shipped transformation is code; charge a small fixed cost.
        return 128

    def __repr__(self) -> str:
        return f"Transform({self.description})"


@dataclass(frozen=True)
class VisitData:
    """What a replica hands a co-located agent during one visit.

    Produced by :meth:`ReplicaMachine.begin_visit` and fed into the
    agent machine as part of an :class:`~repro.core.machines.events.Arrived`
    input: the fresh lock view, the bulletin board, and the agent's rank
    in the Locking List (for tracing).
    """

    view: SharedView
    bulletin: Any  # Dict[str, SharedView]
    rank: Optional[int]
    ll_len: int
    enqueued: bool
