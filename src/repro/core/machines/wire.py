"""Wire-level protocol payloads shared by every backend.

These are the values the machines put *inside* their ``Send`` /
``Broadcast`` effects and expect back inside ``MsgReceived`` inputs.
They carry no behaviour beyond pure accessors, and they are all
picklable — the live backend ships them (or dict renderings of them)
across real queues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.agents.identity import AgentId
from repro.core.machines.structures import LockView

__all__ = [
    "SharedView", "SharedViewDelta", "WriteOp", "UpdatePayload",
    "Transform", "VisitData",
]


@dataclass(frozen=True)
class SharedView:
    """A (possibly stale) snapshot of one server's lock state.

    Carried by agents in their Locking Tables and deposited on server
    bulletin boards for other agents. ``versions`` is the server's
    per-key version vector at snapshot time — this is how a winner
    "checks the time of last update of all the quorum members" ([D3]):
    a view that certifies the winner as top also certifies which commits
    that server had applied.

    ``seq`` is the server's monotone mutation sequence number at
    snapshot time, stamped only when the delta-view data plane is on
    (``-1`` = unstamped, the classic full-view plane). A receiver that
    has already merged this server's state through ``seq`` can discard
    the whole view in O(1): with the paper's keep-forever Updated List,
    everything a lower-or-equal-seq snapshot knows is a subset of what
    the receiver merged.
    """

    host: str
    as_of: float
    view: LockView
    updated: frozenset  # agent ids known to have completed
    versions: Optional[Dict[str, int]] = None
    seq: int = -1

    def version_of(self, key: str) -> int:
        if not self.versions:
            return 0
        return self.versions.get(key, 0)

    def is_newer_than(self, other: Optional["SharedView"]) -> bool:
        return other is None or self.as_of > other.as_of


@dataclass(frozen=True)
class SharedViewDelta:
    """What changed at one server since the receiver's acked sequence.

    The delta-view data plane's wire format: instead of a full
    :class:`SharedView` (whole locking list, whole updated set, whole
    version vector — O(agents + keys) per snapshot), a server hands a
    returning visitor only the mutations logged between the visitor's
    acknowledged sequence ``base_seq`` and the current ``seq``:

    * ``removed`` / ``appended`` — the net locking-list edit. The LL
      only ever appends at the tail and removes in place (removals
      preserve the order of the remainder), so the receiver's queue
      reconstruction is exact:
      ``[a for a in base if a not in removed] + appended``.
    * ``finished`` — agent ids newly added to the server's Updated List.
    * ``versions`` — only the version-vector cells that changed, each at
      its newest value.

    A delta is only valid against the precise base it was cut for; on
    first contact, after a journal gap (bounded changelog evicted the
    base) or after a bulk state change (recovery snapshot install) the
    server falls back to a full :class:`SharedView`.
    """

    host: str
    as_of: float
    base_seq: int
    seq: int
    removed: Tuple[AgentId, ...] = ()
    appended: Tuple[AgentId, ...] = ()
    finished: Tuple[AgentId, ...] = ()
    versions: Optional[Dict[str, int]] = None

    def wire_size(self) -> int:
        # Structural, like the generic estimate: ids at their own wire
        # size, 8 B per number, 16 B container overhead per field.
        return (
            16 + len(self.host.encode("utf-8")) + 8  # host + as_of
            + 8 + 8  # base_seq + seq
            + 16 + sum(a.wire_size() for a in self.removed)
            + 16 + sum(a.wire_size() for a in self.appended)
            + 16 + sum(a.wire_size() for a in self.finished)
            + (
                0 if self.versions is None
                else 16 + sum(
                    len(k.encode("utf-8")) + 8 for k in self.versions
                )
            )
        )


@dataclass(frozen=True)
class WriteOp:
    """One write within an UPDATE batch (the agent's Request List)."""

    request_id: int
    key: str
    value: Any
    version: int

    def wire_size(self) -> int:
        # Must equal the generic structural estimate (16 + per-field
        # sizes): message sizes feed the network latency model, so any
        # drift here changes event timing and breaks run fingerprints.
        from repro.net.message import estimate_size

        return (
            16 + 8 + len(self.key.encode("utf-8"))
            + estimate_size(self.value) + 8
        )


@dataclass(frozen=True)
class UpdatePayload:
    """Body of UPDATE/COMMIT/ABORT/RELEASE messages.

    ``batch_id`` identifies the agent's update batch (= the first carried
    request id); ``epoch`` distinguishes successive claim attempts of the
    same agent so stale acknowledgements from an abandoned claim cannot
    be counted toward a later one. UPDATE and RELEASE carry no writes;
    COMMIT carries the full Request List with the final versions.

    ``trace_id`` is the sender's causal trace context (see
    :mod:`repro.obs.journeys`): purely observational, never consulted by
    protocol logic, but carried on the wire so replica-side telemetry
    can attribute grant/commit work to the agent journey that caused it.
    """

    batch_id: int
    agent_id: AgentId
    origin: str
    writes: Tuple[WriteOp, ...] = ()
    reply_to: str = ""
    epoch: int = 0
    trace_id: Optional[str] = None

    def wire_size(self) -> int:
        # Equals the generic structural estimate exactly (see WriteOp);
        # cached because a broadcast ships one frozen payload N times.
        size = self.__dict__.get("_wire_size")
        if size is None:
            size = (
                16 + 8 + self.agent_id.wire_size()
                + len(self.origin.encode("utf-8"))
                + 16 + sum(op.wire_size() for op in self.writes)
                + len(self.reply_to.encode("utf-8")) + 8
                + (0 if self.trace_id is None
                   else len(self.trace_id.encode("utf-8")))
            )
            object.__setattr__(self, "_wire_size", size)
        return size


class Transform:
    """A read-modify-write update: ``new_value = fn(current_value)``.

    Submit via :meth:`MARP.submit_rmw`. The winning agent fetches the
    freshest committed copy from its acknowledgement quorum ("uses the
    most recent copy", paper §3.1) before applying ``fn``, so the
    transformation always sees the latest committed state.
    """

    __slots__ = ("fn", "description")

    def __init__(self, fn, description: str = "") -> None:
        if not callable(fn):
            raise TypeError(f"Transform needs a callable, got {fn!r}")
        self.fn = fn
        self.description = description or getattr(fn, "__name__", "fn")

    def __call__(self, current):
        return self.fn(current)

    def wire_size(self) -> int:
        # A shipped transformation is code; charge a small fixed cost.
        return 128

    def __repr__(self) -> str:
        return f"Transform({self.description})"


@dataclass(frozen=True)
class VisitData:
    """What a replica hands a co-located agent during one visit.

    Produced by :meth:`ReplicaMachine.begin_visit` and fed into the
    agent machine as part of an :class:`~repro.core.machines.events.Arrived`
    input: the fresh lock view, the bulletin board, and the agent's rank
    in the Locking List (for tracing). Under the delta-view data plane
    ``view`` is a :class:`SharedViewDelta` whenever the visitor's acked
    sequence is inside the server's journal window.
    """

    view: Any  # SharedView | SharedViewDelta
    bulletin: Any  # Dict[str, SharedView]
    rank: Optional[int]
    ll_len: int
    enqueued: bool
