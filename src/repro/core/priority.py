"""The distributed priority calculation (compatibility shim).

The decision rules (paper §3.3, Theorems 1–2, deviation [D1]) are the
heart of the protocol kernel, so the implementation now lives in
:mod:`repro.core.machines.priority`. This module re-exports it unchanged
for existing importers.
"""

from __future__ import annotations

from repro.core.machines.priority import (
    OTHER,
    STALEMATE,
    UNDECIDED,
    WIN,
    Decision,
    decide,
    decide_reference,
    rank_queue,
)

__all__ = [
    "Decision", "decide", "decide_reference", "rank_queue",
    "WIN", "OTHER", "STALEMATE", "UNDECIDED",
]
