"""MARP — the Mobile Agent enabled Replication Protocol facade.

This is the library's primary public API::

    from repro import Deployment, MARP

    deployment = Deployment(n_replicas=5, seed=42)
    marp = MARP(deployment)
    record = marp.submit_write("s1", "x", 7)
    deployment.run()
    assert record.status == "committed"

Writes dispatch :class:`~repro.core.update_agent.UpdateAgent`s (one per
request, or one per batch); reads use the local or quorum path per the
configuration.
"""

from __future__ import annotations

from typing import List, Optional

from typing import Any, Callable, Dict

from repro.core.batching import BatchDispatcher
from repro.core.config import MARPConfig
from repro.core.read import start_local_read, start_quorum_read
from repro.core.update_agent import UpdateAgent
from repro.errors import ProtocolError
from repro.replication.deployment import Deployment
from repro.replication.protocol import ReplicationProtocol
from repro.replication.requests import RequestRecord, Transform

__all__ = ["MARP"]


class MARP(ReplicationProtocol):
    """Fully distributed, consistent replication via cooperating agents.

    Parameters
    ----------
    deployment:
        The replica cluster to run over.
    config:
        Protocol tunables (:class:`MARPConfig`).
    votes:
        Optional Gifford-style vote weights per host; the lock then
        requires topping servers holding a strict majority of the total
        votes instead of a majority by count (§5's "generic method"
        extension). Default: one vote per replica (the paper's scheme).
    """

    name = "marp"

    def __init__(
        self,
        deployment: Deployment,
        config: Optional[MARPConfig] = None,
        votes: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(deployment)
        self.config = config or MARPConfig()
        if votes is not None:
            unknown = set(votes) - set(deployment.hosts)
            if unknown:
                raise ProtocolError(f"votes for unknown hosts: {unknown}")
            if any(v < 0 for v in votes.values()):
                raise ProtocolError("vote weights must be >= 0")
            if sum(votes.values()) < 1:
                raise ProtocolError("total vote weight must be >= 1")
        self.votes = votes
        self.total_votes = (
            sum(votes.values()) if votes else deployment.n_replicas
        )
        self.vote_majority = self.total_votes // 2 + 1
        self.agents: List[UpdateAgent] = []
        self._batcher: Optional[BatchDispatcher] = None
        if self.config.batch_size > 1:
            self._batcher = BatchDispatcher(self)

    def vote_of(self, host: str) -> int:
        if self.votes is None:
            return 1
        return self.votes.get(host, 0)

    # -- protocol hooks ------------------------------------------------------

    def _start_write(self, record: RequestRecord) -> None:
        if self._batcher is not None:
            self._batcher.add(record)
        else:
            self.launch_agent(record.home, [record])

    def _start_read(self, record: RequestRecord) -> None:
        if self.config.read_strategy == "quorum":
            start_quorum_read(self, record)
        else:
            start_local_read(self, record)

    # -- read-modify-write extension -----------------------------------------

    def submit_rmw(
        self, home: str, key: str, fn: Callable[[Any], Any],
        description: str = "",
    ) -> RequestRecord:
        """Submit an atomic read-modify-write: ``value = fn(current)``.

        The winning agent fetches the freshest committed copy from its
        acknowledgement quorum before applying ``fn`` ("uses the most
        recent copy", paper §3.1), so concurrent RMWs compose without
        lost updates.
        """
        return self.submit_write(home, key, Transform(fn, description))

    # -- agent dispatch ----------------------------------------------------------

    def launch_agent(
        self, home: str, records: List[RequestRecord]
    ) -> UpdateAgent:
        """Create and launch one update agent carrying ``records``."""
        platform = self.deployment.platform(home)
        agent = UpdateAgent(platform.new_agent_id(), self, records)
        self.agents.append(agent)
        platform.launch(agent)
        return agent

    # -- introspection -------------------------------------------------------------

    def live_agents(self) -> List[UpdateAgent]:
        return [agent for agent in self.agents if not agent.disposed]

    def total_agent_hops(self) -> int:
        return sum(agent.hops for agent in self.agents)

    @property
    def batcher(self) -> Optional[BatchDispatcher]:
        return self._batcher
