"""MARP read paths.

The paper ([D5]): "a read operation may be executed on an arbitrary copy"
— reads hit the local replica and are fast but not guaranteed fresh
("it is acceptable that queries executed on a replica are not guaranteed
to give an up-to-date answer"). The quorum read is our extension: query
all replicas, accept the highest version among a majority of replies —
this *is* guaranteed to observe every committed update whose COMMIT
reached a majority.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.replication.requests import RequestRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import MARP

__all__ = ["start_local_read", "start_quorum_read"]


def start_local_read(marp: "MARP", record: RequestRecord) -> None:
    """Serve the read from the home replica's local copy."""

    def reader():
        server = marp.deployment.server(record.home)
        if server.config.read_service_time > 0:
            yield marp.env.timeout(server.config.read_service_time)
        entry = server.read(record.key)
        record.value = entry.value if entry is not None else None
        record.extra["version"] = entry.version if entry is not None else 0
        record.extra["read_strategy"] = "local"
        record.completed_at = marp.env.now
        record.status = "read-done"

    marp.env.process(reader(), name=f"read-{record.request_id}")


def start_quorum_read(marp: "MARP", record: RequestRecord) -> None:
    """Query every replica; return the freshest of a majority of replies."""

    def reader():
        env = marp.env
        endpoint = marp.deployment.platform(record.home).endpoint
        majority = marp.deployment.majority
        endpoint.broadcast(
            "READQ",
            payload={"request_id": record.request_id, "key": record.key},
            include_self=True,
        )
        best_version = 0
        best_value = None
        replies = 0
        deadline = env.timeout(marp.config.ack_timeout)
        while replies < majority:
            get_reply = endpoint.receive(
                "READR",
                match=lambda m: m.payload["request_id"] == record.request_id,
            )
            yield get_reply | deadline
            if not get_reply.processed:
                if not get_reply.triggered:
                    get_reply.succeed(None)
                break
            payload = get_reply.value.payload
            replies += 1
            if payload["version"] >= best_version:
                best_version = payload["version"]
                best_value = payload["value"]
        record.value = best_value
        record.extra["version"] = best_version
        record.extra["read_strategy"] = "quorum"
        record.extra["replies"] = replies
        record.completed_at = env.now
        record.status = "read-done" if replies >= majority else "failed"

    marp.env.process(reader(), name=f"qread-{record.request_id}")
