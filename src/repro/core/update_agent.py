"""The update mobile agent — the DES driver for the paper's Algorithm 1.

The protocol *logic* — touring, priority evaluation, parking ([D2]), the
claim round and version assignment ([D3]) — lives in the sans-IO
:class:`~repro.core.machines.agent.AgentMachine`. This class is the
discrete-event **driver** around it: it owns everything the kernel is
not allowed to touch —

* the simulation clock and the agent platform (migration, service-time
  and back-off timeouts, message receive events);
* the itinerary policy and its random stream (a ``Migrate(candidates)``
  effect comes back from the kernel; the driver picks the destination);
* request-record bookkeeping, protocol tracing, and observability spans
  and metrics.

Its interpretation loop is flat: perform each effect of the current
batch (some perform steps yield simulation events — a migration, a park
wait, an exponential back-off), feed the resulting input back into the
machine, and repeat until a ``Dispose`` effect ends the agent. When a
batch leaves the machine :attr:`~AgentMachine.awaiting` claim replies,
the driver blocks on one ACK/NACK/READR receive (or the pending timer)
and feeds whichever fires first.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.errors import ProtocolError, ReplicaUnavailable
from repro.agents.agent import MobileAgent
from repro.agents.identity import AgentId
from repro.agents.itinerary import make_itinerary
from repro.core.machines.agent import AgentCoreState, AgentMachine
from repro.core.machines.effects import (
    Backoff,
    Broadcast,
    CancelTimer,
    ClaimResolved,
    ClaimStarted,
    Dispose,
    LockWon,
    Migrate,
    Note,
    Park,
    PostBulletin,
    Send,
    SetTimer,
    Visit,
)
from repro.core.machines.events import (
    Arrived,
    MsgReceived,
    ReplicaDown,
    TimerFired,
)
from repro.core.machines.table import LockingTable
from repro.replication.server import ReplicaServer
from repro.replication.requests import RequestRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import MARP

__all__ = ["UpdateAgent"]


class UpdateAgent(MobileAgent):
    """Carries a batch of update requests to a majority consensus."""

    def __init__(
        self,
        agent_id: AgentId,
        marp: "MARP",
        records: List[RequestRecord],
    ) -> None:
        if not records:
            raise ValueError("an update agent needs at least one request")
        super().__init__(agent_id)
        self.marp = marp
        self.config = marp.config
        self.records = list(records)
        self.batch_id = self.records[0].request_id
        #: the carried protocol state + the sans-IO kernel over it
        self.core = AgentCoreState(
            agent_id=agent_id,
            home=self.home,
            batch_id=self.batch_id,
            requests=[(r.request_id, r.key, r.value) for r in self.records],
        )
        # Delta plane: the carried table reports the compact suitcase
        # encoding and tracks per-server acked sequences.
        self.core.table.delta_views = getattr(
            self.config, "delta_views", False
        )
        self.machine = AgentMachine(
            self.core, marp.deployment.hosts, self.config, votes=marp.votes
        )
        self.itinerary = make_itinerary(self.config.itinerary, home=self.home)
        self.stream = marp.deployment.streams.stream(f"agent.{agent_id}")
        self._finished = False
        #: the live claim-round deadline (an env.timeout event), if any
        self._deadline = None
        self._deadline_kind: Optional[str] = None

        # Observability: resolve the deployment's hub once; every record
        # below is guarded by a single `is not None` check, so a run
        # without a hub pays nothing.
        obs = marp.deployment.obs
        self._obs = obs
        self._span_request = None
        self._span_lockwait = None
        self._span_claim = None
        if obs is not None:
            self._m_requests = obs.counter(
                "marp_requests_total", "update requests finished",
                ("status",),
            )
            self._m_claims = obs.counter(
                "marp_claims_total", "claim rounds", ("outcome",)
            )
            self._m_migrations = obs.counter(
                "marp_migrations_total", "agent migrations", ("outcome",)
            )
            self._m_parks = obs.counter(
                "marp_parks_total", "agents parked awaiting release",
                ("host",),
            )
            self._m_alt = obs.histogram(
                "marp_alt_ms", "per-request lock time (the paper's ALT)"
            )
            self._m_att = obs.histogram(
                "marp_att_ms", "per-request total time (the paper's ATT)",
                ("status",),
            )
            self._m_visits = obs.histogram(
                "marp_visits_to_lock",
                "distinct servers visited to win the lock",
                buckets=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20),
            )

    # -- carried protocol state, exposed for tests/analysis ------------------

    @property
    def table(self) -> LockingTable:
        return self.core.table

    @property
    def visited(self):
        return self.core.visited

    @property
    def tour_remaining(self):
        return self.core.tour_remaining

    @property
    def unavailable(self):
        return self.core.unavailable

    @property
    def visit_events(self) -> int:
        return self.core.visit_events

    @property
    def park_count(self) -> int:
        return self.core.park_count

    @property
    def claim_epoch(self) -> int:
        return self.core.epoch

    @property
    def failed_claims(self) -> int:
        return self.core.failed_claims

    # -- carried state (sizes migrations) ------------------------------------

    def state(self) -> Dict[str, Any]:
        return {
            "agent_id": self.agent_id,
            "requests": [
                (r.request_id, r.key, r.value) for r in self.records
            ],
            "unvisited": sorted(self.core.tour_remaining),
            "table": self.core.table,  # has wire_size()
        }

    # -- tracing ----------------------------------------------------------------

    def _trace(self, kind: str, host: Optional[str] = None,
               detail: str = "") -> None:
        trace = self.marp.deployment.trace
        if trace is not None:
            trace.record(
                self.marp.env.now, kind,
                host=host if host is not None else self.location,
                agent=str(self.agent_id), request_id=self.batch_id,
                detail=detail,
            )

    # -- the interpretation loop ---------------------------------------------

    def behavior(self):
        env = self.platform.env
        now = env.now
        for record in self.records:
            record.dispatched_at = now
            record.agent_id = str(self.agent_id)
        self._trace("dispatch", detail=f"{len(self.records)} request(s)")
        # The causal trace context travels in the kernel state (and so in
        # every payload the machine emits), whether or not a hub records.
        self.core.trace_id = str(self.agent_id)
        if self._obs is not None:
            self._span_request = self._obs.start_span(
                "request", start=now, agent=str(self.agent_id),
                host=self.home, batch_id=self.batch_id, protocol="marp",
                trace_id=self.core.trace_id, backend="des",
            )
            self.core.trace_root = self._span_request.span_id
            self._span_lockwait = self._obs.start_span(
                "lock-wait", parent=self._span_request, start=now,
                agent=str(self.agent_id), trace_id=self.core.trace_id,
            )

        self.core.tour_remaining = (
            set(self.marp.deployment.hosts) - {self.home}
        )

        # The creating server is the first visit (no migration needed).
        queue = deque((yield from self._visit_current()))
        while not self._finished:
            if not queue:
                # The batch left the machine blocked on claim replies.
                queue.extend((yield from self._await_reply()))
                continue
            queue.extend((yield from self._perform(queue.popleft())))

    def _perform(self, effect):
        """Perform one effect; returns the follow-up batch (usually [])."""
        env = self.platform.env
        if isinstance(effect, Note):
            self._trace(effect.kind, host=effect.host, detail=effect.detail)
        elif isinstance(effect, PostBulletin):
            self.platform.service("replica").post_bulletin(effect.views)
        elif isinstance(effect, Migrate):
            return (yield from self._migrate_step(effect.candidates))
        elif isinstance(effect, Visit):
            return (yield from self._visit_current())
        elif isinstance(effect, Park):
            return (yield from self._park(effect.timeout))
        elif isinstance(effect, Backoff):
            return (yield from self._backoff(effect.mean))
        elif isinstance(effect, LockWon):
            self._on_lock_won(effect)
        elif isinstance(effect, ClaimStarted):
            if self._obs is not None:
                self._span_claim = self._obs.start_span(
                    "claim", parent=self._span_request, start=env.now,
                    agent=str(self.agent_id), epoch=effect.epoch,
                    trace_id=self.core.trace_id,
                )
        elif isinstance(effect, ClaimResolved):
            if self._obs is not None and self._span_claim is not None:
                self._span_claim.finish(end=env.now, status=effect.outcome)
                self._m_claims.inc(outcome=effect.outcome)
                self._span_claim = None
            if effect.outcome != "committed":
                self._trace(
                    "claim-failed",
                    detail=f"epoch {effect.epoch} ({effect.outcome})",
                )
        elif isinstance(effect, Broadcast):
            self.platform.endpoint.broadcast(
                effect.kind, effect.payload, include_self=True
            )
        elif isinstance(effect, Send):
            self.platform.endpoint.send(
                effect.dst, effect.kind, payload=effect.payload
            )
        elif isinstance(effect, SetTimer):
            self._deadline = env.timeout(effect.delay)
            self._deadline_kind = effect.kind
        elif isinstance(effect, CancelTimer):
            if self._deadline_kind == effect.kind:
                self._deadline = None
                self._deadline_kind = None
        elif isinstance(effect, Dispose):
            self._on_dispose(effect)
        return []

    # -- visiting -----------------------------------------------------------------

    def _visit_current(self):
        """Interact with the co-located replica server (one 'visit')."""
        env = self.platform.env
        server: ReplicaServer = self.platform.service("replica")
        if server.config.agent_service_time > 0:
            yield env.timeout(server.config.agent_service_time)
        data = server.begin_visit(
            self.agent_id, self.batch_id,
            acked=self.core.table.acked_seq(server.host),
        )
        return self.machine.on(
            Arrived(
                host=server.host, now=env.now, view=data.view,
                bulletin=data.bulletin, rank=data.rank, ll_len=data.ll_len,
            )
        )

    # -- movement -------------------------------------------------------------

    def _migrate_step(self, candidates):
        env = self.platform.env
        dst = self.itinerary.next_host(
            self.location, candidates, self.marp.deployment.topology,
            self.stream,
        )
        self._trace("migrate", detail=f"-> {dst}")
        hop_span = None
        if self._obs is not None:
            hop_span = self._obs.start_span(
                "migrate", parent=self._span_request, start=env.now,
                agent=str(self.agent_id), src=self.location, dst=dst,
                trace_id=self.core.trace_id,
            )
        try:
            yield from self.migrate(dst)
        except ReplicaUnavailable:
            if hop_span is not None:
                hop_span.finish(end=env.now, status="unavailable")
                self._m_migrations.inc(outcome="unavailable")
            return self.machine.on(ReplicaDown(dst, env.now))
        if hop_span is not None:
            hop_span.finish(end=env.now)
            self._m_migrations.inc(outcome="ok")
        self._trace("arrive")
        return (yield from self._visit_current())

    def _park(self, timeout: float):
        """Park at the current server until a release or a timeout ([D2])."""
        env = self.platform.env
        park_span = None
        if self._obs is not None:
            self._m_parks.inc(host=self.location)
            park_span = self._obs.start_span(
                "park", parent=self._span_request, start=env.now,
                agent=str(self.agent_id), host=self.location,
                trace_id=self.core.trace_id,
            )
        server: ReplicaServer = self.platform.service("replica")
        release = server.wait_release()
        yield release | env.timeout(timeout)
        if park_span is not None:
            park_span.finish(end=env.now)
        self._trace("wake")
        return (yield from self._visit_current())

    def _backoff(self, mean: float):
        """Randomized wait before re-entering the acquisition loop."""
        env = self.platform.env
        if self._obs is not None:
            # The lock has to be re-acquired: open a fresh wait span.
            self._span_lockwait = self._obs.start_span(
                "lock-wait", parent=self._span_request, start=env.now,
                agent=str(self.agent_id), trace_id=self.core.trace_id,
            )
        if mean > 0:
            yield env.timeout(self.stream.exponential(mean))
        return self.machine.on(TimerFired("backoff", env.now))

    # -- the claim round (UPDATE / ACK / COMMIT) ------------------------------------

    def _await_reply(self):
        """Block on the next claim-round reply or the pending deadline."""
        env = self.platform.env
        endpoint = self.platform.endpoint
        awaiting = self.machine.awaiting
        if awaiting == "acks":
            epoch = self.core.epoch
            reply = endpoint.receive(
                match=lambda m: (
                    m.kind in ("ACK", "NACK")
                    and m.payload["batch_id"] == self.batch_id
                    and m.payload["epoch"] == epoch
                ),
            )
        elif awaiting == "fetch":
            fetch_id = (self.batch_id, self.core.epoch, self.core.fetch_key)
            reply = endpoint.receive(
                kind="READR",
                match=lambda m: m.payload["request_id"] == fetch_id,
            )
        else:  # pragma: no cover - kernel contract violation
            raise ProtocolError(
                f"agent machine stalled (awaiting={awaiting!r})"
            )
        yield reply | self._deadline
        if not reply.processed:
            # The deadline fired; withdraw the pending receive so it
            # cannot swallow a message meant for a later epoch check.
            if not reply.triggered:
                reply.succeed(None)
            fired, self._deadline = self._deadline_kind, None
            self._deadline_kind = None
            return self.machine.on(TimerFired(fired, env.now))
        msg = reply.value
        return self.machine.on(
            MsgReceived(msg.kind, msg.payload, env.now, src=msg.src)
        )

    # -- completion -----------------------------------------------------------

    def _on_lock_won(self, effect: LockWon) -> None:
        """Record ALT inputs (overwritten if the claim round fails and
        the lock has to be re-acquired)."""
        now = self.platform.env.now
        self._trace(
            "lock-won",
            detail=f"{effect.reason} after {effect.visit_events} visits",
        )
        for record in self.records:
            record.lock_acquired_at = now
            record.visits_to_lock = effect.visits
            record.extra["visit_events_to_lock"] = effect.visit_events
            record.extra["win_reason"] = effect.reason
            record.extra["parks"] = effect.parks
        if self._obs is not None and self._span_lockwait is not None:
            self._span_lockwait.finish(
                end=now, visits=effect.visit_events, reason=effect.reason,
            )
            self._span_lockwait = None
            self._m_visits.observe(effect.visits)

    def _on_dispose(self, effect: Dispose) -> None:
        # RMW records report the final (transformed) value.
        by_id = {w.request_id: w for w in effect.writes}
        for record in self.records:
            write = by_id.get(record.request_id)
            if write is not None:
                record.value = write.value
        self._finish(effect.status)

    def _finish(self, status: str) -> None:
        self._finished = True
        now = self.platform.env.now
        for record in self.records:
            record.completed_at = now
            record.total_visits = self.core.visit_events
            record.extra["failed_claims"] = self.core.failed_claims
            record.status = status
        if self._obs is not None:
            if self._span_lockwait is not None:
                self._span_lockwait.finish(end=now, status=status)
                self._span_lockwait = None
            if self._span_request is not None:
                self._span_request.finish(end=now, status=status)
            self._m_requests.inc(len(self.records), status=status)
            for record in self.records:
                if record.total_time is not None:
                    self._m_att.observe(record.total_time, status=status)
                if status == "committed" and record.lock_time is not None:
                    self._m_alt.observe(record.lock_time)
        self.dispose()
