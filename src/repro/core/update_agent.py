"""The update mobile agent — the paper's Algorithm 1.

One agent carries one batch of update requests (the Request List; batch
size 1 reproduces the evaluated setting). Its life, written "from the
point of view of the navigating mobile agent":

1. Visit the home server, then tour the cheapest unvisited servers
   (cost-sorted USL). At every server: pay the service time, append to
   the Locking List, merge the server's fresh lock view and bulletin
   board into the Locking Table, and leave its own knowledge behind.
2. After each visit evaluate :func:`~repro.core.priority.decide`:
   top-ranked at a majority of servers — or designated by the identifier
   tie-break when no majority can form — means the agent holds the
   distributed lock. When the tour is exhausted without a result, park
   at the current server until a lock release (or a timeout) and then
   refresh ([D2]).
3. Holding the lock, run the *claim round*: broadcast UPDATE to all
   replicas, collect > N/2 acknowledgements, assign versions above
   everything the ACKs and the Locking Table report committed ([D3]),
   broadcast COMMIT, and dispose.

The claim round is also the safety net for the tie-break path: an ACK is
an exclusive server-side *grant* (released when the COMMIT is processed),
so even if two agents were to claim concurrently off stale tables, at
most one can assemble a majority of grants — mutual exclusion never rests
on the freshness of the Locking Table. A failed claim releases its grants
and the agent resumes touring after a randomized back-off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set

from repro.errors import ReplicaUnavailable
from repro.agents.agent import MobileAgent
from repro.agents.identity import AgentId
from repro.agents.itinerary import make_itinerary
from repro.core.locking_table import LockingTable
from repro.core.priority import OTHER, STALEMATE, WIN, Decision, decide
from repro.replication.server import ReplicaServer, UpdatePayload, WriteOp
from repro.replication.requests import RequestRecord, Transform


class _FetchFailed:
    """Sentinel: the RMW base-value fetch timed out."""

    __slots__ = ()


_FETCH_FAILED = _FetchFailed()

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.protocol import MARP

__all__ = ["UpdateAgent"]


class UpdateAgent(MobileAgent):
    """Carries a batch of update requests to a majority consensus."""

    def __init__(
        self,
        agent_id: AgentId,
        marp: "MARP",
        records: List[RequestRecord],
    ) -> None:
        if not records:
            raise ValueError("an update agent needs at least one request")
        super().__init__(agent_id)
        self.marp = marp
        self.config = marp.config
        self.records = list(records)
        self.batch_id = self.records[0].request_id
        self.table = LockingTable()
        self.visited: Set[str] = set()
        self.tour_remaining: Set[str] = set()
        self.unavailable: Set[str] = set()
        self.visit_events = 0
        self.park_count = 0
        self.claim_epoch = 0
        self.failed_claims = 0
        self.itinerary = make_itinerary(self.config.itinerary, home=self.home)
        self.stream = marp.deployment.streams.stream(f"agent.{agent_id}")

        # Observability: resolve the deployment's hub once; every record
        # below is guarded by a single `is not None` check, so a run
        # without a hub pays nothing.
        obs = marp.deployment.obs
        self._obs = obs
        self._span_request = None
        self._span_lockwait = None
        if obs is not None:
            self._m_requests = obs.counter(
                "marp_requests_total", "update requests finished",
                ("status",),
            )
            self._m_claims = obs.counter(
                "marp_claims_total", "claim rounds", ("outcome",)
            )
            self._m_migrations = obs.counter(
                "marp_migrations_total", "agent migrations", ("outcome",)
            )
            self._m_parks = obs.counter(
                "marp_parks_total", "agents parked awaiting release",
                ("host",),
            )
            self._m_alt = obs.histogram(
                "marp_alt_ms", "per-request lock time (the paper's ALT)"
            )
            self._m_att = obs.histogram(
                "marp_att_ms", "per-request total time (the paper's ATT)",
                ("status",),
            )
            self._m_visits = obs.histogram(
                "marp_visits_to_lock",
                "distinct servers visited to win the lock",
                buckets=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20),
            )

    # -- carried state (sizes migrations) ------------------------------------

    def state(self) -> Dict[str, Any]:
        return {
            "agent_id": self.agent_id,
            "requests": [
                (r.request_id, r.key, r.value) for r in self.records
            ],
            "unvisited": sorted(self.tour_remaining),
            "table": self.table,  # has wire_size()
        }

    # -- tracing ----------------------------------------------------------------

    def _trace(self, kind: str, host: Optional[str] = None,
               detail: str = "") -> None:
        trace = self.marp.deployment.trace
        if trace is not None:
            trace.record(
                self.marp.env.now, kind,
                host=host if host is not None else self.location,
                agent=str(self.agent_id), request_id=self.batch_id,
                detail=detail,
            )

    # -- Algorithm 1 -----------------------------------------------------------

    def behavior(self):
        env = self.platform.env
        now = env.now
        for record in self.records:
            record.dispatched_at = now
            record.agent_id = str(self.agent_id)
        self._trace("dispatch", detail=f"{len(self.records)} request(s)")
        if self._obs is not None:
            self._span_request = self._obs.start_span(
                "request", start=now, agent=str(self.agent_id),
                host=self.home, batch_id=self.batch_id, protocol="marp",
            )
            self._span_lockwait = self._obs.start_span(
                "lock-wait", parent=self._span_request, start=now,
                agent=str(self.agent_id),
            )

        hosts = self.marp.deployment.hosts
        self.tour_remaining = set(hosts) - {self.home}

        # The creating server is the first visit (no migration needed).
        yield from self._visit_current()

        while True:
            decision = self._decide()
            if not self._holds_lock(decision):
                yield from self._advance(decision)
                continue

            # Lock acquired: record ALT inputs (overwritten if the claim
            # round fails and the lock has to be re-acquired).
            self._trace(
                "lock-won",
                detail=f"{decision.reason} after {self.visit_events} visits",
            )
            now = env.now
            for record in self.records:
                record.lock_acquired_at = now
                record.visits_to_lock = len(self.visited)
                record.extra["visit_events_to_lock"] = self.visit_events
                record.extra["win_reason"] = decision.reason
                record.extra["parks"] = self.park_count
            if self._obs is not None and self._span_lockwait is not None:
                self._span_lockwait.finish(
                    end=now, visits=self.visit_events,
                    reason=decision.reason,
                )
                self._span_lockwait = None
                self._m_visits.observe(len(self.visited))

            outcome = yield from self._claim_round(decision)
            if outcome == "committed":
                self._finish("committed")
                return

            self._trace("claim-failed",
                        detail=f"epoch {self.claim_epoch} ({outcome})")
            if outcome == "conflict":
                # Another claimer holds grants: genuine contention counts
                # toward the abort budget.
                self.failed_claims += 1
                if self.failed_claims >= self.config.max_claims:
                    self._broadcast("ABORT")
                    self._trace(
                        "abort",
                        detail=f"{self.failed_claims} failed claims",
                    )
                    self._finish("failed")
                    return
                backoff_mean = self.config.claim_backoff
            else:
                # Timeout with no NACKs: too few replicas are reachable
                # to assemble a majority (e.g. mid-outage). Quorum
                # semantics require stalling, not aborting — wait longer
                # and retry when the cluster may have healed.
                backoff_mean = max(
                    4 * self.config.claim_backoff, self.config.park_timeout
                )
            if self._obs is not None:
                # The lock has to be re-acquired: open a fresh wait span.
                self._span_lockwait = self._obs.start_span(
                    "lock-wait", parent=self._span_request, start=env.now,
                    agent=str(self.agent_id),
                )
            if backoff_mean > 0:
                yield env.timeout(self.stream.exponential(backoff_mean))
            yield from self._visit_current()

    def _finish(self, status: str) -> None:
        now = self.platform.env.now
        for record in self.records:
            record.completed_at = now
            record.total_visits = self.visit_events
            record.extra["failed_claims"] = self.failed_claims
            record.status = status
        if self._obs is not None:
            if self._span_lockwait is not None:
                self._span_lockwait.finish(end=now, status=status)
                self._span_lockwait = None
            if self._span_request is not None:
                self._span_request.finish(end=now, status=status)
            self._m_requests.inc(len(self.records), status=status)
            for record in self.records:
                if record.total_time is not None:
                    self._m_att.observe(record.total_time, status=status)
                if status == "committed" and record.lock_time is not None:
                    self._m_alt.observe(record.lock_time)
        self.dispose()

    def _holds_lock(self, decision: Decision) -> bool:
        """Paper rule: majority of top-ranks, or the identifier tie-break."""
        if decision.outcome == WIN:
            return True
        return (
            decision.outcome == STALEMATE
            and decision.winner == self.agent_id
        )

    # -- movement -------------------------------------------------------------

    def _advance(self, decision: Decision):
        """One step of the acquisition loop: tour, or park and refresh."""
        env = self.platform.env
        candidates = self.tour_remaining - self.unavailable
        if candidates:
            dst = self.itinerary.next_host(
                self.location, candidates, self.marp.deployment.topology,
                self.stream,
            )
            self._trace("migrate", detail=f"-> {dst}")
            hop_span = None
            if self._obs is not None:
                hop_span = self._obs.start_span(
                    "migrate", parent=self._span_request, start=env.now,
                    agent=str(self.agent_id), src=self.location, dst=dst,
                )
            try:
                yield from self.migrate(dst)
            except ReplicaUnavailable:
                # Paper §2: give up on this replica until the next round.
                self.unavailable.add(dst)
                if hop_span is not None:
                    hop_span.finish(end=env.now, status="unavailable")
                    self._m_migrations.inc(outcome="unavailable")
                self._trace("unavailable", host=dst)
                return
            if hop_span is not None:
                hop_span.finish(end=env.now)
                self._m_migrations.inc(outcome="ok")
            self._trace("arrive")
            yield from self._visit_current()
            return

        # Tour exhausted without a result: park at the current server
        # until a lock release here, or the park timeout ([D2]).
        self.park_count += 1
        self._trace("park")
        park_span = None
        if self._obs is not None:
            self._m_parks.inc(host=self.location)
            park_span = self._obs.start_span(
                "park", parent=self._span_request, start=env.now,
                agent=str(self.agent_id), host=self.location,
            )
        server: ReplicaServer = self.platform.service("replica")
        release = server.wait_release()
        yield release | env.timeout(self.config.park_timeout)
        if park_span is not None:
            park_span.finish(end=env.now)
        self._trace("wake")
        yield from self._visit_current()

        refreshed = self._decide()
        if refreshed.outcome == OTHER or self._holds_lock(refreshed):
            # Either done, or a known winner is in its update round; its
            # COMMIT will wake us here. No need to tour.
            return
        # Still unclear: start a refresh tour over all other servers;
        # previously unavailable replicas get another chance in the new
        # round.
        self.unavailable.clear()
        self.tour_remaining = (
            set(self.marp.deployment.hosts) - {self.location}
        )

    # -- visiting -----------------------------------------------------------------

    def _visit_current(self):
        """Interact with the co-located replica server (one 'visit')."""
        env = self.platform.env
        server: ReplicaServer = self.platform.service("replica")
        if server.config.agent_service_time > 0:
            yield env.timeout(server.config.agent_service_time)

        if (
            self.agent_id not in server.updated_list
            and self.agent_id not in server.locking_list
        ):
            server.request_lock(self.agent_id, self.batch_id)

        self.table.update(server.lock_view())
        self.table.merge_bulletin(server.read_bulletin())
        server.post_bulletin(self.table.shareable_views(server.host))

        self.visited.add(server.host)
        self.visit_events += 1
        self.tour_remaining.discard(server.host)
        self._trace(
            "visit",
            detail=(
                f"rank {server.locking_list.rank(self.agent_id)} of "
                f"{len(server.locking_list)}"
            ),
        )

    def _decide(self) -> Decision:
        return decide(
            self.table,
            self.marp.deployment.n_replicas,
            self.agent_id,
            votes=self.marp.votes,
            unavailable=frozenset(self.unavailable),
        )

    # -- the claim round (UPDATE / ACK / COMMIT) ------------------------------------

    def _broadcast(self, kind: str, writes=()) -> UpdatePayload:
        payload = UpdatePayload(
            batch_id=self.batch_id,
            agent_id=self.agent_id,
            origin=self.home,
            writes=tuple(writes),
            reply_to=self.location,
            epoch=self.claim_epoch,
        )
        self.platform.endpoint.broadcast(kind, payload, include_self=True)
        return payload

    def _claim_round(self, decision: Decision):
        """Broadcast UPDATE, gather a majority of grants, COMMIT.

        Returns ``"committed"`` on success. On failure it broadcasts
        RELEASE (keeping the agent's lock entries) and returns
        ``"conflict"`` when another claimer NACKed us, or ``"timeout"``
        when too few replicas answered at all — the caller treats the
        two very differently (back off vs. stall for recovery).
        """
        env = self.platform.env
        endpoint = self.platform.endpoint
        majority = self.marp.vote_majority
        total_votes = self.marp.total_votes
        vote_of = self.marp.vote_of

        self.claim_epoch += 1
        epoch = self.claim_epoch
        claim_span = None
        if self._obs is not None:
            claim_span = self._obs.start_span(
                "claim", parent=self._span_request, start=env.now,
                agent=str(self.agent_id), epoch=epoch,
            )

        def _outcome(outcome: str) -> str:
            if claim_span is not None:
                claim_span.finish(end=env.now, status=outcome)
                self._m_claims.inc(outcome=outcome)
            return outcome

        self._trace("claim", detail=f"epoch {epoch}")
        self._broadcast("UPDATE")

        acked_versions: Dict[str, Dict[str, int]] = {}
        acked_votes = 0
        nack_votes = 0
        deadline = env.timeout(self.config.ack_timeout)
        while acked_votes < majority:
            reply = endpoint.receive(
                match=lambda m: (
                    m.kind in ("ACK", "NACK")
                    and m.payload["batch_id"] == self.batch_id
                    and m.payload["epoch"] == epoch
                ),
            )
            yield reply | deadline
            if not reply.processed:
                # Claim timed out; withdraw the pending receive so it
                # cannot swallow a message meant for a later epoch check.
                if not reply.triggered:
                    reply.succeed(None)
                break
            msg = reply.value
            sender = msg.payload["from"]
            if msg.kind == "ACK":
                if sender not in acked_versions:
                    acked_versions[sender] = msg.payload["versions"]
                    acked_votes += vote_of(sender)
            else:
                nack_votes += vote_of(sender)
                # Early exit when a majority is provably out of reach.
                if total_votes - nack_votes < majority:
                    break

        if acked_votes >= majority:
            base_values = yield from self._resolve_transforms(acked_versions)
            if base_values is _FETCH_FAILED:
                self._broadcast("RELEASE")
                return _outcome("timeout")
            writes = self._assign_versions(
                decision, acked_versions, base_values
            )
            self._broadcast("COMMIT", writes=writes)
            self._trace(
                "commit",
                detail=", ".join(f"{w.key}=v{w.version}" for w in writes),
            )
            return _outcome("committed")

        self._broadcast("RELEASE")
        return _outcome("conflict" if nack_votes > 0 else "timeout")

    def _resolve_transforms(self, acked_versions):
        """Fetch the freshest committed value for every RMW key.

        The source replica is the acknowledger reporting the highest
        version for the key — it holds "the most recent copy" the quorum
        knows. Returns ``{key: base_value}`` (or :data:`_FETCH_FAILED`
        when a fetch times out, which fails the claim).
        """
        env = self.platform.env
        endpoint = self.platform.endpoint
        rmw_keys = {
            record.key
            for record in self.records
            if isinstance(record.value, Transform)
        }
        base_values: Dict[str, Any] = {}
        for key in sorted(rmw_keys):
            best_host, best_version = None, 0
            for host, versions in acked_versions.items():
                if versions.get(key, 0) >= best_version:
                    best_host, best_version = host, versions.get(key, 0)
            if best_version == 0:
                base_values[key] = None  # never written
                continue
            fetch_id = (self.batch_id, self.claim_epoch, key)
            endpoint.send(
                best_host, "READQ",
                payload={"request_id": fetch_id, "key": key},
            )
            reply = endpoint.receive(
                kind="READR",
                match=lambda m: m.payload["request_id"] == fetch_id,
            )
            yield reply | env.timeout(self.config.ack_timeout)
            if not reply.processed:
                if not reply.triggered:
                    reply.succeed(None)
                return _FETCH_FAILED
            base_values[key] = reply.value.payload["value"]
        return base_values

    def _assign_versions(
        self,
        decision: Decision,
        acked_versions: Dict[str, Dict[str, int]],
        base_values: Dict[str, Any],
    ):
        """[D3]: next versions above everything known committed.

        The ceiling folds (a) the Locking Table's monotone committed-max
        and (b) the version vectors reported in this claim's ACKs. Any
        previous winner's grant at an ACKing server was released by the
        processing of its COMMIT, so the ACK quorum always reports every
        previously committed version — the ceiling is collision-free.

        RMW requests chain: within a batch, each Transform sees the
        value produced by the previous write to the same key.
        """
        next_version: Dict[str, int] = {}
        current_value: Dict[str, Any] = dict(base_values)
        writes = []
        for record in self.records:
            key = record.key
            if key not in next_version:
                ceiling = self.table.version_ceiling(
                    key, decision.quorum_hosts
                )
                for versions in acked_versions.values():
                    ceiling = max(ceiling, versions.get(key, 0))
                next_version[key] = ceiling + 1
            if isinstance(record.value, Transform):
                value = record.value(current_value.get(key))
                record.value = value  # the record reports the final value
            else:
                value = record.value
            current_value[key] = value
            writes.append(
                WriteOp(
                    request_id=record.request_id,
                    key=key,
                    value=value,
                    version=next_version[key],
                )
            )
            next_version[key] += 1
        return tuple(writes)
