"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by the library derives from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "StopSimulation",
    "NetworkError",
    "LinkDown",
    "HostUnreachable",
    "AgentError",
    "MigrationError",
    "AgentDisposed",
    "ReplicationError",
    "ReplicaUnavailable",
    "ConsistencyViolation",
    "ProtocolError",
    "WorkloadError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly or reached an
    inconsistent state (e.g. yielding a non-event from a process)."""


class StopSimulation(Exception):
    """Internal control-flow signal that ends :meth:`Environment.run`.

    Deliberately *not* a :class:`ReproError`: it must never be swallowed
    by user code catching library errors.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class NetworkError(ReproError):
    """Base class for network-substrate failures."""


class LinkDown(NetworkError):
    """A message or migration was dropped because the link is faulted."""


class HostUnreachable(NetworkError):
    """No route exists between two hosts (partition or crashed node)."""


class AgentError(ReproError):
    """Base class for mobile-agent platform failures."""


class MigrationError(AgentError):
    """An agent migration failed (timeout, link down, or dead host)."""

    def __init__(self, message: str, destination=None, attempts: int = 1):
        super().__init__(message)
        self.destination = destination
        self.attempts = attempts


class AgentDisposed(AgentError):
    """An operation was attempted on an agent that has been disposed."""


class ReplicationError(ReproError):
    """Base class for replication-layer failures."""


class ReplicaUnavailable(ReplicationError):
    """A replica was declared unavailable after repeated failed attempts."""

    def __init__(self, message: str, replica=None):
        super().__init__(message)
        self.replica = replica


class ConsistencyViolation(ReplicationError):
    """A post-run audit detected divergent replica state or history."""


class ProtocolError(ReplicationError):
    """A protocol implementation violated its own state machine."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class ExperimentError(ReproError):
    """Invalid experiment configuration or failed run."""
