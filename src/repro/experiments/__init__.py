"""Experiment harness: one module per paper figure/table + ablations."""

from repro.experiments.ablations import (
    AblationTable,
    Theorem3Report,
    run_batching_ablation,
    run_bulletin_ablation,
    run_itinerary_ablation,
    theorem3_bounds,
)
from repro.experiments.availability import AvailabilityTable, run_availability
from repro.experiments.common import (
    DEFAULT_INTERARRIVALS,
    DEFAULT_SERVER_COUNTS,
    FigureData,
    latency_sweep,
)
from repro.experiments.cache import (
    ResultCache,
    config_key,
    result_fingerprint,
)
from repro.experiments.parallel import (
    ParallelRunner,
    get_default_runner,
    set_default_runner,
)
from repro.experiments.scalability import ScalabilityTable, run_scalability
from repro.experiments.scale import (
    ScaleCurve,
    ScaleFamily,
    ScalePoint,
    ScaleVariant,
    default_variants,
    run_scale,
)
from repro.experiments.throughput import ThroughputTable, run_throughput
from repro.experiments.fig2_alt import project_fig2, run_fig2
from repro.experiments.fig3_att import project_fig3, run_fig3
from repro.experiments.fig4_prk import run_fig4
from repro.experiments.runner import (
    RunConfig,
    RunResult,
    build_protocol,
    repeat_configs,
    repeat_seeds,
    run_once,
    run_repeats,
)
from repro.experiments.sweeps import SweepPoint, sweep
from repro.experiments.table_comparison import (
    ComparisonRow,
    ComparisonTable,
    run_comparison,
)

__all__ = [
    "RunConfig",
    "RunResult",
    "run_once",
    "run_repeats",
    "repeat_seeds",
    "repeat_configs",
    "build_protocol",
    "ParallelRunner",
    "ResultCache",
    "config_key",
    "result_fingerprint",
    "get_default_runner",
    "set_default_runner",
    "sweep",
    "SweepPoint",
    "FigureData",
    "latency_sweep",
    "DEFAULT_INTERARRIVALS",
    "DEFAULT_SERVER_COUNTS",
    "run_fig2",
    "project_fig2",
    "run_fig3",
    "project_fig3",
    "run_fig4",
    "run_comparison",
    "ComparisonTable",
    "ComparisonRow",
    "theorem3_bounds",
    "Theorem3Report",
    "run_itinerary_ablation",
    "run_bulletin_ablation",
    "run_batching_ablation",
    "AblationTable",
    "run_scalability",
    "ScalabilityTable",
    "run_scale",
    "default_variants",
    "ScaleFamily",
    "ScaleCurve",
    "ScalePoint",
    "ScaleVariant",
    "run_availability",
    "AvailabilityTable",
    "run_throughput",
    "ThroughputTable",
]
