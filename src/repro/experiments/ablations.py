"""Ablations and theorem validation (T3, A1, A2, A3 in DESIGN.md).

* **T3** — Theorem 3 bounds: in any round the winning agent learns the
  result after between ⌈(N+1)/2⌉ and N *distinct* server visits.
* **A1** — itinerary strategy: the paper's cost-sorted USL vs static,
  initial-sort and random orders, on a topology with non-uniform costs.
* **A2** — information sharing (bulletin boards, §3.1) on/off: sharing
  should reduce the visits needed to determine the lock holder.
* **A3** — batching (§3.2): requests per agent vs per-request overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.analysis.metrics import visit_counts
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.parallel import get_default_runner
from repro.experiments.runner import RunConfig, RunResult, run_repeats

__all__ = [
    "theorem3_bounds",
    "Theorem3Report",
    "run_itinerary_ablation",
    "run_bulletin_ablation",
    "run_batching_ablation",
    "AblationTable",
]


@dataclass
class Theorem3Report:
    """Observed visit bounds versus Theorem 3's guarantees."""

    n_replicas: int
    lower_bound: int
    upper_bound: int
    observed_min: int
    observed_max: int
    commits: int

    @property
    def holds(self) -> bool:
        return (
            self.observed_min >= self.lower_bound
            and self.observed_max <= self.upper_bound
        )

    @property
    def text(self) -> str:
        return (
            f"Theorem 3 (N={self.n_replicas}): visits in "
            f"[{self.lower_bound}, {self.upper_bound}]; observed "
            f"[{self.observed_min}, {self.observed_max}] over "
            f"{self.commits} commits -> {'HOLDS' if self.holds else 'VIOLATED'}"
        )


def theorem3_bounds(
    n_replicas: int = 5,
    mean_interarrival: float = 25.0,
    requests_per_client: int = 20,
    repeats: int = 3,
    seed: int = 0,
    runner=None,
) -> Theorem3Report:
    """Measure the distinct-visit bounds of winning agents."""
    config = RunConfig(
        n_replicas=n_replicas,
        mean_interarrival=mean_interarrival,
        requests_per_client=requests_per_client,
        seed=seed,
    )
    results = run_repeats(config, repeats, runner=runner)
    counts = np.concatenate(
        [visit_counts(r.records) for r in results]
    )
    return Theorem3Report(
        n_replicas=n_replicas,
        lower_bound=n_replicas // 2 + 1,
        upper_bound=n_replicas,
        observed_min=int(counts.min()) if counts.size else 0,
        observed_max=int(counts.max()) if counts.size else 0,
        commits=int(counts.size),
    )


@dataclass
class AblationTable:
    """Generic variant-per-row ablation result."""

    title: str
    headers: List[str]
    rows: List[List] = field(default_factory=list)

    @property
    def text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def column(self, variant, header: str):
        index = self.headers.index(header)
        for row in self.rows:
            if row[0] == variant:
                return row[index]
        raise KeyError(f"no row for variant {variant!r}")


def _aggregate(results: List[RunResult]):
    return {
        "committed": summarize([float(r.committed) for r in results]).mean,
        "alt": summarize([r.alt for r in results]).mean,
        "att": summarize([r.att for r in results]).mean,
        "hops": summarize(
            [float(r.agent_migrations) for r in results]
        ).mean,
        "msgs": summarize(
            [float(r.control_messages) for r in results]
        ).mean,
        "consistent": all(r.audit.consistent for r in results),
    }


def _variant_table(
    title: str,
    base: RunConfig,
    param: str,
    variants: Sequence,
    repeats: int,
    runner=None,
) -> AblationTable:
    runner = runner if runner is not None else get_default_runner()
    table = AblationTable(
        title=title,
        headers=[param, "committed", "ALT(ms)", "ATT(ms)", "agent hops",
                 "ctl msgs", "consistent"],
    )
    grouped = runner.run_repeats_many(
        [base.with_(**{param: variant}) for variant in variants], repeats
    )
    for variant, results in zip(variants, grouped):
        agg = _aggregate(results)
        table.rows.append(
            [
                variant, agg["committed"], agg["alt"], agg["att"],
                agg["hops"], agg["msgs"], agg["consistent"],
            ]
        )
    return table


def run_itinerary_ablation(
    strategies: Sequence[str] = (
        "cost-sorted", "initial-cost-order", "static-order", "random-order",
    ),
    n_replicas: int = 5,
    mean_interarrival: float = 60.0,
    requests_per_client: int = 15,
    repeats: int = 2,
    seed: int = 0,
    runner=None,
) -> AblationTable:
    """A1: itinerary strategies on a random-cost topology."""
    base = RunConfig(
        n_replicas=n_replicas,
        mean_interarrival=mean_interarrival,
        requests_per_client=requests_per_client,
        topology="random-costs",
        seed=seed,
    )
    return _variant_table(
        "A1: itinerary strategy (random-cost topology)",
        base, "itinerary", strategies, repeats, runner=runner,
    )


def run_bulletin_ablation(
    n_replicas: int = 5,
    mean_interarrival: float = 30.0,
    requests_per_client: int = 15,
    repeats: int = 2,
    seed: int = 0,
    runner=None,
) -> AblationTable:
    """A2: information sharing via server bulletin boards on/off."""
    base = RunConfig(
        n_replicas=n_replicas,
        mean_interarrival=mean_interarrival,
        requests_per_client=requests_per_client,
        seed=seed,
    )
    return _variant_table(
        "A2: agent information sharing (bulletin boards)",
        base, "enable_bulletin", (True, False), repeats, runner=runner,
    )


def run_batching_ablation(
    batch_sizes: Sequence[int] = (1, 2, 4, 8),
    n_replicas: int = 5,
    mean_interarrival: float = 20.0,
    requests_per_client: int = 24,
    repeats: int = 2,
    seed: int = 0,
    runner=None,
) -> AblationTable:
    """A3: requests carried per agent."""
    base = RunConfig(
        n_replicas=n_replicas,
        mean_interarrival=mean_interarrival,
        requests_per_client=requests_per_client,
        seed=seed,
    )
    return _variant_table(
        "A3: request batching (requests per agent)",
        base, "batch_size", batch_sizes, repeats, runner=runner,
    )
