"""F1: availability under replica crashes (paper §1/§5, qualitative).

The paper motivates replication with availability ("if a single replica
fails, others still exist") and credits the agent approach with
"automatically tolerating transit faults". We crash a growing number of
replicas for the whole run and measure what fraction of updates still
commits, and at what latency, for MARP vs primary-copy (whose primary is
the first crash victim — the classic single-point-of-failure contrast).

Expected shape: MARP commits 100% while a majority is alive (crashed <
⌈N/2⌉), with latency rising as the live majority shrinks toward the
quorum size; it stalls only past the quorum bound. Primary-copy fails
everything as soon as the primary is among the crashed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.parallel import get_default_runner
from repro.experiments.runner import RunConfig
from repro.net.faults import CrashSchedule, FaultPlan

__all__ = ["AvailabilityTable", "run_availability"]


@dataclass
class AvailabilityTable:
    """Commit availability versus number of crashed replicas."""

    title: str
    headers: List[str] = field(default_factory=lambda: [
        "protocol", "crashed", "committed %", "ATT(ms)", "consistent",
    ])
    rows: List[List] = field(default_factory=list)

    @property
    def text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def availability(self, protocol: str) -> Dict[int, float]:
        return {row[1]: row[2] for row in self.rows if row[0] == protocol}


def run_availability(
    protocols: Sequence[str] = ("marp", "primary-copy"),
    crash_counts: Sequence[int] = (0, 1, 2, 3),
    n_replicas: int = 5,
    mean_interarrival: float = 150.0,
    requests_per_client: int = 6,
    repeats: int = 2,
    seed: int = 0,
    horizon: float = 300_000.0,
    runner=None,
) -> AvailabilityTable:
    """Crash the first ``k`` replicas for the entire run and measure."""
    runner = runner if runner is not None else get_default_runner()
    table = AvailabilityTable(
        title=f"F1: availability with k of {n_replicas} replicas down",
    )
    cells = []
    for protocol in protocols:
        for crashed in crash_counts:
            schedule = CrashSchedule()
            dead = tuple(f"s{index + 1}" for index in range(crashed))
            for host in dead:
                # never recovers within the horizon
                schedule.add(host, 0, horizon * 10)
            config = RunConfig(
                protocol=protocol,
                n_replicas=n_replicas,
                mean_interarrival=mean_interarrival,
                requests_per_client=requests_per_client,
                faults=FaultPlan(crashes=schedule),
                horizon=horizon,
                seed=seed,
                # The permanently crashed replicas cannot converge
                # within the horizon; audit the survivors. Declared in
                # the config so the survivor audit is computed inside
                # the run and travels through pool workers / the cache.
                audit_exclude=dead,
            )
            cells.append((protocol, crashed, dead, config))

    grouped = runner.run_repeats_many(
        [config for _, _, _, config in cells], repeats
    )
    total = float(n_replicas * requests_per_client)
    for (protocol, crashed, dead, _), results in zip(cells, grouped):
        committed = summarize(
            [float(r.committed) for r in results]
        ).mean
        consistent = all(
            r.audit_excluding(dead).consistent for r in results
        )
        table.rows.append([
            protocol,
            crashed,
            100.0 * committed / total,
            summarize([r.att for r in results]).mean,
            consistent,
        ])
    return table
