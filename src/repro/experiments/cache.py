"""On-disk result cache for the experiment engine.

A :class:`RunConfig` is hashed into a **content key**: a stable JSON
serialisation of every config field (including the nested
:class:`~repro.net.faults.FaultPlan` and the MARP knobs) combined with
the code version. Identical configs map to identical keys; changing any
field — or bumping the package version — changes the key, so stale
entries are never served. Because runs are bit-deterministic per seed
(the determinism suite enforces this), a cached :class:`RunResult` is
indistinguishable from a fresh run.

Entries are pickled :class:`RunResult` objects (deployment stripped)
wrapped in an integrity envelope; a corrupted or truncated entry is
treated as a miss with a warning, never a crash.

This module also defines the **result fingerprint**: a stable JSON
serialisation of everything a run measures (metrics, per-request
timelines, message/byte counts, audit verdicts, commit slots), with
process-global identifiers normalised out. Two runs are "the same run"
iff their fingerprints are byte-identical — the contract the
determinism and serial-vs-parallel equivalence tests pin down.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro._version import __version__
from repro.experiments.runner import RunConfig, RunResult

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "code_version",
    "config_key",
    "config_payload",
    "default_cache_dir",
    "result_fingerprint",
    "result_payload",
]

#: Bump when the cached RunResult surface changes shape; invalidates
#: every existing entry (alongside the package version).
CACHE_SCHEMA_VERSION = 2

#: Config fields introduced after the fingerprint contract was frozen.
#: They are omitted from the payload while at their default value, so a
#: config that doesn't use them serialises exactly as it did before they
#: existed — pinned fingerprints (bench baselines, determinism goldens)
#: survive each data-plane extension. Non-default values *are* included
#: and therefore distinguish cache keys and fingerprints as usual.
_OMIT_AT_DEFAULT: Dict[str, Any] = {
    "streaming": False,
    "key_skew": 0.0,
    "n_keys": None,
    "workload_chunk": None,
    "ul_retention": None,
    "inbox_ttl": None,
    "delta_views": False,
}


def code_version() -> str:
    """Version tag mixed into every cache key."""
    return f"{__version__}+schema{CACHE_SCHEMA_VERSION}"


def config_payload(config: RunConfig) -> Dict[str, Any]:
    """Every field of a config as plain JSON-serialisable data."""
    payload: Dict[str, Any] = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if (
            field.name in _OMIT_AT_DEFAULT
            and value == _OMIT_AT_DEFAULT[field.name]
        ):
            continue
        if field.name == "faults":
            value = value.payload() if value is not None else None
        elif isinstance(value, tuple):
            value = list(value)
        payload[field.name] = value
    return payload


def config_key(config: RunConfig, version: Optional[str] = None) -> str:
    """Content hash of a config + code version (hex, filesystem-safe).

    Raises ``TypeError`` when ``protocol_kwargs`` holds values without a
    stable JSON form — such configs are uncacheable.
    """
    text = json.dumps(
        {"config": config_payload(config), "version": version or code_version()},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- result fingerprinting --------------------------------------------------


def result_payload(result: RunResult) -> Dict[str, Any]:
    """The measurable surface of a run as plain data.

    Request identifiers come from a process-global counter, so their
    absolute values depend on how many runs the process executed before
    this one; they are normalised relative to the run's smallest id,
    making the payload identical in-process, in a pool worker and in a
    fresh interpreter.
    """
    ids = [r.request_id for r in result.records]
    base = min(ids) if ids else 0
    records: List[Dict[str, Any]] = [
        {
            "id": r.request_id - base,
            "home": r.home,
            "op": r.op,
            "key": r.key,
            "value": repr(r.value),
            "created_at": r.created_at,
            "dispatched_at": r.dispatched_at,
            "lock_acquired_at": r.lock_acquired_at,
            "completed_at": r.completed_at,
            "visits_to_lock": r.visits_to_lock,
            "total_visits": r.total_visits,
            "agent_id": r.agent_id,
            "status": r.status,
            "extra": {k: r.extra[k] for k in sorted(r.extra)},
        }
        for r in result.records
    ]
    audit = result.audit
    payload = {
        "config": config_payload(result.config),
        "protocol": result.protocol_name,
        "committed": result.committed,
        "failed": result.failed,
        "open": result.open,
        "alt": result.alt,
        "att": result.att,
        "prk": {str(k): v for k, v in sorted(result.prk.items())},
        "throughput": result.throughput,
        "control_messages": result.control_messages,
        "control_bytes": result.control_bytes,
        "agent_migrations": result.agent_migrations,
        "agent_bytes": result.agent_bytes,
        "dropped": result.dropped,
        "sim_time": result.sim_time,
        "audit": {
            "final_state_equal": audit.final_state_equal,
            "divergence_free": audit.divergence_free,
            "monotone": audit.monotone,
            "complete": audit.complete,
            "identical_histories": audit.identical_histories,
            "total_commits": audit.total_commits,
        },
        "commit_slots": [
            [key, version, request_id - base, value]
            for key, version, request_id, value in result.commit_slots
        ],
        "records": records,
    }
    if getattr(result.config, "streaming", False):
        # Streaming runs carry no records/commit slots; their measured
        # surface is the reservoir estimates + rolling chain digests.
        # Gated on the config flag so classic runs serialise unchanged.
        payload["streaming"] = {
            "att_p50": result.att_p50,
            "att_p99": result.att_p99,
            "chain_digests": [
                [host, digest] for host, digest in result.chain_digests
            ],
        }
    return payload


def result_fingerprint(result: RunResult) -> str:
    """Stable content hash of :func:`result_payload`.

    Byte-identical fingerprints ⇔ identical measured runs; NaN metrics
    (e.g. ALT of a run with zero commits) serialise stably via repr.
    """
    text = json.dumps(
        result_payload(result),
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- the on-disk cache ------------------------------------------------------


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else an XDG-style per-user cache dir."""
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(xdg, "repro-marp")


class ResultCache:
    """Content-addressed RunConfig → RunResult store on disk."""

    def __init__(self, root, version: Optional[str] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.version = version or code_version()
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0

    # -- keying ------------------------------------------------------------

    def _key(self, config: RunConfig) -> Optional[str]:
        try:
            return config_key(config, self.version)
        except (TypeError, ValueError):
            # e.g. a protocol_kwargs callable: no stable JSON form, so
            # no safe content address — run live every time.
            self.uncacheable += 1
            return None

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # -- lookup ------------------------------------------------------------

    def get(self, config: RunConfig) -> Optional[RunResult]:
        """The cached result for an identical config, or ``None``."""
        key = self._key(config)
        if key is None:
            return None
        path = self._path(key)
        result: Optional[RunResult] = None
        if path.exists():
            try:
                with open(path, "rb") as handle:
                    envelope = pickle.load(handle)
                if (
                    envelope.get("version") == self.version
                    and envelope.get("key") == key
                    and isinstance(envelope.get("result"), RunResult)
                ):
                    result = envelope["result"]
            except Exception as exc:  # corrupt/truncated entry
                warnings.warn(
                    f"discarding corrupt cache entry {path}: {exc!r}; "
                    f"falling back to a live run",
                    RuntimeWarning,
                    stacklevel=2,
                )
                try:
                    path.unlink()
                except OSError:
                    pass
        if result is None:
            self.misses += 1
            self._record("miss")
            return None
        self.hits += 1
        self._record("hit")
        return result

    def put(self, config: RunConfig, result: RunResult) -> bool:
        """Store a result (deployment stripped). True if written."""
        key = self._key(config)
        if key is None:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": self.version,
            "key": key,
            "config": config_payload(config),
            "result": result.without_deployment(),
        }
        # Atomic publish: a reader never sees a half-written entry.
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=f".{key[:8]}-", delete=False
        )
        try:
            with handle:
                pickle.dump(envelope, handle)
            os.replace(handle.name, path)
        except Exception:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return True

    # -- maintenance -------------------------------------------------------

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def _record(self, outcome: str) -> None:
        from repro.obs.hub import get_hub

        hub = get_hub()
        if hub is not None:
            hub.counter(
                "experiment_cache_lookups_total",
                "result-cache lookups by the experiment engine",
                ("outcome",),
            ).inc(outcome=outcome)

    def __repr__(self) -> str:
        return (
            f"<ResultCache {str(self.root)!r} entries={len(self)} "
            f"hits={self.hits} misses={self.misses}>"
        )
