"""Shared pieces of the figure experiments.

Figures 2 and 3 are two views (ALT vs ATT) of the *same* sweep — mean
request inter-arrival time × number of replicated servers — so the sweep
is collected once here and each figure module projects its metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.tables import format_series
from repro.experiments.parallel import ParallelRunner, get_default_runner
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import SweepPoint

__all__ = [
    "DEFAULT_INTERARRIVALS",
    "DEFAULT_SERVER_COUNTS",
    "FigureData",
    "latency_sweep",
]

#: Default x-axis: mean inter-arrival times (ms), paper Figs 2-4 sweep
#: roughly this range ("for a higher request generation rate with
#: inter-arrival time less than 45 milliseconds...").
DEFAULT_INTERARRIVALS: Tuple[float, ...] = (15, 25, 35, 45, 60, 80, 100)

#: The paper evaluates 3, 4 and 5 replicated servers.
DEFAULT_SERVER_COUNTS: Tuple[int, ...] = (3, 4, 5)


@dataclass
class FigureData:
    """A rendered figure: x-axis plus named series."""

    title: str
    x_label: str
    x_values: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)
    all_consistent: bool = True

    @property
    def text(self) -> str:
        body = format_series(
            self.x_label, self.x_values, self.series, title=self.title
        )
        footer = (
            "\nconsistency audit: "
            + ("all runs consistent" if self.all_consistent else "VIOLATIONS")
        )
        return body + footer

    @property
    def chart(self) -> str:
        """ASCII rendering of the figure (terminal plotting)."""
        from repro.analysis.charts import ascii_chart

        return ascii_chart(
            self.x_values, self.series, x_label=self.x_label,
            title=self.title,
        )

    def series_values(self, name: str) -> List[float]:
        return self.series[name]


def latency_sweep(
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS,
    interarrivals: Sequence[float] = DEFAULT_INTERARRIVALS,
    requests_per_client: int = 20,
    repeats: int = 2,
    seed: int = 0,
    runner: "ParallelRunner | None" = None,
    **config_overrides,
) -> Dict[int, List[SweepPoint]]:
    """The Fig 2/3 sweep: for each N, sweep the mean inter-arrival time.

    Returns ``{n_servers: [SweepPoint per inter-arrival]}``. The full
    ``len(server_counts) × len(interarrivals) × repeats`` grid goes to
    the experiment engine as one batch, so ``--jobs`` parallelism spans
    the whole figure; an attached result cache memoises across calls.
    """
    runner = runner if runner is not None else get_default_runner()
    configs = [
        RunConfig(
            n_replicas=n,
            seed=seed,
            requests_per_client=requests_per_client,
            **config_overrides,
        ).with_(mean_interarrival=gap)
        for n in server_counts
        for gap in interarrivals
    ]
    grouped = iter(runner.run_repeats_many(configs, repeats))
    out: Dict[int, List[SweepPoint]] = {}
    for n in server_counts:
        out[n] = [
            SweepPoint(gap, next(grouped)) for gap in interarrivals
        ]
    return out


def project_figure(
    points_by_n: Dict[int, List[SweepPoint]],
    metric: Callable,
    title: str,
) -> FigureData:
    """Project one scalar metric of a latency sweep into FigureData."""
    any_n = next(iter(points_by_n))
    x_values = [p.x for p in points_by_n[any_n]]
    figure = FigureData(title=title, x_label="mean inter-arrival (ms)",
                        x_values=list(x_values))
    for n, points in sorted(points_by_n.items()):
        figure.series[f"{n} servers"] = [p.mean(metric) for p in points]
        if not all(p.all_consistent() for p in points):
            figure.all_consistent = False
    return figure
