"""Figure 2: Average time for obtaining the lock by a mobile agent.

Paper §4: "Figures 2 and 3 show the results of ALT and ATT,
respectively, obtained by using 3–5 replicated servers with different
request generation rates. ... as the mean arrival time increases both
the ALT and ATT decrease."

Expected shape: ALT is highest at small mean inter-arrival times
(contention forces full tours and queue waits), decreases monotonically
toward the uncontended floor (≈ ⌈(N+1)/2⌉ visits × per-visit cost), and
grows with the number of servers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_INTERARRIVALS,
    DEFAULT_SERVER_COUNTS,
    FigureData,
    latency_sweep,
    project_figure,
)
from repro.experiments.sweeps import SweepPoint

__all__ = ["run_fig2", "project_fig2"]


def project_fig2(points_by_n: Dict[int, List[SweepPoint]]) -> FigureData:
    """Fig 2 view of a latency sweep: ALT (ms) per server count."""
    return project_figure(
        points_by_n,
        metric=lambda r: r.alt,
        title="Figure 2: average time for obtaining the lock (ALT, ms)",
    )


def run_fig2(
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS,
    interarrivals: Sequence[float] = DEFAULT_INTERARRIVALS,
    requests_per_client: int = 20,
    repeats: int = 2,
    seed: int = 0,
    points_by_n: Optional[Dict[int, List[SweepPoint]]] = None,
    runner=None,
) -> FigureData:
    """Regenerate Figure 2 (optionally from a pre-collected sweep)."""
    if points_by_n is None:
        points_by_n = latency_sweep(
            server_counts=server_counts,
            interarrivals=interarrivals,
            requests_per_client=requests_per_client,
            repeats=repeats,
            seed=seed,
            runner=runner,
        )
    return project_fig2(points_by_n)
