"""Figure 3: Average time for completing a request.

Paper §4: ATT "includes the message passing delay for sending the UPDATE
and COMMIT messages. ... By comparing the figures, we can see that the
message passing latency is the predominant factor determining the
latency of operations on the replicated data. As the number of servers
increase, this trend is more obvious."

Expected shape: ATT ≥ ALT everywhere (it adds the UPDATE/ACK/COMMIT
round), decreasing with mean inter-arrival, increasing with N.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.common import (
    DEFAULT_INTERARRIVALS,
    DEFAULT_SERVER_COUNTS,
    FigureData,
    latency_sweep,
    project_figure,
)
from repro.experiments.sweeps import SweepPoint

__all__ = ["run_fig3", "project_fig3"]


def project_fig3(points_by_n: Dict[int, List[SweepPoint]]) -> FigureData:
    """Fig 3 view of a latency sweep: ATT (ms) per server count."""
    return project_figure(
        points_by_n,
        metric=lambda r: r.att,
        title="Figure 3: average time for completing a request (ATT, ms)",
    )


def run_fig3(
    server_counts: Sequence[int] = DEFAULT_SERVER_COUNTS,
    interarrivals: Sequence[float] = DEFAULT_INTERARRIVALS,
    requests_per_client: int = 20,
    repeats: int = 2,
    seed: int = 0,
    points_by_n: Optional[Dict[int, List[SweepPoint]]] = None,
    runner=None,
) -> FigureData:
    """Regenerate Figure 3 (optionally from a pre-collected sweep)."""
    if points_by_n is None:
        points_by_n = latency_sweep(
            server_counts=server_counts,
            interarrivals=interarrivals,
            requests_per_client=requests_per_client,
            repeats=repeats,
            seed=seed,
            runner=runner,
        )
    return project_fig3(points_by_n)
