"""Figure 4: Percentage of requests whose lock is obtained by visiting K
servers (K = 3, 4, 5), with 5 replicated servers.

Paper §4: "for a higher request generation rate with inter-arrival time
less than 45 milliseconds, for most requests, mobile agents need to
visit all of the 5 servers in order to obtain the lock. However, as the
generation rate drops, most requests can be granted the lock by having
their mobile agents visit only 3 servers ((N+1)/2)."

Expected shape: the PRK(K=5) curve dominates below ~45 ms inter-arrival
and falls as the rate drops, while PRK(K=3) rises toward 1.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import DEFAULT_INTERARRIVALS, FigureData
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import sweep

__all__ = ["run_fig4"]


def run_fig4(
    n_replicas: int = 5,
    interarrivals: Sequence[float] = DEFAULT_INTERARRIVALS,
    requests_per_client: int = 20,
    repeats: int = 2,
    seed: int = 0,
    runner=None,
    **config_overrides,
) -> FigureData:
    """Regenerate Figure 4: PRK series over the inter-arrival sweep."""
    base = RunConfig(
        n_replicas=n_replicas,
        seed=seed,
        requests_per_client=requests_per_client,
        **config_overrides,
    )
    points = sweep(
        base, "mean_interarrival", interarrivals, repeats, runner=runner
    )

    figure = FigureData(
        title=(
            f"Figure 4: % of requests whose lock needed K server visits "
            f"(N={n_replicas})"
        ),
        x_label="mean inter-arrival (ms)",
        x_values=[p.x for p in points],
    )
    k_min = n_replicas // 2 + 1
    for k in range(k_min, n_replicas + 1):
        figure.series[f"K={k}"] = [100.0 * p.prk_mean(k) for p in points]
    figure.all_consistent = all(p.all_consistent() for p in points)
    return figure
