"""The parallel experiment engine.

Every figure, table and ablation in the harness reduces to a batch of
independent :func:`~repro.experiments.runner.run_once` calls — the sweep
modules build the configs, the engine executes them. A
:class:`ParallelRunner` fans a batch out over a
``concurrent.futures.ProcessPoolExecutor``; because each run is
bit-deterministic in its config (the determinism suite pins this down),
fanning out can never change a result, only the wall-clock time.

**Deterministic sharding.** Work is sharded by batch index: config ``i``
is submitted as task ``i`` and its result is reassembled into slot ``i``
regardless of which worker finishes first, and per-repeat child seeds
are derived by stream splitting (:func:`repro.sim.rng.spawn_seed`) from
the base seed alone. Output is therefore a pure function of the config
batch — independent of worker count, scheduling order and pool warmth.

**Result cache.** With a :class:`~repro.experiments.cache.ResultCache`
attached, each config is first looked up by content key; only misses
are dispatched, and fresh results are written back (deployment
stripped) for the next sweep.

**Observability.** When a process-wide hub is enabled
(:func:`repro.obs.enable`), the engine records ``experiment_engine_runs_total``
(labelled serial/pool), an ``experiment_run_wall_ms`` histogram of
per-run wall time, and the cache records
``experiment_cache_lookups_total`` hit/miss counters.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import (
    RunConfig,
    RunResult,
    repeat_configs,
    run_once,
)

__all__ = [
    "ParallelRunner",
    "get_default_runner",
    "set_default_runner",
]

#: Buckets for the per-run wall-time histogram (milliseconds).
RUN_WALL_BUCKETS_MS = (
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
    10000.0, 30000.0, 60000.0,
)


def _pool_run(config: RunConfig) -> Tuple[RunResult, float]:
    """Worker-side entry: one measured run, stripped for pickling."""
    start = time.perf_counter()
    result = run_once(config)
    return result.without_deployment(), time.perf_counter() - start


class ParallelRunner:
    """Executes batches of runs, optionally in parallel and cached.

    Parameters
    ----------
    jobs:
        Worker processes. ``None`` or ``1`` runs serially in-process
        (and retains each result's live deployment, exactly like
        calling :func:`run_once` directly); ``>= 2`` fans out over a
        lazily created, reused process pool. Pool results have their
        deployment stripped — everything measured survives, but
        post-hoc re-audits need ``RunConfig.audit_exclude``.
    cache:
        A :class:`ResultCache`; hits skip the run entirely.

    The runner is a context manager; :meth:`close` shuts the pool down.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ExperimentError(f"jobs must be >= 1: {jobs}")
        self.jobs = jobs
        self.cache = cache
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- execution ---------------------------------------------------------

    @property
    def parallel(self) -> bool:
        return (self.jobs or 1) > 1

    def run_many(self, configs: Sequence[RunConfig]) -> List[RunResult]:
        """Run every config; results in config order (index-sharded)."""
        configs = list(configs)
        results: List[Optional[RunResult]] = [None] * len(configs)
        miss_indices: List[int] = []
        for index, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache is not None else None
            if cached is not None:
                results[index] = cached
            else:
                miss_indices.append(index)
        if miss_indices:
            missing = [configs[i] for i in miss_indices]
            fresh = (
                self._run_pool(missing) if self.parallel
                else self._run_serial(missing)
            )
            for index, result in zip(miss_indices, fresh):
                if self.cache is not None:
                    self.cache.put(configs[index], result)
                results[index] = result
        return results  # type: ignore[return-value]

    def run_one(self, config: RunConfig) -> RunResult:
        """One run through the engine (cache + pool included)."""
        return self.run_many([config])[0]

    def run_repeats_many(
        self, configs: Sequence[RunConfig], repeats: int
    ) -> List[List[RunResult]]:
        """Each config under ``repeats`` derived child seeds.

        The whole ``len(configs) × repeats`` batch is dispatched at
        once, so parallelism spans sweep points, not just repeats.
        """
        configs = list(configs)
        flat = [
            child
            for config in configs
            for child in repeat_configs(config, repeats)
        ]
        results = self.run_many(flat)
        return [
            results[index * repeats:(index + 1) * repeats]
            for index in range(len(configs))
        ]

    # -- execution backends ------------------------------------------------

    def _run_serial(self, configs: List[RunConfig]) -> List[RunResult]:
        out = []
        for config in configs:
            start = time.perf_counter()
            result = run_once(config)
            self._record("serial", time.perf_counter() - start)
            # A cached copy must be deployment-free; the caller still
            # gets the live deployment (cache.put strips its own copy).
            out.append(result)
        return out

    def _run_pool(self, configs: List[RunConfig]) -> List[RunResult]:
        pool = self._ensure_pool()
        futures = [pool.submit(_pool_run, config) for config in configs]
        out = []
        for future in futures:
            result, wall = future.result()
            self._record("pool", wall)
            out.append(result)
        return out

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # -- telemetry ---------------------------------------------------------

    def _record(self, mode: str, wall_seconds: float) -> None:
        from repro.obs.hub import get_hub

        hub = get_hub()
        if hub is not None:
            hub.counter(
                "experiment_engine_runs_total",
                "runs completed by the experiment engine",
                ("mode",),
            ).inc(mode=mode)
            hub.histogram(
                "experiment_run_wall_ms",
                "wall-clock time of one simulation run",
                buckets=RUN_WALL_BUCKETS_MS,
            ).observe(wall_seconds * 1000.0)

    def __repr__(self) -> str:
        return (
            f"<ParallelRunner jobs={self.jobs or 1} "
            f"cache={self.cache!r}>"
        )


#: The engine used when no explicit runner is passed: serial, uncached.
_default_runner: Optional[ParallelRunner] = None


def get_default_runner() -> ParallelRunner:
    """The process-wide engine (created serial/uncached on first use)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ParallelRunner()
    return _default_runner


def set_default_runner(
    runner: Optional[ParallelRunner],
) -> Optional[ParallelRunner]:
    """Install the process-wide engine; returns the previous one.

    The CLI's ``--jobs``/``--cache-dir`` flags parallelise existing
    experiment commands this way, without threading a runner parameter
    through every figure function.
    """
    global _default_runner
    previous = _default_runner
    _default_runner = runner
    return previous
