"""Experiment runner: one config in, one measured run out.

Every figure/table module and every benchmark goes through
:func:`run_once`, which builds a deployment, instantiates the requested
protocol, attaches the paper's per-server open-loop clients, runs to
quiescence (bounded by a horizon), audits consistency and computes the
paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ExperimentError
from repro.analysis.consistency import (
    AuditReport, ChainDigest, audit, commit_slots, streaming_audit,
)
from repro.analysis.metrics import StreamingMetrics, alt, att, prk, throughput
from repro.baselines import PROTOCOLS
from repro.core.config import MARPConfig
from repro.core.protocol import MARP
from repro.net.faults import FaultPlan
from repro.net.latency import hybrid_profile, lan_profile, wan_profile
from repro.net.topology import Topology
from repro.replication.client import attach_clients
from repro.replication.deployment import Deployment
from repro.replication.requests import RequestRecord, new_request_id
from repro.replication.server import ReplicaConfig
from repro.sim.rng import RandomStreams, spawn_seed
from repro.workload.arrivals import ExponentialArrivals
from repro.workload.mix import OperationMix

__all__ = [
    "RunConfig",
    "RunResult",
    "run_once",
    "run_repeats",
    "repeat_seeds",
    "repeat_configs",
    "build_protocol",
]


@dataclass
class RunConfig:
    """Declarative description of one simulation run.

    Defaults reproduce the paper's setup: 5 replicas, full mesh LAN,
    exponential per-server arrivals, update-only workload.
    """

    protocol: str = "marp"
    n_replicas: int = 5
    seed: int = 0
    mean_interarrival: float = 50.0
    requests_per_client: int = 20
    write_fraction: float = 1.0
    keys: Tuple[str, ...] = ("x",)
    latency: str = "lan"  # "lan" | "wan" | "hybrid"
    topology: str = "mesh"  # "mesh" | "random-costs"
    horizon: float = 5_000_000.0
    faults: Optional[FaultPlan] = None
    # MARP-specific knobs (ignored by baselines)
    itinerary: str = "cost-sorted"
    batch_size: int = 1
    read_strategy: str = "local"
    # substrate knobs
    agent_service_time: float = 2.0
    update_apply_time: float = 0.5
    enable_bulletin: bool = True
    protocol_kwargs: Dict[str, Any] = field(default_factory=dict)
    # Hosts to leave out of a *second* audit computed at run time (the
    # availability experiment excludes permanently crashed replicas).
    # Part of the config so the excluded audit travels with the result
    # through process-pool workers and the result cache, neither of
    # which can carry the live deployment.
    audit_exclude: Tuple[str, ...] = ()
    # -- million-request data plane (all defaults preserve the classic
    # run byte-for-byte; config_payload omits them at default values so
    # existing fingerprints and bench baselines are unchanged) ---------
    #: Streaming accounting: terminal records sweep into constant-memory
    #: reservoirs (Welford/P²) and rolling chain digests instead of
    #: accumulating; RunResult.records comes back empty.
    streaming: bool = False
    #: Zipf skew over the key population (0 = uniform).
    key_skew: float = 0.0
    #: Generate a synthetic key population k0..k{n-1} (overrides `keys`).
    n_keys: Optional[int] = None
    #: Vectorized workload generation: pre-draw this many gaps/ops/keys
    #: per batch from per-field streams (None = scalar draws on the
    #: classic interleaved stream).
    workload_chunk: Optional[int] = None
    #: Updated-List retention window in ms (None = paper semantics).
    ul_retention: Optional[float] = None
    #: Network inbox hygiene window in ms: delivered messages unclaimed
    #: for longer are reaped (dead claim-round replies otherwise
    #: accumulate without bound and make long runs quadratic). None =
    #: keep everything, the exact historical semantics.
    inbox_ttl: Optional[float] = None
    #: Delta-view data plane: agents and replicas exchange
    #: SharedViewDeltas and compact suitcase encodings (see
    #: ProtocolTunables.delta_views). MARP-only; baselines ignore it.
    delta_views: bool = False

    def with_(self, **changes) -> "RunConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **changes)


@dataclass
class RunResult:
    """Everything measured in one run."""

    config: RunConfig
    protocol_name: str
    records: List[RequestRecord]
    committed: int
    failed: int
    open: int
    alt: float
    att: float
    prk: Dict[int, float]
    throughput: float
    control_messages: int
    control_bytes: int
    agent_migrations: int
    agent_bytes: int
    dropped: int
    audit: AuditReport
    sim_time: float
    deployment: Optional[Deployment] = None
    #: global commit map — one (key, version, request_id, value-repr)
    #: per committed slot; plain data, so theorem checks survive
    #: pickling (see :func:`repro.analysis.consistency.commit_slots`).
    commit_slots: Tuple[Tuple[str, int, int, str], ...] = ()
    #: audit without ``config.audit_exclude`` hosts (None if unset)
    audit_excluded: Optional[AuditReport] = None
    #: ATT percentiles: exact (numpy) in full-record mode, P² estimates
    #: in streaming mode.
    att_p50: float = float("nan")
    att_p99: float = float("nan")
    #: streaming runs: (host, whole-history chain digest) per replica —
    #: plain data, so streaming determinism checks survive pickling.
    chain_digests: Tuple[Tuple[str, str], ...] = ()

    def audit_excluding(self, exclude) -> AuditReport:
        """Re-audit without the named hosts (e.g. permanently crashed).

        Falls back to the precomputed ``audit_excluded`` report when the
        deployment was stripped (pool worker / cached result) and the
        exclusion matches ``config.audit_exclude``.
        """
        if self.deployment is None:
            if not set(exclude):
                return self.audit
            if (
                self.audit_excluded is not None
                and set(exclude) == set(self.config.audit_exclude)
            ):
                return self.audit_excluded
            raise ExperimentError("deployment not retained for this result")
        return audit(self.deployment, exclude=exclude)

    def without_deployment(self) -> "RunResult":
        """A copy safe to pickle across processes / cache on disk."""
        if self.deployment is None:
            return self
        return replace(self, deployment=None)

    @property
    def total_messages(self) -> int:
        return self.control_messages + self.agent_migrations

    @property
    def total_bytes(self) -> int:
        return self.control_bytes + self.agent_bytes


def _build_deployment(config: RunConfig) -> Deployment:
    latency = {
        "lan": lan_profile, "wan": wan_profile, "hybrid": hybrid_profile,
    }.get(config.latency)
    if latency is None:
        raise ExperimentError(f"unknown latency profile {config.latency!r}")
    replica_config = ReplicaConfig(
        agent_service_time=config.agent_service_time,
        update_apply_time=config.update_apply_time,
        enable_bulletin=config.enable_bulletin,
        ul_retention=config.ul_retention,
        delta_views=config.delta_views,
    )
    topology = None
    if config.topology == "random-costs":
        streams = RandomStreams(config.seed)
        hosts = [f"s{i}" for i in range(1, config.n_replicas + 1)]
        topology = Topology.random_costs(hosts, streams.stream("topology"))
    elif config.topology != "mesh":
        raise ExperimentError(f"unknown topology {config.topology!r}")
    return Deployment(
        n_replicas=config.n_replicas,
        seed=config.seed,
        latency=latency(),
        topology=topology,
        faults=config.faults,
        replica_config=replica_config,
        inbox_ttl=config.inbox_ttl,
    )


def build_protocol(deployment: Deployment, config: RunConfig):
    """Instantiate the configured protocol over a deployment."""
    if config.protocol == "marp":
        marp_config = MARPConfig(
            itinerary=config.itinerary,
            batch_size=config.batch_size,
            read_strategy=config.read_strategy,
            delta_views=config.delta_views,
        )
        return MARP(deployment, config=marp_config)
    cls = PROTOCOLS.get(config.protocol)
    if cls is None:
        raise ExperimentError(
            f"unknown protocol {config.protocol!r}; expected 'marp' or one "
            f"of {sorted(PROTOCOLS)}"
        )
    return cls(deployment, **config.protocol_kwargs)


def run_once(config: RunConfig) -> RunResult:
    """Build, run and measure one simulation.

    When an observability hub is active (process-wide via
    :func:`repro.obs.enable`, since the deployment is built here), the
    run is wrapped in an ``experiment.run`` span and finishes with an
    ``experiment.summary`` event plus per-protocol summary counters.
    """
    deployment = _build_deployment(config)
    protocol = build_protocol(deployment, config)
    hub = deployment.obs
    run_span = None
    if hub is not None:
        run_span = hub.start_span(
            "experiment.run", start=deployment.env.now,
            protocol=config.protocol, n_replicas=config.n_replicas,
            seed=config.seed, latency=config.latency,
            mean_interarrival=config.mean_interarrival,
        )
    streaming = config.streaming
    stream_metrics: Optional[StreamingMetrics] = None
    digests: Dict[str, ChainDigest] = {}
    if streaming:
        stream_metrics = StreamingMetrics()
        # Request ids come from a process-global counter; burn one to
        # learn the run's first id so the rolling digests fold
        # *run-relative* ids and stay process-independent (the same
        # normalisation result_payload applies to stored records).
        id_base = new_request_id() + 1
        for host in deployment.hosts:
            server = deployment.server(host)
            digest = ChainDigest(host, id_base=id_base)
            digests[host] = digest
            server.history.stream_to(digest)
            # The per-store applied log is the last O(requests) retainer
            # in streaming mode; no audit path reads it here.
            server.store.bound_applied_log()
        protocol.enable_streaming(stream_metrics.observe)

    keys = config.keys
    if config.n_keys is not None:
        keys = tuple(f"k{index}" for index in range(config.n_keys))
    attach_clients(
        protocol,
        ExponentialArrivals(config.mean_interarrival),
        OperationMix(
            write_fraction=config.write_fraction,
            keys=list(keys),
            key_skew=config.key_skew,
        ),
        max_requests_per_client=config.requests_per_client,
        chunk=config.workload_chunk,
        keep_records=not streaming,
    )
    deployment.run(until=config.horizon)

    stats = deployment.network.stats
    if streaming:
        still_open = protocol.finalize_streaming()
        result = RunResult(
            config=config,
            protocol_name=protocol.name,
            records=[],
            committed=stream_metrics.committed,
            failed=stream_metrics.failed,
            open=still_open,
            alt=stream_metrics.alt(),
            att=stream_metrics.att(),
            prk=stream_metrics.prk(config.n_replicas),
            throughput=stream_metrics.throughput(),
            control_messages=stats.total_messages("control"),
            control_bytes=stats.total_bytes("control"),
            agent_migrations=stats.total_messages("agent"),
            agent_bytes=stats.total_bytes("agent"),
            dropped=stats.total_dropped(),
            audit=streaming_audit(deployment, digests),
            sim_time=deployment.env.now,
            deployment=deployment,
            commit_slots=(),
            audit_excluded=(
                streaming_audit(
                    deployment, digests, exclude=config.audit_exclude
                )
                if config.audit_exclude else None
            ),
            att_p50=stream_metrics.att_p50.result(),
            att_p99=stream_metrics.att_p99.result(),
            chain_digests=tuple(
                (host, digests[host].whole_digest())
                for host in deployment.hosts
            ),
        )
    else:
        records = protocol.records
        total_times = [
            r.total_time
            for r in records
            if r.is_write and r.status == "committed"
            and r.total_time is not None
        ]
        result = RunResult(
            config=config,
            protocol_name=protocol.name,
            records=records,
            committed=sum(1 for r in records if r.status == "committed"),
            failed=sum(1 for r in records if r.status == "failed"),
            open=protocol.open_requests(),
            alt=alt(records),
            att=att(records),
            prk=prk(records, config.n_replicas),
            throughput=throughput(records),
            control_messages=stats.total_messages("control"),
            control_bytes=stats.total_bytes("control"),
            agent_migrations=stats.total_messages("agent"),
            agent_bytes=stats.total_bytes("agent"),
            dropped=stats.total_dropped(),
            audit=audit(deployment),
            sim_time=deployment.env.now,
            deployment=deployment,
            commit_slots=commit_slots(deployment),
            audit_excluded=(
                audit(deployment, exclude=config.audit_exclude)
                if config.audit_exclude else None
            ),
            att_p50=(
                float(np.percentile(total_times, 50))
                if total_times else float("nan")
            ),
            att_p99=(
                float(np.percentile(total_times, 99))
                if total_times else float("nan")
            ),
        )
    if hub is not None:
        labels = {"protocol": result.protocol_name}
        hub.counter(
            "experiment_runs_total", "simulation runs measured",
            ("protocol",),
        ).inc(**labels)
        hub.counter(
            "experiment_committed_total", "requests committed per protocol",
            ("protocol",),
        ).inc(result.committed, **labels)
        hub.counter(
            "experiment_failed_total", "requests failed per protocol",
            ("protocol",),
        ).inc(result.failed, **labels)
        hub.event(
            "experiment.summary", time=result.sim_time, span=run_span,
            protocol=result.protocol_name, seed=config.seed,
            committed=result.committed, failed=result.failed,
            alt_ms=result.alt, att_ms=result.att,
            throughput_per_s=result.throughput,
            consistent=result.audit.consistent,
        )
        run_span.finish(end=result.sim_time)
    return result


def repeat_seeds(base_seed: int, repeats: int) -> List[int]:
    """Child seeds for ``repeats`` runs of one config.

    Stream-splitting derivation (:func:`repro.sim.rng.spawn_seed`)
    rather than ``base_seed + i``: additive seeds collide across sweep
    points whose base seeds are consecutive (point A's repeat 1 is point
    B's repeat 0), silently correlating supposedly independent repeats.
    Child seeds depend only on ``(base_seed, index)`` — not on the rest
    of the config — so protocol comparisons at one base seed still see
    common random numbers.
    """
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1: {repeats}")
    return [
        spawn_seed(base_seed, "experiment.repeat", index)
        for index in range(repeats)
    ]


def repeat_configs(config: RunConfig, repeats: int) -> List[RunConfig]:
    """The per-repeat configs (one derived child seed each)."""
    return [
        config.with_(seed=seed)
        for seed in repeat_seeds(config.seed, repeats)
    ]


def run_repeats(
    config: RunConfig, repeats: int = 3, runner=None
) -> List[RunResult]:
    """Run the same config under ``repeats`` independently derived seeds.

    Routed through the (default or given) experiment engine — see
    :mod:`repro.experiments.parallel` — so repeats fan out over worker
    processes and hit the result cache when one is configured.
    """
    from repro.experiments.parallel import get_default_runner

    runner = runner if runner is not None else get_default_runner()
    return runner.run_repeats_many([config], repeats)[0]
