"""S1: scalability in the number of replicas (paper §5, qualitative).

The paper's first conclusion bullet: the protocol "is fully distributed
and scalable". We sweep the replica count at a fixed per-server request
rate and report how latency and per-commit traffic grow, for MARP and
the message-passing comparators. Expected shape: every quorum protocol's
cost grows with N (majorities get bigger); MARP's per-commit message
count grows linearly (one tour + one claim round) without the retry
blow-up the voting protocols show under contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.parallel import get_default_runner
from repro.experiments.runner import RunConfig

__all__ = ["ScalabilityTable", "run_scalability"]


@dataclass
class ScalabilityTable:
    """Latency / traffic versus replica count, per protocol."""

    title: str
    headers: List[str] = field(default_factory=lambda: [
        "protocol", "N", "committed", "ATT(ms)", "msgs/commit",
        "KB/commit", "consistent",
    ])
    rows: List[List] = field(default_factory=list)

    @property
    def text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def series(self, protocol: str, column: str) -> Dict[int, float]:
        index = self.headers.index(column)
        return {
            row[1]: row[index] for row in self.rows if row[0] == protocol
        }


def run_scalability(
    protocols: Sequence[str] = ("marp", "mcv"),
    replica_counts: Sequence[int] = (3, 5, 7, 9),
    mean_interarrival: float = 60.0,
    requests_per_client: int = 10,
    repeats: int = 2,
    seed: int = 0,
    runner=None,
) -> ScalabilityTable:
    """Sweep the cluster size at a fixed per-server request rate."""
    runner = runner if runner is not None else get_default_runner()
    table = ScalabilityTable(
        title=(
            f"S1: scaling the replica count "
            f"({mean_interarrival:g}ms gaps per server)"
        ),
    )
    cells = [
        (protocol, n, RunConfig(
            protocol=protocol,
            n_replicas=n,
            mean_interarrival=mean_interarrival,
            requests_per_client=requests_per_client,
            seed=seed,
        ))
        for protocol in protocols
        for n in replica_counts
    ]
    grouped = runner.run_repeats_many(
        [config for _, _, config in cells], repeats
    )
    for (protocol, n, _), results in zip(cells, grouped):
        committed = summarize(
            [float(r.committed) for r in results]
        ).mean
        msgs = summarize([float(r.total_messages) for r in results]).mean
        byts = summarize([float(r.total_bytes) for r in results]).mean
        table.rows.append([
            protocol,
            n,
            committed,
            summarize([r.att for r in results]).mean,
            msgs / committed if committed else float("nan"),
            (byts / 1024.0) / committed if committed else float("nan"),
            all(r.audit.consistent for r in results),
        ])
    return table
