"""Scale family: saturation curves at large request counts.

Where :mod:`repro.experiments.scalability` (S1) fixes the offered load
and grows the cluster, this family fixes a cluster variant and **sweeps
the offered load** until each protocol saturates: committed throughput
stops tracking the offered rate and tail latency (p99 ATT) bends
upward. Curves are produced for MARP against the quorum baselines over
four axes — replica count, key-population size, Zipf skew and WAN
latency — so the first MARP-vs-quorum bend is visible per axis.

Every run uses the million-request data plane: streaming accounting
(constant-memory Welford/P² reservoirs + rolling chain digests),
vectorized workload generation (``workload_chunk``) and a bounded
Updated-List retention window. Runs dispatch through the parallel
runner, so ``-j``/the result cache apply, and results are
bit-deterministic per seed like every other family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.parallel import get_default_runner
from repro.experiments.runner import RunConfig

__all__ = [
    "ScaleVariant",
    "ScalePoint",
    "ScaleCurve",
    "ScaleFamily",
    "default_variants",
    "replica_sweep_variants",
    "geo_variants",
    "run_scale",
]

#: Sweep of per-client mean inter-arrival gaps (ms), densest at the
#: loaded end where the saturation knee lives.
DEFAULT_INTERARRIVALS: Tuple[float, ...] = (160.0, 80.0, 40.0, 20.0, 10.0)
QUICK_INTERARRIVALS: Tuple[float, ...] = (120.0, 40.0, 15.0)


@dataclass(frozen=True)
class ScaleVariant:
    """One point on a non-load axis: a cluster/workload shape."""

    label: str
    n_replicas: int = 5
    n_keys: int = 16
    key_skew: float = 0.9
    latency: str = "lan"
    #: delta-view data plane (hundreds-of-replicas sweeps need it: the
    #: per-tour SharedView merge cost dominates otherwise).
    delta_views: bool = False

    def payload(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "n_replicas": self.n_replicas,
            "n_keys": self.n_keys,
            "key_skew": self.key_skew,
            "latency": self.latency,
            "delta_views": self.delta_views,
        }


@dataclass
class ScalePoint:
    """One offered-load point of one curve (mean over repeats)."""

    mean_interarrival: float
    offered_load: float  # requests/s across the whole cluster
    committed: float
    throughput: float  # committed writes/s of simulated time
    att: float
    att_p50: float
    att_p99: float
    consistent: bool

    def payload(self) -> Dict[str, Any]:
        return {
            "mean_interarrival": self.mean_interarrival,
            "offered_load": self.offered_load,
            "committed": self.committed,
            "throughput": self.throughput,
            "att": self.att,
            "att_p50": self.att_p50,
            "att_p99": self.att_p99,
            "consistent": self.consistent,
        }


@dataclass
class ScaleCurve:
    """Offered load → throughput/latency for one (protocol, variant)."""

    protocol: str
    variant: ScaleVariant
    points: List[ScalePoint] = field(default_factory=list)

    def saturation_load(self, efficiency: float = 0.9) -> Optional[float]:
        """Offered load (req/s) at the first point where committed
        throughput drops below ``efficiency`` × offered — the knee of
        the curve — or ``None`` if the sweep never saturates."""
        for point in self.points:
            if point.offered_load <= 0:
                continue
            if point.throughput < efficiency * point.offered_load:
                return point.offered_load
        return None

    def payload(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "variant": self.variant.payload(),
            "saturation_load": self.saturation_load(),
            "points": [point.payload() for point in self.points],
        }


@dataclass
class ScaleFamily:
    """All saturation curves of one sweep + table/JSON projections."""

    title: str
    curves: List[ScaleCurve] = field(default_factory=list)

    @property
    def text(self) -> str:
        headers = [
            "protocol", "variant", "gap(ms)", "offered/s", "committed",
            "tput/s", "ATT(ms)", "p50", "p99", "consistent",
        ]
        rows: List[List[Any]] = []
        for curve in self.curves:
            for point in curve.points:
                rows.append([
                    curve.protocol,
                    curve.variant.label,
                    point.mean_interarrival,
                    round(point.offered_load, 1),
                    point.committed,
                    round(point.throughput, 1),
                    round(point.att, 2),
                    round(point.att_p50, 2),
                    round(point.att_p99, 2),
                    point.consistent,
                ])
        return format_table(headers, rows, title=self.title)

    def curve(self, protocol: str, variant_label: str) -> ScaleCurve:
        for curve in self.curves:
            if (
                curve.protocol == protocol
                and curve.variant.label == variant_label
            ):
                return curve
        raise KeyError(f"no curve for ({protocol!r}, {variant_label!r})")

    def bends(self) -> Dict[str, Dict[str, Optional[float]]]:
        """variant label → protocol → saturation load (req/s)."""
        out: Dict[str, Dict[str, Optional[float]]] = {}
        for curve in self.curves:
            out.setdefault(curve.variant.label, {})[curve.protocol] = (
                curve.saturation_load()
            )
        return out

    def payload(self) -> Dict[str, Any]:
        """JSON-serialisable document (the CI scale-smoke artifact)."""
        return {
            "schema": "repro-scale/v1",
            "title": self.title,
            "bends": self.bends(),
            "curves": [curve.payload() for curve in self.curves],
        }


def default_variants(
    replica_counts: Sequence[int] = (7,),
    key_counts: Sequence[int] = (256,),
    skews: Sequence[float] = (0.0, 0.99),
    wan: bool = True,
    base: Optional[ScaleVariant] = None,
) -> List[ScaleVariant]:
    """The default axis matrix: one base shape plus one variant per
    replica count, key count, skew and (optionally) WAN latency.

    A full cross-product would be quadratic in runs for no extra
    insight; one-axis-at-a-time keeps every curve attributable to a
    single knob, like the paper's own figures.
    """
    base = base or ScaleVariant(label="base")
    variants = [base]
    for n in replica_counts:
        if n != base.n_replicas:
            variants.append(ScaleVariant(
                label=f"N={n}", n_replicas=n, n_keys=base.n_keys,
                key_skew=base.key_skew, latency=base.latency,
            ))
    for k in key_counts:
        if k != base.n_keys:
            variants.append(ScaleVariant(
                label=f"keys={k}", n_replicas=base.n_replicas, n_keys=k,
                key_skew=base.key_skew, latency=base.latency,
            ))
    for theta in skews:
        if theta != base.key_skew:
            variants.append(ScaleVariant(
                label=f"skew={theta:g}", n_replicas=base.n_replicas,
                n_keys=base.n_keys, key_skew=theta, latency=base.latency,
            ))
    if wan and base.latency != "wan":
        variants.append(ScaleVariant(
            label="wan", n_replicas=base.n_replicas, n_keys=base.n_keys,
            key_skew=base.key_skew, latency="wan",
        ))
    return variants


def replica_sweep_variants(
    counts: Sequence[int] = (100, 150, 200, 300),
    n_keys: int = 256,
    key_skew: float = 0.9,
    latency: str = "lan",
    delta_views: bool = True,
) -> List[ScaleVariant]:
    """The hundreds-of-replicas axis: one variant per cluster size.

    Defaults to the delta-view data plane — at these sizes each agent
    carries O(N) views and every visit re-merges them, so the full plane
    spends its time in Table.update rather than in the protocol under
    test. Pass ``delta_views=False`` for the A/B against the full plane.
    """
    return [
        ScaleVariant(
            label=f"N={n}{'' if delta_views else '/full'}",
            n_replicas=n, n_keys=n_keys, key_skew=key_skew,
            latency=latency, delta_views=delta_views,
        )
        for n in counts
    ]


def geo_variants(
    n_replicas: int = 100,
    n_keys: int = 256,
    key_skew: float = 0.9,
    profiles: Sequence[str] = ("lan", "wan", "hybrid"),
    delta_views: bool = True,
) -> List[ScaleVariant]:
    """The geo-topology axis at one cluster size: lan / wan / hybrid.

    ``hybrid`` splits the replicas round-robin into a few regions with
    LAN-like latency inside a region and WAN-like latency across (see
    :func:`repro.net.latency.hybrid_profile`).
    """
    return [
        ScaleVariant(
            label=f"geo={profile}",
            n_replicas=n_replicas, n_keys=n_keys, key_skew=key_skew,
            latency=profile, delta_views=delta_views,
        )
        for profile in profiles
    ]


def scale_config(
    protocol: str,
    variant: ScaleVariant,
    mean_interarrival: float,
    requests_per_client: int,
    seed: int = 0,
    workload_chunk: int = 1024,
    ul_retention: Optional[float] = 15_000.0,
    inbox_ttl: Optional[float] = 20_000.0,
) -> RunConfig:
    """The canonical scale-family RunConfig: streaming + vectorized.

    The two hygiene windows keep long runs linear: ``ul_retention``
    bounds the Updated List and ``inbox_ttl`` reaps dead claim-round
    replies. Both comfortably exceed ``grant_ttl`` (10 s) plus any
    RELEASE/reply propagation delay — the documented safety margins —
    yet stay small against run length, so they change the memory/scan
    cost profile, not outcomes.

    The horizon grows with the offered workload (20× the expected
    arrival span, floored at the RunConfig default) so bulk runs —
    up to the million-request scenario — are never truncated mid-flight;
    the DES stops at quiescence, so a generous horizon costs nothing.
    """
    horizon = max(5_000_000.0, 20.0 * mean_interarrival * requests_per_client)
    return RunConfig(
        protocol=protocol,
        n_replicas=variant.n_replicas,
        seed=seed,
        mean_interarrival=mean_interarrival,
        requests_per_client=requests_per_client,
        latency=variant.latency,
        horizon=horizon,
        streaming=True,
        key_skew=variant.key_skew,
        n_keys=variant.n_keys,
        workload_chunk=workload_chunk,
        ul_retention=ul_retention,
        inbox_ttl=inbox_ttl,
        delta_views=variant.delta_views,
    )


def run_scale(
    protocols: Sequence[str] = ("marp", "mcv"),
    interarrivals: Sequence[float] = DEFAULT_INTERARRIVALS,
    variants: Optional[Sequence[ScaleVariant]] = None,
    requests_per_client: int = 200,
    repeats: int = 1,
    seed: int = 0,
    workload_chunk: int = 1024,
    ul_retention: Optional[float] = 15_000.0,
    inbox_ttl: Optional[float] = 20_000.0,
    runner=None,
) -> ScaleFamily:
    """Sweep the offered load per (protocol, variant) pair.

    The whole ``protocols × variants × loads × repeats`` batch goes to
    the runner at once, so ``-j`` parallelism spans the entire family.
    """
    runner = runner if runner is not None else get_default_runner()
    variants = list(variants) if variants is not None else default_variants()
    cells = [
        (protocol, variant, gap, scale_config(
            protocol, variant, gap, requests_per_client,
            seed=seed, workload_chunk=workload_chunk,
            ul_retention=ul_retention, inbox_ttl=inbox_ttl,
        ))
        for protocol in protocols
        for variant in variants
        for gap in interarrivals
    ]
    grouped = runner.run_repeats_many(
        [config for _, _, _, config in cells], repeats
    )
    family = ScaleFamily(
        title=(
            f"SCALE: offered load vs. committed throughput / tail ATT "
            f"({requests_per_client} req/client, streaming accounting)"
        ),
    )
    curves: Dict[Tuple[str, str], ScaleCurve] = {}
    for (protocol, variant, gap, _), results in zip(cells, grouped):
        key = (protocol, variant.label)
        curve = curves.get(key)
        if curve is None:
            curve = curves[key] = ScaleCurve(protocol=protocol,
                                             variant=variant)
            family.curves.append(curve)
        # One client per replica, each submitting at rate 1/gap per ms.
        offered = variant.n_replicas * 1000.0 / gap
        curve.points.append(ScalePoint(
            mean_interarrival=gap,
            offered_load=offered,
            committed=summarize(
                [float(r.committed) for r in results]
            ).mean,
            throughput=summarize([r.throughput for r in results]).mean,
            att=summarize([r.att for r in results]).mean,
            att_p50=summarize([r.att_p50 for r in results]).mean,
            att_p99=summarize([r.att_p99 for r in results]).mean,
            consistent=all(r.audit.consistent for r in results),
        ))
    return family
