"""Parameter sweep helper shared by the figure modules."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import summarize
from repro.experiments.parallel import ParallelRunner, get_default_runner
from repro.experiments.runner import RunConfig, RunResult

__all__ = ["SweepPoint", "sweep"]


class SweepPoint:
    """Aggregated results at one sweep x-value."""

    def __init__(self, x: Any, results: List[RunResult]) -> None:
        self.x = x
        self.results = results

    def metric(self, getter: Callable[[RunResult], float]):
        """Summary over repeats of a scalar metric."""
        return summarize([getter(r) for r in self.results])

    def mean(self, getter: Callable[[RunResult], float]) -> float:
        return self.metric(getter).mean

    def prk_mean(self, k: int) -> float:
        """Mean PRK fraction at K across repeats."""
        values = [r.prk.get(k, 0.0) for r in self.results]
        return float(np.mean(values)) if values else float("nan")

    def all_consistent(self) -> bool:
        return all(r.audit.consistent for r in self.results)

    def __repr__(self) -> str:
        return f"<SweepPoint x={self.x} repeats={len(self.results)}>"


def sweep(
    base: RunConfig,
    param: str,
    values: Sequence[Any],
    repeats: int = 3,
    overrides: Optional[Dict[str, Any]] = None,
    runner: Optional[ParallelRunner] = None,
) -> List[SweepPoint]:
    """Run ``base`` once per value of ``param`` (each with repeats).

    The whole ``len(values) × repeats`` batch goes through the engine
    in one call, so ``--jobs`` parallelism spans the entire sweep.
    """
    runner = runner if runner is not None else get_default_runner()
    configs = [
        base.with_(**{param: value, **(overrides or {})})
        for value in values
    ]
    grouped = runner.run_repeats_many(configs, repeats)
    return [
        SweepPoint(value, results)
        for value, results in zip(values, grouped)
    ]
