"""T1/T2: MARP versus the message-passing protocols.

The paper does not measure the comparison (its §1/§5 claims are
qualitative): MARP "avoids heavy message transmission required by
conventional replication control protocols for achieving the quorum",
and message-passing protocols "may not scale to the world-wide Internet
environment". These experiments quantify both claims over the shared
substrate:

* **T1 (contention/message cost)** — same update workload under every
  protocol on a LAN; report ATT, control messages, bytes, agent
  migrations. Expected: under contention MCV/WV burn multiple voting
  rounds per commit (messages explode, ATT inflates) while MARP's
  queue-based locking stays at one claim round.
* **T2 (WAN scaling)** — same comparison over the heavy-tailed WAN
  profile. Expected: every protocol slows by the latency ratio, but
  retry-round protocols degrade the most; primary-copy is the floor but
  is not fully distributed (and is the availability worst case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.parallel import get_default_runner
from repro.experiments.runner import RunConfig

__all__ = ["ComparisonRow", "ComparisonTable", "run_comparison"]

#: Protocols compared by default (available-copies is reported but its
#: consistency column is expected to show its known weakness under load).
DEFAULT_PROTOCOLS = ("marp", "mcv", "weighted-voting", "primary-copy")


@dataclass
class ComparisonRow:
    """One protocol's aggregate behaviour at one configuration."""

    protocol: str
    latency: str
    mean_interarrival: float
    committed: float
    failed: float
    att: float
    control_messages: float
    control_bytes: float
    agent_migrations: float
    agent_bytes: float
    msgs_per_commit: float
    consistent: bool


@dataclass
class ComparisonTable:
    """The rendered T1/T2 table."""

    title: str
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def text(self) -> str:
        headers = [
            "protocol", "net", "gap(ms)", "committed", "failed", "ATT(ms)",
            "ctl msgs", "ctl KB", "hops", "agent KB", "msgs/commit",
            "consistent",
        ]
        body = [
            [
                r.protocol, r.latency, r.mean_interarrival, r.committed,
                r.failed, r.att, r.control_messages,
                r.control_bytes / 1024.0, r.agent_migrations,
                r.agent_bytes / 1024.0, r.msgs_per_commit, r.consistent,
            ]
            for r in self.rows
        ]
        return format_table(headers, body, title=self.title)

    def row_for(self, protocol: str,
                latency: Optional[str] = None) -> ComparisonRow:
        for row in self.rows:
            if row.protocol == protocol and (
                latency is None or row.latency == latency
            ):
                return row
        raise KeyError(f"no row for {protocol!r}/{latency!r}")


def run_comparison(
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    latencies: Sequence[str] = ("lan",),
    mean_interarrival: float = 30.0,
    n_replicas: int = 5,
    requests_per_client: int = 20,
    repeats: int = 2,
    seed: int = 0,
    title: str = "T1: protocol comparison",
    runner=None,
    **config_overrides,
) -> ComparisonTable:
    """Run every protocol on the identical workload and tabulate.

    All ``len(latencies) × len(protocols) × repeats`` runs are
    dispatched to the experiment engine as one batch.
    """
    runner = runner if runner is not None else get_default_runner()
    table = ComparisonTable(title=title)
    cells = []
    for latency in latencies:
        for protocol in protocols:
            # Fairness: the voting baselines need WAN-scaled timeouts
            # (a LAN-tuned 500 ms lock round would time out against a
            # 40 ms-median heavy-tailed path and overstate MARP's win).
            protocol_kwargs = dict(config_overrides.get("protocol_kwargs", {}))
            if latency == "wan" and protocol in (
                "mcv", "weighted-voting", "available-copies",
            ):
                protocol_kwargs.setdefault("lock_timeout", 3_000.0)
                protocol_kwargs.setdefault("retry_backoff", 200.0)
            if latency == "wan" and protocol == "primary-copy":
                protocol_kwargs.setdefault("write_timeout", 10_000.0)
            overrides = {
                k: v for k, v in config_overrides.items()
                if k != "protocol_kwargs"
            }
            config = RunConfig(
                protocol=protocol,
                latency=latency,
                n_replicas=n_replicas,
                mean_interarrival=mean_interarrival,
                requests_per_client=requests_per_client,
                seed=seed,
                protocol_kwargs=protocol_kwargs,
                **overrides,
            )
            cells.append((protocol, latency, config))

    grouped = runner.run_repeats_many(
        [config for _, _, config in cells], repeats
    )
    for (protocol, latency, _), results in zip(cells, grouped):

        def agg(getter) -> float:
            return summarize([float(getter(r)) for r in results]).mean

        committed = agg(lambda r: r.committed)
        msgs = agg(lambda r: r.total_messages)
        table.rows.append(
            ComparisonRow(
                protocol=protocol,
                latency=latency,
                mean_interarrival=mean_interarrival,
                committed=committed,
                failed=agg(lambda r: r.failed),
                att=agg(lambda r: r.att),
                control_messages=agg(lambda r: r.control_messages),
                control_bytes=agg(lambda r: r.control_bytes),
                agent_migrations=agg(lambda r: r.agent_migrations),
                agent_bytes=agg(lambda r: r.agent_bytes),
                msgs_per_commit=(
                    msgs / committed if committed else float("nan")
                ),
                consistent=all(r.audit.consistent for r in results),
            )
        )
    return table
