"""X1: throughput and saturation (extension experiment).

The paper reports latencies only; this experiment characterises the
update *throughput* of the single-object lock as the offered load grows:
achieved commits/second versus offered requests/second, plus the latency
blow-up past the saturation knee. A single serialised lock has a hard
service ceiling of roughly ``1 / handoff_time``; offered load beyond it
queues. This quantifies when MARP's one-lock-per-object design needs the
batching knob (A3) or object partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.experiments.runner import RunConfig
from repro.experiments.sweeps import sweep

__all__ = ["ThroughputTable", "run_throughput"]


@dataclass
class ThroughputTable:
    """Offered versus achieved update rate."""

    title: str
    headers: List[str] = field(default_factory=lambda: [
        "gap(ms)", "offered/s", "achieved/s", "utilisation", "ALT(ms)",
        "consistent",
    ])
    rows: List[List] = field(default_factory=list)

    @property
    def text(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)

    def achieved(self) -> List[float]:
        return [row[2] for row in self.rows]

    def offered(self) -> List[float]:
        return [row[1] for row in self.rows]


def run_throughput(
    interarrivals: Sequence[float] = (10.0, 20.0, 40.0, 80.0, 160.0),
    n_replicas: int = 5,
    requests_per_client: int = 20,
    repeats: int = 2,
    seed: int = 0,
    runner=None,
) -> ThroughputTable:
    """Sweep the offered load and measure achieved commit throughput."""
    table = ThroughputTable(
        title=f"X1: update throughput, {n_replicas} replicas (LAN)",
    )
    base = RunConfig(
        n_replicas=n_replicas,
        requests_per_client=requests_per_client,
        seed=seed,
    )
    points = sweep(
        base, "mean_interarrival", interarrivals, repeats, runner=runner
    )
    for point in points:
        gap, results = point.x, point.results
        offered = 1000.0 * n_replicas / gap  # requests/s cluster-wide
        achieved = summarize([r.throughput for r in results]).mean
        table.rows.append([
            gap,
            offered,
            achieved,
            achieved / offered if offered else float("nan"),
            summarize([r.alt for r in results]).mean,
            all(r.audit.consistent for r in results),
        ])
    return table
