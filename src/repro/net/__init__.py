"""Wide-area network substrate.

Hosts, weighted topologies with routing tables, pluggable latency models
(LAN and WAN profiles), crash/link fault injection, asynchronous
message delivery and traffic accounting. Simulated time is in
**milliseconds** throughout.
"""

from repro.net.faults import CrashSchedule, FaultPlan, TransientLinkFaults
from repro.net.latency import (
    BandwidthLatency,
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LatencyModel,
    LogNormalLatency,
    PairwiseLatency,
    ScaledLatency,
    UniformLatency,
    lan_profile,
    wan_profile,
)
from repro.net.message import HEADER_BYTES, Message, estimate_size
from repro.net.network import Endpoint, Network
from repro.net.stats import NetworkStats
from repro.net.topology import Topology

__all__ = [
    "Message",
    "estimate_size",
    "HEADER_BYTES",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "EmpiricalLatency",
    "BandwidthLatency",
    "ScaledLatency",
    "PairwiseLatency",
    "lan_profile",
    "wan_profile",
    "Topology",
    "CrashSchedule",
    "TransientLinkFaults",
    "FaultPlan",
    "Network",
    "Endpoint",
    "NetworkStats",
]
