"""Failure injection: host crash windows and transient link faults.

The paper's fault model (§2): processes are fail-stop and may recover;
the Internet shows "frequent short transient failures but rare long
transient failures". We model

* **crash windows** — a host is down during ``[down_at, up_at)``; it
  receives nothing and sends nothing while down;
* **transient link faults** — an individual transmission (message or
  agent migration) independently fails with a configurable probability,
  or during scheduled link outage windows.

Failed migrations surface to the agent platform which applies the paper's
retry-then-declare-unavailable policy.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.errors import NetworkError
from repro.sim.rng import Stream

__all__ = ["CrashSchedule", "TransientLinkFaults", "FaultPlan"]


class CrashSchedule:
    """Per-host down-time windows.

    Windows for a host must be non-overlapping; they are kept sorted so
    queries are O(log n).
    """

    def __init__(self) -> None:
        self._windows: Dict[str, List[Tuple[float, float]]] = {}

    def add(self, host: str, down_at: float, up_at: float) -> "CrashSchedule":
        if down_at < 0 or up_at <= down_at:
            raise NetworkError(
                f"invalid crash window for {host!r}: [{down_at}, {up_at})"
            )
        windows = self._windows.setdefault(host, [])
        windows.append((down_at, up_at))
        windows.sort()
        for (s1, e1), (s2, _e2) in zip(windows, windows[1:]):
            if s2 < e1:
                raise NetworkError(f"overlapping crash windows for {host!r}")
        return self

    def is_up(self, host: str, time: float) -> bool:
        windows = self._windows.get(host)
        if not windows:
            return True
        index = bisect.bisect_right(windows, (time, float("inf"))) - 1
        if index < 0:
            return True
        down_at, up_at = windows[index]
        return not (down_at <= time < up_at)

    def next_recovery(self, host: str, time: float) -> Optional[float]:
        """When the host comes back up, if it is currently down."""
        windows = self._windows.get(host)
        if not windows:
            return None
        for down_at, up_at in windows:
            if down_at <= time < up_at:
                return up_at
        return None

    def hosts_with_faults(self) -> List[str]:
        return sorted(self._windows)

    def windows(self, host: str) -> List[Tuple[float, float]]:
        """All crash windows scheduled for ``host`` (sorted)."""
        return list(self._windows.get(host, ()))

    def payload(self) -> Dict[str, List[List[float]]]:
        """Stable JSON-serialisable description (for cache keys)."""
        return {
            host: [[down_at, up_at] for down_at, up_at in windows]
            for host, windows in sorted(self._windows.items())
        }

    def __repr__(self) -> str:
        n = sum(len(w) for w in self._windows.values())
        return f"<CrashSchedule hosts={len(self._windows)} windows={n}>"


class TransientLinkFaults:
    """Bernoulli per-transmission link failure plus outage windows."""

    def __init__(self, drop_probability: float = 0.0) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise NetworkError(
                f"drop probability must be in [0, 1): {drop_probability}"
            )
        self.drop_probability = drop_probability
        self._outages: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}

    def add_outage(
        self, src: str, dst: str, start: float, end: float
    ) -> "TransientLinkFaults":
        """Schedule a bidirectional link outage during ``[start, end)``."""
        if start < 0 or end <= start:
            raise NetworkError(f"invalid outage window [{start}, {end})")
        for key in ((src, dst), (dst, src)):
            self._outages.setdefault(key, []).append((start, end))
            self._outages[key].sort()
        return self

    def add_partition(
        self, side_a, side_b, start: float, end: float
    ) -> "TransientLinkFaults":
        """Cut every link between two host groups during ``[start, end)``.

        The classic network partition: hosts within each side still talk,
        nothing crosses the cut. Voting protocols survive this (at most
        one side holds a majority); Available Copies famously does not.
        """
        side_a, side_b = list(side_a), list(side_b)
        if not side_a or not side_b:
            raise NetworkError("both partition sides must be non-empty")
        overlap = set(side_a) & set(side_b)
        if overlap:
            raise NetworkError(f"hosts on both sides: {sorted(overlap)}")
        for a in side_a:
            for b in side_b:
                self.add_outage(a, b, start, end)
        return self

    def transmission_fails(
        self, src: str, dst: str, time: float, stream: Stream
    ) -> bool:
        """Decide the fate of one transmission attempt."""
        windows = self._outages.get((src, dst))
        if windows:
            for start, end in windows:
                if start <= time < end:
                    return True
        if self.drop_probability and stream.random() < self.drop_probability:
            return True
        return False

    def payload(self) -> Dict:
        """Stable JSON-serialisable description (for cache keys)."""
        return {
            "drop_probability": self.drop_probability,
            "outages": {
                f"{src}->{dst}": [[start, end] for start, end in windows]
                for (src, dst), windows in sorted(self._outages.items())
            },
        }

    def __repr__(self) -> str:
        return (
            f"<TransientLinkFaults p={self.drop_probability} "
            f"outages={sum(len(w) for w in self._outages.values())}>"
        )


class FaultPlan:
    """Bundle of crash schedule + link faults injected into a Network."""

    def __init__(
        self,
        crashes: Optional[CrashSchedule] = None,
        links: Optional[TransientLinkFaults] = None,
    ) -> None:
        self.crashes = crashes or CrashSchedule()
        self.links = links or TransientLinkFaults()

    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan with no faults (the default)."""
        return cls()

    def host_up(self, host: str, time: float) -> bool:
        return self.crashes.is_up(host, time)

    def transmission_fails(
        self, src: str, dst: str, time: float, stream: Stream
    ) -> bool:
        return self.links.transmission_fails(src, dst, time, stream)

    def payload(self) -> Dict:
        """Stable JSON-serialisable description of the full plan.

        Two plans with identical crash windows and link faults produce
        identical payloads; any change to any window, probability or
        outage changes the payload. The experiment result cache keys on
        this.
        """
        return {
            "crashes": self.crashes.payload(),
            "links": self.links.payload(),
        }

    def __repr__(self) -> str:
        return f"FaultPlan({self.crashes!r}, {self.links!r})"
