"""Link latency models.

The simulation clock is in **milliseconds** throughout the library (the
paper's evaluation axes are milliseconds). A latency model answers "how
long does a transmission of ``size_bytes`` from ``src`` to ``dst`` take",
optionally scaled by the topology's per-link cost.

Two calibrated profiles bracket the paper's settings:

* :func:`lan_profile` — the prototype's testbed: a LAN of SUN
  workstations; small jittery per-hop delays, high bandwidth.
* :func:`wan_profile` — the Internet environment the paper argues MARP is
  designed for: long heavy-tailed latency (lognormal), lower bandwidth.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.errors import NetworkError
from repro.sim.rng import Stream

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "LogNormalLatency",
    "EmpiricalLatency",
    "BandwidthLatency",
    "ScaledLatency",
    "PairwiseLatency",
    "RegionalLatency",
    "lan_profile",
    "wan_profile",
    "hybrid_profile",
]


class LatencyModel:
    """Base class: maps a transmission to a delay in milliseconds."""

    def sample(
        self, src: str, dst: str, size_bytes: int, stream: Stream
    ) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def __add__(self, other: "LatencyModel") -> "LatencyModel":
        return _SumLatency(self, other)


class _SumLatency(LatencyModel):
    """Sum of two latency components (e.g. propagation + transfer)."""

    def __init__(self, first: LatencyModel, second: LatencyModel) -> None:
        self.first = first
        self.second = second

    def sample(self, src, dst, size_bytes, stream) -> float:
        return self.first.sample(src, dst, size_bytes, stream) + (
            self.second.sample(src, dst, size_bytes, stream)
        )

    def __repr__(self) -> str:
        return f"({self.first!r} + {self.second!r})"


class ConstantLatency(LatencyModel):
    """Fixed one-way delay, independent of size."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise NetworkError(f"latency must be >= 0: {delay}")
        self.delay = delay

    def sample(self, src, dst, size_bytes, stream) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise NetworkError(f"invalid uniform range: [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, src, dst, size_bytes, stream) -> float:
        return stream.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Minimum delay plus an exponential tail."""

    def __init__(self, mean: float, minimum: float = 0.0) -> None:
        if mean < 0 or minimum < 0:
            raise NetworkError("exponential latency parameters must be >= 0")
        self.mean = mean
        self.minimum = minimum

    def sample(self, src, dst, size_bytes, stream) -> float:
        return self.minimum + stream.exponential(self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency(mean={self.mean}, min={self.minimum})"


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delay typical of wide-area paths.

    Parameterised by the *median* delay and the log-space ``sigma``; the
    underlying normal mean is ``ln(median)``.
    """

    def __init__(
        self, median: float, sigma: float = 0.5, minimum: float = 0.0
    ) -> None:
        if median <= 0 or sigma < 0 or minimum < 0:
            raise NetworkError("invalid lognormal latency parameters")
        self.median = median
        self.sigma = sigma
        self.minimum = minimum

    def sample(self, src, dst, size_bytes, stream) -> float:
        return self.minimum + stream.lognormal(math.log(self.median), self.sigma)

    def __repr__(self) -> str:
        return (
            f"LogNormalLatency(median={self.median}, sigma={self.sigma}, "
            f"min={self.minimum})"
        )


class EmpiricalLatency(LatencyModel):
    """Trace-driven delays: resample from measured one-way latencies.

    Feed it RTT/2 samples from real probes (ping logs, King/RIPE-style
    datasets) and the simulation reproduces their full distribution —
    multimodality, tails and all — rather than a parametric fit.
    """

    def __init__(self, samples) -> None:
        import numpy as np

        data = np.asarray(list(samples), dtype=float)
        if data.size == 0:
            raise NetworkError("empirical latency needs at least one sample")
        if np.any(data < 0) or np.any(~np.isfinite(data)):
            raise NetworkError("latency samples must be finite and >= 0")
        self.samples = data

    def sample(self, src, dst, size_bytes, stream) -> float:
        index = stream.integers(0, len(self.samples))
        return float(self.samples[index])

    def __repr__(self) -> str:
        return f"EmpiricalLatency(n={len(self.samples)})"


class BandwidthLatency(LatencyModel):
    """Size-dependent transfer time: ``size_bytes / bandwidth``.

    ``bandwidth`` is in bytes per millisecond (so 1e4 = 10 MB/s).
    Typically composed with a propagation model via ``+``.
    """

    def __init__(self, bandwidth: float) -> None:
        if bandwidth <= 0:
            raise NetworkError(f"bandwidth must be > 0: {bandwidth}")
        self.bandwidth = bandwidth

    def sample(self, src, dst, size_bytes, stream) -> float:
        return size_bytes / self.bandwidth

    def __repr__(self) -> str:
        return f"BandwidthLatency({self.bandwidth} B/ms)"


class ScaledLatency(LatencyModel):
    """Scales another model by a per-call factor function.

    Used by :class:`~repro.net.network.Network` to scale base latency by
    the topology's link cost, so "distant" replicas really are slower —
    the property the paper's cost-sorted itineraries exploit.
    """

    def __init__(self, base: LatencyModel, scale) -> None:
        self.base = base
        self.scale = scale  # callable (src, dst) -> float

    def sample(self, src, dst, size_bytes, stream) -> float:
        return self.base.sample(src, dst, size_bytes, stream) * float(
            self.scale(src, dst)
        )

    def __repr__(self) -> str:
        return f"ScaledLatency({self.base!r})"


class PairwiseLatency(LatencyModel):
    """Explicit per-(src, dst) models with a default fallback."""

    def __init__(
        self,
        default: LatencyModel,
        overrides: Optional[Dict[Tuple[str, str], LatencyModel]] = None,
    ) -> None:
        self.default = default
        self.overrides = dict(overrides or {})

    def set(self, src: str, dst: str, model: LatencyModel) -> None:
        self.overrides[(src, dst)] = model

    def sample(self, src, dst, size_bytes, stream) -> float:
        model = self.overrides.get((src, dst), self.default)
        return model.sample(src, dst, size_bytes, stream)

    def __repr__(self) -> str:
        return f"PairwiseLatency(default={self.default!r}, n_overrides={len(self.overrides)})"


class RegionalLatency(LatencyModel):
    """Region-aware delays: LAN-like within a region, WAN-like across.

    ``region_of`` maps a host name to a region label; a pair in the same
    region samples ``intra``, any other pair samples ``inter``. This is
    the geo-topology building block for hundreds-of-replicas sweeps: a
    handful of datacenters, cheap inside, expensive between.
    """

    def __init__(
        self, region_of, intra: LatencyModel, inter: LatencyModel
    ) -> None:
        self.region_of = region_of  # callable (host) -> hashable label
        self.intra = intra
        self.inter = inter

    def sample(self, src, dst, size_bytes, stream) -> float:
        region_of = self.region_of
        model = self.intra if region_of(src) == region_of(dst) else self.inter
        return model.sample(src, dst, size_bytes, stream)

    def __repr__(self) -> str:
        return f"RegionalLatency(intra={self.intra!r}, inter={self.inter!r})"


def lan_profile() -> LatencyModel:
    """Calibrated LAN: ~1–3 ms propagation + 10 MB/s transfer.

    Matches the character of the paper's testbed (Solaris workstations on
    a local network): a small agent (~2 KB) hop costs ≈ 2–4 ms, a control
    message ≈ 1–3 ms.
    """
    return UniformLatency(1.0, 3.0) + BandwidthLatency(1e4)


def wan_profile() -> LatencyModel:
    """Calibrated WAN: heavy-tailed ~40 ms median + 1 MB/s transfer.

    Matches the Internet characteristics the paper cites (long, variable
    communication latency).
    """
    return LogNormalLatency(median=40.0, sigma=0.5, minimum=5.0) + (
        BandwidthLatency(1e3)
    )


#: Regions a :func:`hybrid_profile` deployment is split into.
HYBRID_REGIONS = 3


def _hybrid_region(host: str) -> int:
    """Region of a ``s<N>`` host: round-robin over :data:`HYBRID_REGIONS`.

    Hosts without a numeric suffix hash by name, so arbitrary host sets
    still split deterministically.
    """
    digits = "".join(ch for ch in host if ch.isdigit())
    if digits:
        return int(digits) % HYBRID_REGIONS
    return sum(host.encode("utf-8")) % HYBRID_REGIONS


def hybrid_profile() -> LatencyModel:
    """Geo-distributed hybrid: LAN inside a region, WAN across regions.

    Replicas ``s1..sN`` round-robin into :data:`HYBRID_REGIONS` regions
    (so region peers are spread, not clustered, across the numeric
    range); intra-region pairs see the :func:`lan_profile` character,
    cross-region pairs the :func:`wan_profile` one.
    """
    return RegionalLatency(
        _hybrid_region,
        intra=UniformLatency(1.0, 3.0) + BandwidthLatency(1e4),
        inter=LogNormalLatency(median=40.0, sigma=0.5, minimum=5.0)
        + BandwidthLatency(1e3),
    )
