"""Message representation and payload size accounting.

All traffic in the simulated network — control messages *and* migrating
agents — is carried as :class:`Message` objects. Sizes are estimated
structurally (not by pickling) so accounting is cheap and deterministic;
protocols that know better can pass ``size_bytes`` explicitly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "estimate_size", "HEADER_BYTES"]

#: Fixed per-message header overhead (addresses, kind, ids) in bytes.
HEADER_BYTES = 64

_msg_counter = itertools.count(1)


def estimate_size(payload: Any) -> int:
    """Rough, deterministic wire-size estimate of a payload in bytes.

    The estimate follows simple structural rules (8 bytes per number,
    UTF-8 length for strings, recursive sum plus container overhead).
    Objects exposing ``wire_size()`` report their own size — agents use
    this to account for their carried state.

    Exact builtin types are dispatched up front (they can never carry a
    ``wire_size`` method, so this is pure reordering): the recursion
    spends most of its time on the ints, strings and containers inside
    ``SharedView`` payloads, and the old leading ``getattr`` probe cost
    one failed attribute lookup per scalar.
    """
    if payload is None:
        return 0
    cls = payload.__class__
    if cls is int or cls is float:
        return 8
    if cls is str:
        return len(payload.encode("utf-8"))
    if cls is bool:
        return 1
    if cls is dict:
        return 16 + sum(
            estimate_size(k) + estimate_size(v) for k, v in payload.items()
        )
    if cls is list or cls is tuple or cls is set or cls is frozenset:
        return 16 + sum(estimate_size(item) for item in payload)
    if cls is bytes:
        return len(payload)
    wire_size = getattr(payload, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return 16 + sum(
            estimate_size(k) + estimate_size(v) for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 16 + sum(estimate_size(item) for item in payload)
    # Dataclass-like objects: account their public attribute dict.
    attrs = getattr(payload, "__dict__", None)
    if attrs is not None:
        return 16 + sum(
            estimate_size(v) for k, v in attrs.items() if not k.startswith("_")
        )
    slots = getattr(payload, "__slots__", None)
    if slots is not None:
        return 16 + sum(
            estimate_size(getattr(payload, name, None))
            for name in slots
            if not name.startswith("_")
        )
    return 32  # opaque object fallback


@dataclass
class Message:
    """A single network transmission.

    Attributes
    ----------
    src, dst:
        Host names.
    kind:
        Protocol-level message type (e.g. ``"UPDATE"``, ``"ACK"``,
        ``"AGENT"``).
    payload:
        Arbitrary protocol data.
    size_bytes:
        Wire size including header; estimated from the payload when not
        given.
    category:
        Accounting bucket (``"control"``, ``"agent"``, ``"data"``).
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    size_bytes: int = 0
    category: str = "control"
    msg_id: int = field(default_factory=lambda: next(_msg_counter))
    sent_at: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            self.size_bytes = HEADER_BYTES + estimate_size(self.payload)

    def __repr__(self) -> str:
        return (
            f"<Message #{self.msg_id} {self.kind} {self.src}->{self.dst} "
            f"{self.size_bytes}B>"
        )
