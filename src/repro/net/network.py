"""The asynchronous message-passing network.

Semantics follow the paper's system model (§2): logical channels are
asynchronous with unpredictable but finite delays; processes are
fail-stop. Concretely:

* :meth:`Network.send` is non-blocking; delivery happens after a delay
  drawn from the latency model, optionally scaled by the topology cost of
  the (src, dst) pair.
* Messages to a crashed host are silently dropped (fail-stop: the host
  neither receives nor responds; senders use timeouts).
* Transient link faults drop individual transmissions; reliable unicast
  for control traffic is approximated by the protocols' own
  timeout-and-retry logic, and agent *migrations* surface failures to the
  platform's retry policy (paper §2).

Every host gets an :class:`Endpoint` with a filterable inbox; processes
receive with ``yield endpoint.receive(kind="ACK")``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import MigrationError, NetworkError
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel, lan_profile
from repro.net.message import Message
from repro.net.stats import NetworkStats
from repro.net.topology import Topology
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams
from repro.sim.stores import FilterStore

__all__ = ["Network", "Endpoint"]


class Endpoint:
    """A host's attachment point: inbox plus convenience senders."""

    #: Don't bother reaping inboxes shorter than this.
    REAP_MIN_BACKLOG = 32

    def __init__(self, network: "Network", host: str) -> None:
        self.network = network
        self.host = host
        self.inbox: FilterStore = FilterStore(network.env)
        #: expired messages dropped by inbox hygiene (see maybe_reap)
        self.reaped = 0
        self._next_reap = 0.0

    def maybe_reap(self) -> int:
        """Drop delivered-but-unclaimed messages older than the
        network's ``inbox_ttl``; returns how many were dropped.

        A message still sitting in the inbox is one that *no registered
        waiter matched at delivery time* — under this codebase's
        protocols every consumer registers its receive in the same
        zero-delay instant it triggers the reply, so an unclaimed
        message that has outlived every protocol timeout is dead (the
        classic case: ACK/NACKs for a claim round the agent abandoned
        at its deadline). Without hygiene those corpses accumulate
        without bound and every filtered receive scans past all of
        them — quadratic wall time on long runs. The reap is amortised
        (only on delivery, only past :data:`REAP_MIN_BACKLOG`, at most
        every ``ttl/4``) and purely a function of simulation state, so
        runs stay bit-deterministic per seed.
        """
        ttl = self.network.inbox_ttl
        if ttl is None:
            return 0
        items = self.inbox.items
        now = self.network.env.now
        if len(items) < self.REAP_MIN_BACKLOG or now < self._next_reap:
            return 0
        self._next_reap = now + ttl / 4.0
        cutoff = now - ttl
        kept = deque(m for m in items if m.sent_at >= cutoff)
        dropped = len(items) - len(kept)
        if dropped:
            self.inbox.items = kept
            self.reaped += dropped
            self.network.stats.record_expired(dropped)
        return dropped

    def receive(
        self,
        kind: Optional[str] = None,
        match: Optional[Callable[[Message], bool]] = None,
    ):
        """Event that fires with the next matching message.

        Without arguments, receives the oldest queued message of any kind.
        """
        if kind is None and match is None:
            return self.inbox.get()

        def _filter(msg: Message) -> bool:
            if kind is not None and msg.kind != kind:
                return False
            if match is not None and not match(msg):
                return False
            return True

        return self.inbox.get(_filter)

    def send(
        self,
        dst: str,
        kind: str,
        payload: Any = None,
        category: str = "control",
        size_bytes: int = 0,
    ) -> Message:
        """Fire-and-forget unicast."""
        msg = Message(
            src=self.host,
            dst=dst,
            kind=kind,
            payload=payload,
            category=category,
            size_bytes=size_bytes,
        )
        self.network.send(msg)
        return msg

    def multicast(
        self,
        dsts: Iterable[str],
        kind: str,
        payload: Any = None,
        category: str = "control",
    ) -> List[Message]:
        """One unicast per destination (excluding self unless listed)."""
        return [self.send(dst, kind, payload, category) for dst in dsts]

    def broadcast(
        self, kind: str, payload: Any = None, category: str = "control",
        include_self: bool = False,
    ) -> List[Message]:
        """Unicast to every registered host (optionally including self)."""
        dsts = [
            host
            for host in self.network.endpoints
            if include_self or host != self.host
        ]
        return self.multicast(dsts, kind, payload, category)

    @property
    def pending(self) -> int:
        """Number of queued, unreceived messages."""
        return len(self.inbox.items)

    def __repr__(self) -> str:
        return f"<Endpoint {self.host!r} pending={self.pending}>"


class Network:
    """Simulated wide-area network binding topology, latency and faults.

    Parameters
    ----------
    env:
        Simulation environment (clock in milliseconds).
    topology:
        Host graph with link costs.
    latency:
        Latency model for all traffic; default :func:`lan_profile`.
    faults:
        Crash windows and link faults; default none.
    streams:
        Random streams (for latency jitter and fault draws).
    scale_by_cost:
        When true (default), sampled delays are multiplied by the
        topology's (src, dst) cost, making "distant" hosts slower.
    fifo_links:
        When true, messages on the same (src, dst) link are delivered in
        send order (TCP-like ordered channels): a message whose sampled
        delay would let it overtake an earlier one is held back to the
        earlier one's arrival instant. Default false — the paper's model
        only promises reliability, not ordering, and the protocols must
        (and do) tolerate reordering.
    """

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        latency: Optional[LatencyModel] = None,
        faults: Optional[FaultPlan] = None,
        streams: Optional[RandomStreams] = None,
        scale_by_cost: bool = True,
        fifo_links: bool = False,
        inbox_ttl: Optional[float] = None,
    ) -> None:
        self.env = env
        self.topology = topology
        self.latency = latency if latency is not None else lan_profile()
        self.faults = faults or FaultPlan.none()
        self.streams = streams or RandomStreams(0)
        self.scale_by_cost = scale_by_cost
        self.fifo_links = fifo_links
        if inbox_ttl is not None and inbox_ttl <= 0:
            raise NetworkError(f"inbox_ttl must be positive: {inbox_ttl}")
        #: Inbox hygiene window (ms): delivered messages unclaimed for
        #: longer than this are reaped (see Endpoint.maybe_reap).
        #: None (default) keeps every unclaimed message forever — the
        #: exact historical semantics.
        self.inbox_ttl = inbox_ttl
        self.stats = NetworkStats()
        self.endpoints: Dict[str, Endpoint] = {}
        self._latency_stream = self.streams.stream("net.latency")
        self._fault_stream = self.streams.stream("net.faults")
        # per-(src, dst) arrival horizon used by fifo_links
        self._link_horizon: Dict[tuple, float] = {}

    # -- observability -----------------------------------------------------

    def attach_observability(self, hub) -> None:
        """Bridge traffic accounting into an ObservabilityHub.

        Delegates to :meth:`NetworkStats.bind_hub`; every subsequent
        send/drop (messages and agent migrations alike) lands in the
        hub's labelled ``net_*`` counters as well as :attr:`stats`.
        """
        self.stats.bind_hub(hub)

    # -- membership --------------------------------------------------------

    def register(self, host: str) -> Endpoint:
        """Attach a host; returns its endpoint."""
        if host not in self.topology:
            raise NetworkError(f"host {host!r} is not in the topology")
        if host in self.endpoints:
            raise NetworkError(f"host {host!r} is already registered")
        endpoint = Endpoint(self, host)
        self.endpoints[host] = endpoint
        return endpoint

    def host_up(self, host: str) -> bool:
        """Is the host currently alive (per the fault plan)?"""
        return self.faults.host_up(host, self.env.now)

    # -- delays --------------------------------------------------------------

    def sample_delay(self, src: str, dst: str, size_bytes: int) -> float:
        """One latency draw for a (src, dst, size) transmission."""
        delay = self.latency.sample(src, dst, size_bytes, self._latency_stream)
        if self.scale_by_cost and src != dst:
            delay *= self.topology.cost(src, dst)
        return delay

    # -- messaging -------------------------------------------------------------

    def send(self, msg: Message) -> None:
        """Asynchronously transmit ``msg``; never blocks the sender."""
        msg.sent_at = self.env.now
        self.stats.record_send(msg.category, msg.kind, msg.size_bytes)

        if msg.dst not in self.endpoints:
            raise NetworkError(f"unknown destination host {msg.dst!r}")
        if not self.host_up(msg.src):
            # A crashed host cannot send; account and drop.
            self.stats.record_drop(msg.category, msg.kind)
            return
        if msg.src != msg.dst and self.faults.transmission_fails(
            msg.src, msg.dst, self.env.now, self._fault_stream
        ):
            self.stats.record_drop(msg.category, msg.kind)
            return

        delay = 0.0 if msg.src == msg.dst else self.sample_delay(
            msg.src, msg.dst, msg.size_bytes
        )
        if self.fifo_links and msg.src != msg.dst:
            link = (msg.src, msg.dst)
            arrival = max(
                self.env.now + delay, self._link_horizon.get(link, 0.0)
            )
            self._link_horizon[link] = arrival
            delay = arrival - self.env.now
        self.env.process(self._deliver(msg, delay), name=f"deliver-{msg.kind}")

    def _deliver(self, msg: Message, delay: float):
        if delay > 0:
            yield self.env.timeout(delay)
        if not self.host_up(msg.dst):
            # Fail-stop destination: the message vanishes.
            self.stats.record_drop(msg.category, msg.kind)
            return
        # Re-fetch: the destination cannot have unregistered, but keep the
        # lookup close to delivery for symmetry with live backends.
        endpoint = self.endpoints[msg.dst]
        endpoint.inbox.put(msg)
        if self.inbox_ttl is not None:
            endpoint.maybe_reap()

    # -- agent migration ------------------------------------------------------

    def attempt_transfer(
        self,
        src: str,
        dst: str,
        size_bytes: int,
        timeout: float,
        kind: str = "AGENT",
    ):
        """Sub-generator performing one migration attempt.

        Use from a process as ``yield from network.attempt_transfer(...)``.
        On success it simply returns after the sampled transfer delay; on
        failure (link fault at departure, or destination down at arrival)
        it waits out ``timeout`` — the paper's failure-detection delay —
        and raises :class:`MigrationError`.
        """
        self.stats.record_send("agent", kind, size_bytes)
        failed_at_send = (
            not self.host_up(src)
            or (
                src != dst
                and self.faults.transmission_fails(
                    src, dst, self.env.now, self._fault_stream
                )
            )
        )
        if failed_at_send:
            self.stats.record_drop("agent", kind)
            yield self.env.timeout(timeout)
            raise MigrationError(
                f"migration {src}->{dst} lost in transit", destination=dst
            )

        delay = 0.0 if src == dst else self.sample_delay(src, dst, size_bytes)
        if delay > timeout:
            # The receiver would see the agent too late; the sender's
            # detector fires first.
            yield self.env.timeout(timeout)
            raise MigrationError(
                f"migration {src}->{dst} timed out after {timeout}ms",
                destination=dst,
            )
        if delay > 0:
            yield self.env.timeout(delay)
        if not self.host_up(dst):
            self.stats.record_drop("agent", kind)
            remaining = max(0.0, timeout - delay)
            if remaining > 0:
                yield self.env.timeout(remaining)
            raise MigrationError(
                f"destination {dst} is down", destination=dst
            )
        return None

    def __repr__(self) -> str:
        return (
            f"<Network hosts={len(self.endpoints)} latency={self.latency!r} "
            f"now={self.env.now}>"
        )
