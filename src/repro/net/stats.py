"""Traffic accounting.

Counts messages and bytes by category and kind; the comparison
experiments (T1/T2 in DESIGN.md) are built on these counters, which is
how we quantify the paper's claim that MARP "avoids heavy message
transmission".
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

__all__ = ["NetworkStats"]


class NetworkStats:
    """Message/byte counters, by (category, kind).

    When an :class:`~repro.obs.hub.ObservabilityHub` is bound (see
    :meth:`bind_hub`), every send/drop is mirrored into the hub's
    labelled ``net_*`` counter families. The hub's counters are
    cumulative across runs and are intentionally not touched by
    :meth:`merge`/:meth:`clear`, which manage only the local tallies.
    """

    def __init__(self) -> None:
        self.messages: Counter = Counter()
        self.bytes: Counter = Counter()
        self.dropped: Counter = Counter()
        self.expired = 0
        self._hub = None

    # -- observability -----------------------------------------------------

    def bind_hub(self, hub) -> None:
        """Mirror traffic accounting into an observability hub."""
        if hub is None or not getattr(hub, "enabled", False):
            return
        self._hub = hub
        labels = ("category", "kind")
        self._obs_messages = hub.counter(
            "net_messages_total", "messages handed to the network", labels
        )
        self._obs_bytes = hub.counter(
            "net_bytes_total", "payload bytes handed to the network", labels
        )
        self._obs_dropped = hub.counter(
            "net_dropped_total", "messages dropped (crash/link fault)",
            labels,
        )
        self._obs_expired = hub.counter(
            "net_expired_total",
            "unclaimed messages reaped by inbox hygiene",
            (),
        )

    # -- recording --------------------------------------------------------

    def record_send(self, category: str, kind: str, size_bytes: int) -> None:
        key = (category, kind)
        self.messages[key] += 1
        self.bytes[key] += size_bytes
        if self._hub is not None:
            self._obs_messages.inc(category=category, kind=kind)
            self._obs_bytes.inc(size_bytes, category=category, kind=kind)

    def record_drop(self, category: str, kind: str) -> None:
        self.dropped[(category, kind)] += 1
        if self._hub is not None:
            self._obs_dropped.inc(category=category, kind=kind)

    def record_expired(self, count: int = 1) -> None:
        """Delivered-but-never-claimed messages reaped by inbox
        hygiene (distinct from :meth:`record_drop`: these *arrived*)."""
        self.expired += count
        if self._hub is not None:
            self._obs_expired.inc(count)

    # -- queries -----------------------------------------------------------

    def total_messages(self, category: Optional[str] = None) -> int:
        if category is None:
            return sum(self.messages.values())
        return sum(
            count for (cat, _), count in self.messages.items() if cat == category
        )

    def total_bytes(self, category: Optional[str] = None) -> int:
        if category is None:
            return sum(self.bytes.values())
        return sum(
            count for (cat, _), count in self.bytes.items() if cat == category
        )

    def total_dropped(self) -> int:
        return sum(self.dropped.values())

    def by_kind(self) -> Dict[str, Tuple[int, int]]:
        """``kind -> (messages, bytes)`` aggregated over categories."""
        out: Dict[str, Tuple[int, int]] = {}
        for (cat, kind), count in self.messages.items():
            m, b = out.get(kind, (0, 0))
            out[kind] = (m + count, b + self.bytes[(cat, kind)])
        return out

    def merge(self, other: "NetworkStats") -> "NetworkStats":
        self.messages.update(other.messages)
        self.bytes.update(other.bytes)
        self.dropped.update(other.dropped)
        self.expired += other.expired
        return self

    def rows(self) -> List[Tuple[str, str, int, int]]:
        """Sorted ``(category, kind, messages, bytes)`` rows for reports."""
        return sorted(
            (cat, kind, count, self.bytes[(cat, kind)])
            for (cat, kind), count in self.messages.items()
        )

    def clear(self) -> None:
        self.messages.clear()
        self.bytes.clear()
        self.dropped.clear()

    def __repr__(self) -> str:
        return (
            f"<NetworkStats msgs={self.total_messages()} "
            f"bytes={self.total_bytes()} dropped={self.total_dropped()}>"
        )
