"""Network topology: hosts, link costs, and routing tables.

The paper assumes "each server has a routing table containing the cost of
transferring a mobile agent from the local server to another server";
visiting agents sort their Un-visited Server List by this cost. A
:class:`Topology` provides exactly that: a weighted graph over host names
with all-pairs shortest-path costs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import networkx as nx

from repro.errors import HostUnreachable, NetworkError
from repro.sim.rng import Stream

__all__ = ["Topology"]


class Topology:
    """Weighted host graph with cached routing tables.

    Parameters
    ----------
    graph:
        An undirected :class:`networkx.Graph` whose nodes are host names
        and whose edges carry a positive ``cost`` attribute.
    """

    def __init__(self, graph: nx.Graph) -> None:
        if graph.number_of_nodes() == 0:
            raise NetworkError("topology must contain at least one host")
        for u, v, data in graph.edges(data=True):
            cost = data.get("cost", 1.0)
            if cost <= 0:
                raise NetworkError(f"link cost must be > 0: {u}-{v} ({cost})")
            data["cost"] = float(cost)
        self.graph = graph
        self._routes: Optional[Dict[str, Dict[str, float]]] = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def full_mesh(
        cls,
        hosts: Sequence[str],
        cost: float = 1.0,
        jitter: float = 0.0,
        stream: Optional[Stream] = None,
    ) -> "Topology":
        """Complete graph; optional uniform cost jitter in ``±jitter``.

        This is the paper's implicit topology: every replicated server can
        reach every other directly.
        """
        if jitter and stream is None:
            raise NetworkError("cost jitter requires a random stream")
        g = nx.Graph()
        g.add_nodes_from(hosts)
        hosts = list(hosts)
        for i, u in enumerate(hosts):
            for v in hosts[i + 1 :]:
                c = cost
                if jitter:
                    c = max(1e-9, cost + stream.uniform(-jitter, jitter))
                g.add_edge(u, v, cost=c)
        return cls(g)

    @classmethod
    def star(cls, center: str, leaves: Sequence[str], cost: float = 1.0) -> "Topology":
        g = nx.Graph()
        g.add_node(center)
        for leaf in leaves:
            g.add_edge(center, leaf, cost=cost)
        return cls(g)

    @classmethod
    def ring(cls, hosts: Sequence[str], cost: float = 1.0) -> "Topology":
        if len(hosts) < 3:
            raise NetworkError("a ring needs at least 3 hosts")
        g = nx.Graph()
        hosts = list(hosts)
        for i, u in enumerate(hosts):
            g.add_edge(u, hosts[(i + 1) % len(hosts)], cost=cost)
        return cls(g)

    @classmethod
    def random_costs(
        cls,
        hosts: Sequence[str],
        stream: Stream,
        low: float = 0.5,
        high: float = 2.0,
    ) -> "Topology":
        """Full mesh with uniformly random link costs in ``[low, high]``.

        Models geographically scattered Internet replicas where some pairs
        are much "closer" than others — the setting in which cost-sorted
        itineraries matter.
        """
        g = nx.Graph()
        g.add_nodes_from(hosts)
        hosts = list(hosts)
        for i, u in enumerate(hosts):
            for v in hosts[i + 1 :]:
                g.add_edge(u, v, cost=stream.uniform(low, high))
        return cls(g)

    # -- queries -----------------------------------------------------------

    @property
    def hosts(self) -> List[str]:
        return list(self.graph.nodes())

    def __contains__(self, host: str) -> bool:
        return host in self.graph

    def _ensure_routes(self) -> Dict[str, Dict[str, float]]:
        if self._routes is None:
            self._routes = {
                src: dict(lengths)
                for src, lengths in nx.all_pairs_dijkstra_path_length(
                    self.graph, weight="cost"
                )
            }
        return self._routes

    def cost(self, src: str, dst: str) -> float:
        """Shortest-path cost between two hosts.

        Raises :class:`HostUnreachable` if no path exists.
        """
        routes = self._ensure_routes()
        try:
            return routes[src][dst]
        except KeyError:
            raise HostUnreachable(f"no route from {src!r} to {dst!r}") from None

    def routing_table(self, src: str) -> Dict[str, float]:
        """Cost from ``src`` to every reachable host (the paper's table)."""
        routes = self._ensure_routes()
        if src not in routes:
            raise HostUnreachable(f"unknown host {src!r}")
        return dict(routes[src])

    def neighbors_by_cost(
        self, src: str, candidates: Iterable[str]
    ) -> List[str]:
        """``candidates`` sorted by ascending cost from ``src``.

        Ties are broken by host name so the ordering is deterministic.
        """
        table = self.routing_table(src)
        return sorted(candidates, key=lambda h: (table.get(h, float("inf")), h))

    def invalidate_routes(self) -> None:
        """Drop the route cache after mutating the graph."""
        self._routes = None

    def __repr__(self) -> str:
        return (
            f"<Topology hosts={self.graph.number_of_nodes()} "
            f"links={self.graph.number_of_edges()}>"
        )
