"""repro.obs — the unified observability layer.

One-stop shop for telemetry: a labelled metrics registry
(:class:`Counter` / :class:`Gauge` / :class:`Histogram`), span-based
tracing over the simulation clock, and exporters (JSONL, Prometheus
text, human tables). The :class:`ObservabilityHub` bundles all of it;
install one process-wide with :func:`enable` or inject one into a
:class:`~repro.replication.deployment.Deployment`.

Typical use::

    from repro import obs

    hub = obs.enable()                  # instrument everything built next
    table = run_comparison(...)         # any experiment entry point
    print(obs.format_report(hub))
    obs.write_jsonl(hub, "metrics.jsonl")

The time-series monitors from :mod:`repro.sim.monitor` are re-exported
here so analysis code has a single import for all measurement types.
"""

from repro.obs.bench import (
    compare_docs,
    compare_paths,
    load_bench,
    run_suite,
    write_bench,
)
from repro.obs.export import (
    chrome_trace,
    format_report,
    iter_jsonl_records,
    prometheus_text,
    read_jsonl,
    summary_line,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.hub import (
    ObservabilityHub,
    disable,
    enable,
    get_hub,
    set_hub,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.journeys import (
    CriticalPath,
    Journey,
    critical_path,
    format_journey_report,
    reconstruct_journeys,
)
from repro.obs.selfcheck import SelfCheckReport, self_check
from repro.obs.tracing import ObsEvent, Span, SpanTracer
from repro.sim.monitor import Monitor, StateMonitor

__all__ = [
    # hub lifecycle
    "ObservabilityHub",
    "get_hub",
    "set_hub",
    "enable",
    "disable",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS_MS",
    # tracing
    "SpanTracer",
    "Span",
    "ObsEvent",
    # exporters
    "iter_jsonl_records",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "format_report",
    "summary_line",
    "chrome_trace",
    "write_chrome_trace",
    # journeys / critical path
    "Journey",
    "CriticalPath",
    "reconstruct_journeys",
    "critical_path",
    "format_journey_report",
    # perf trajectory
    "run_suite",
    "write_bench",
    "load_bench",
    "compare_docs",
    "compare_paths",
    # diagnostics
    "self_check",
    "SelfCheckReport",
    # time-series monitors (re-exported for one-stop imports)
    "Monitor",
    "StateMonitor",
]
