"""Perf trajectory: versioned benchmark baselines and regression gates.

``repro-marp bench`` runs four scenario suites — the DES kernel, the
parallel experiment engine, the live threaded runtime, and the
streaming scale data plane — and writes one
``BENCH_<suite>.json`` per suite (schema :data:`SCHEMA_VERSION`): a
throughput number, wall time, and a determinism fingerprint per
scenario, plus host metadata so a baseline records *where* it was
measured. ``repro-marp bench --compare OLD NEW`` diffs two such files
(or directories of them) and exits nonzero when any scenario's
throughput regressed by more than the threshold (default 10%) — the
regression gate CI runs against the committed baselines in
``benchmarks/baselines/``.

Throughput is taken as the **best of N repeats** (min wall time), the
standard defence against scheduler noise on shared runners; scenarios
that run a full simulation or a live cluster use a single repeat and a
larger workload instead. Fingerprints come from
:func:`repro.experiments.cache.result_fingerprint`, so a bench run
doubles as a byte-equivalence check: a fingerprint drift between
baselines means measured *results* changed, not just speed.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "SUITES",
    "BenchError",
    "run_suite",
    "write_bench",
    "load_bench",
    "compare_docs",
    "compare_paths",
    "bench_filename",
]

SCHEMA_VERSION = "repro-bench/v1"

class BenchError(Exception):
    """Bench usage/format error → CLI exit 2 (not a regression)."""


# -- scenarios -------------------------------------------------------------

#: a scenario body does the work once and reports
#: ``(events, fingerprint, params)``; the harness times it.
ScenarioFn = Callable[[bool], Tuple[int, Optional[str], Dict[str, Any]]]


@dataclass(frozen=True)
class Scenario:
    name: str
    unit: str
    repeats: int
    fn: ScenarioFn


def _scn_event_loop(quick: bool):
    from repro.sim.core import Environment

    n = 5_000 if quick else 40_000
    env = Environment()

    def ticker(env):
        for _ in range(n):
            yield env.timeout(1)

    env.process(ticker(env))
    env.run()
    return max(env.events_processed, n), None, {"timeouts": n}


def _scn_decide(quick: bool):
    from repro.agents.identity import AgentId
    from repro.core.locking_table import LockingTable
    from repro.core.priority import decide
    from repro.replication.server import SharedView

    calls = 2_000 if quick else 20_000
    table = LockingTable()
    agents = [AgentId("h", float(n), 0) for n in range(20)]
    for index in range(5):
        table.update(SharedView(
            host=f"s{index + 1}",
            as_of=1.0,
            view=tuple(agents[index:] + agents[:index]),
            updated=frozenset(agents[:3]),
            versions={"x": index},
        ))
    for _ in range(calls):
        decide(table, 5, agents[5])
    return calls, None, {"calls": calls, "servers": 5}


def _scn_delta_merge(name: str, delta: bool) -> ScenarioFn:
    """The hundreds-of-replicas suitcase-merge A/B.

    Models one agent's table re-merging the bulletin across an
    N-replica tour: every round each host's view is presented again,
    but only a few hosts actually changed since the last round. The
    full plane pays the O(agents + keys) knowledge merge for every
    unchanged host; the delta plane pays an O(1) sequence skip for
    unchanged hosts and an O(changed) delta application for the rest.
    Params record both suitcase wire sizes for the bytes-per-tour A/B.
    """

    def fn(quick: bool):
        import hashlib

        from repro.agents.identity import AgentId
        from repro.core.locking_table import LockingTable
        from repro.core.machines.delta import DeltaJournal
        from repro.replication.server import SharedView

        n_hosts = 40 if quick else 200
        rounds = 10 if quick else 60
        queue_len, ual_len, n_keys, churn = 30, 50, 64, 4
        ids = [AgentId("h", float(n), 0) for n in range(queue_len + ual_len)]

        hosts: Dict[str, Dict[str, Any]] = {}
        for index in range(n_hosts):
            host = f"s{index + 1}"
            hosts[host] = {
                "queue": list(ids[:queue_len]),
                "updated": set(ids[queue_len:]),
                "versions": {f"k{k}": 1 for k in range(n_keys)},
                "journal": DeltaJournal(host),
            }

        def snapshot(host: str, now: float) -> SharedView:
            s = hosts[host]
            return SharedView(
                host=host, as_of=now, view=tuple(s["queue"]),
                updated=frozenset(s["updated"]),
                versions=dict(s["versions"]),
                seq=s["journal"].seq if delta else -1,
            )

        table = LockingTable(delta_views=delta)
        now = 1.0
        views = {host: snapshot(host, now) for host in hosts}
        for view in views.values():
            table.update(view)

        merges = 0
        for rnd in range(rounds):
            now += 1.0
            changed = {f"s{(rnd * churn + i) % n_hosts + 1}"
                       for i in range(churn)}
            for host in changed:
                s = hosts[host]
                journal = s["journal"]
                moved = s["queue"].pop(0)  # a requeue: head to tail
                s["queue"].append(moved)
                journal.bump("deq", moved)
                journal.bump("enq", moved)
                key = f"k{(rnd + len(host)) % n_keys}"
                s["versions"][key] += 1
                journal.bump("ver", (key, s["versions"][key]))
            for host, view in views.items():
                if host in changed and delta:
                    patch = hosts[host]["journal"].delta_since(
                        table.acked_seq(host), now)
                    table.apply_delta(patch)
                elif host in changed:
                    views[host] = snapshot(host, now)
                    table.update(views[host])
                else:
                    table.update(view)  # the repeat merge
                merges += 1

        table.delta_views = True
        delta_bytes = table.wire_size()
        table.delta_views = False
        full_bytes = table.wire_size()
        table.delta_views = delta
        fingerprint = hashlib.sha256(json.dumps(
            [merges, delta_bytes, full_bytes], sort_keys=True,
        ).encode()).hexdigest()[:16]
        return merges, fingerprint, {
            "hosts": n_hosts,
            "rounds": rounds,
            "suitcase_bytes": delta_bytes if delta else full_bytes,
            "suitcase_bytes_full": full_bytes,
            "suitcase_bytes_delta": delta_bytes,
        }

    fn.__name__ = name
    return fn


def _scn_des(name: str, gap: float) -> ScenarioFn:
    def fn(quick: bool):
        from repro import obs as obs_mod
        from repro.experiments.cache import result_fingerprint
        from repro.experiments.runner import RunConfig, run_once

        config = RunConfig(
            protocol="marp",
            n_replicas=3,
            mean_interarrival=gap,
            requests_per_client=4 if quick else 12,
            seed=3,
        )
        # A private hub (installed process-wide for the duration) counts
        # simulation events, so "events/s" means DES events, not runs.
        previous = obs_mod.get_hub()
        hub = obs_mod.ObservabilityHub()
        obs_mod.set_hub(hub)
        try:
            result = run_once(config)
        finally:
            obs_mod.set_hub(previous)
        events = int(hub.registry.get("sim_events_total").total())
        return events, result_fingerprint(result), {
            "mean_interarrival": gap,
            "requests": config.requests_per_client * config.n_replicas,
            "committed": result.committed,
        }

    fn.__name__ = name
    return fn


def _scn_sweep(jobs: int) -> ScenarioFn:
    def fn(quick: bool):
        from repro.experiments.cache import result_fingerprint
        from repro.experiments.parallel import ParallelRunner
        from repro.experiments.runner import RunConfig, repeat_configs

        gaps = (30.0, 80.0) if quick else (20.0, 35.0, 50.0, 80.0)
        configs = [
            child
            for gap in gaps
            for child in repeat_configs(
                RunConfig(
                    n_replicas=3,
                    mean_interarrival=gap,
                    requests_per_client=4 if quick else 6,
                    seed=11,
                ),
                2,
            )
        ]
        with ParallelRunner(jobs=jobs) as runner:
            results = runner.run_many(configs)
        joined = "".join(result_fingerprint(r) for r in results)
        digest = hashlib.sha256(joined.encode("ascii")).hexdigest()[:16]
        return len(configs), digest, {"runs": len(configs), "jobs": jobs}

    fn.__name__ = f"sweep_j{jobs}"
    return fn


def _scn_live(quick: bool):
    from repro.runtime import LiveCluster

    writes = 6 if quick else 15
    with LiveCluster(n_replicas=3, backend="thread", seed=7) as cluster:
        for index in range(writes):
            cluster.submit_write(
                cluster.hosts[index % len(cluster.hosts)], "x", index
            )
        records = cluster.wait_for(writes, timeout=120.0)
    audit = cluster.audit()
    committed = sum(1 for r in records if r["status"] == "committed")
    if not audit.consistent:
        raise BenchError("live bench run was inconsistent")
    # Wall-clock throughput only: the live backend is scheduler-bound,
    # so no determinism fingerprint is recorded.
    return committed, None, {
        "writes": writes, "committed": committed,
        "consistent": audit.consistent,
    }


#: Child body for the scale scenarios. Run in a fresh interpreter so
#: ``ru_maxrss`` measures *this run's* peak RSS, not whatever the bench
#: process allocated before (a parent-side reading could only ever grow
#: across scenarios). The child prints a single JSON document; events
#: are DES events from a private ObservabilityHub, the fingerprint is
#: the standard result fingerprint (streaming fingerprints are
#: process-independent, so parent and child agree).
_SCALE_CHILD = """\
import json
import resource
import sys

from repro import obs as obs_mod
from repro.experiments.cache import result_fingerprint
from repro.experiments.runner import run_once
from repro.experiments.scale import ScaleVariant, scale_config

protocol, requests, gap = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])
n_replicas, delta_views = int(sys.argv[4]), sys.argv[5] == "1"
config = scale_config(
    protocol,
    ScaleVariant(label="bench", n_replicas=n_replicas, n_keys=256,
                 key_skew=0.99, delta_views=delta_views),
    gap,
    requests,
    seed=3,
)
hub = obs_mod.ObservabilityHub()
obs_mod.set_hub(hub)
result = run_once(config)
print(json.dumps({
    "events": int(hub.registry.get("sim_events_total").total()),
    "fingerprint": result_fingerprint(result),
    "committed": result.committed,
    "consistent": result.audit.consistent,
    "peak_rss_mb": round(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
    ),
}))
"""


def _scn_scale(name: str, protocol: str, quick_requests: int,
               full_requests: int, gap: float = 100.0,
               n_replicas: int = 5,
               delta_views: bool = False) -> ScenarioFn:
    """A streaming Zipf scale scenario (canonical ``scale_config``:
    256 keys, skew 0.99, vectorized workload, hygiene windows),
    isolated in a subprocess for a clean peak-RSS reading."""

    def fn(quick: bool):
        import subprocess
        import sys

        requests = quick_requests if quick else full_requests
        proc = subprocess.run(
            [sys.executable, "-c", _SCALE_CHILD,
             protocol, str(requests), str(gap),
             str(n_replicas), "1" if delta_views else "0"],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise BenchError(
                f"scale child failed ({proc.returncode}): "
                f"{proc.stderr.strip()[-500:]}"
            )
        doc = json.loads(proc.stdout.strip().splitlines()[-1])
        if not doc["consistent"]:
            raise BenchError(f"scale bench run {name!r} was inconsistent")
        return doc["events"], doc["fingerprint"], {
            "protocol": protocol,
            "requests": requests * n_replicas,  # one client per replica
            "mean_interarrival": gap,
            "n_replicas": n_replicas,
            "delta_views": delta_views,
            "committed": doc["committed"],
            "peak_rss_mb": doc["peak_rss_mb"],
        }

    fn.__name__ = name
    return fn


SUITES: Dict[str, Sequence[Scenario]] = {
    "kernel": (
        Scenario("event_loop", "events/s", repeats=3, fn=_scn_event_loop),
        Scenario("decide", "calls/s", repeats=3, fn=_scn_decide),
        Scenario("des_contended", "events/s", repeats=2,
                 fn=_scn_des("des_contended", 25.0)),
        Scenario("des_uncontended", "events/s", repeats=2,
                 fn=_scn_des("des_uncontended", 200.0)),
        Scenario("delta_merge_full", "merges/s", repeats=3,
                 fn=_scn_delta_merge("delta_merge_full", False)),
        Scenario("delta_merge_delta", "merges/s", repeats=3,
                 fn=_scn_delta_merge("delta_merge_delta", True)),
    ),
    "parallel": (
        Scenario("sweep_serial", "runs/s", repeats=1, fn=_scn_sweep(1)),
        Scenario("sweep_j2", "runs/s", repeats=1, fn=_scn_sweep(2)),
    ),
    "live": (
        Scenario("live_thread_contended", "updates/s", repeats=1,
                 fn=_scn_live),
    ),
    # The streaming data plane at scale: a contended MARP run and the
    # bulk single-writer plane. Quick sizes gate CI; full sizes are the
    # local acceptance workload — scale_stream_bulk at full size IS the
    # million-request Zipf scenario (5 clients x 200k requests).
    "scale": (
        Scenario("scale_marp_contended", "events/s", repeats=1,
                 fn=_scn_scale("scale_marp_contended", "marp", 40, 300)),
        Scenario("scale_stream_bulk", "events/s", repeats=1,
                 fn=_scn_scale("scale_stream_bulk", "primary-copy",
                               1_000, 200_000)),
        # The hundreds-of-replicas tour with the delta plane on: 150
        # replicas, one client each, every agent touring all of them.
        Scenario("scale_delta_n150", "events/s", repeats=1,
                 fn=_scn_scale("scale_delta_n150", "marp", 1, 2,
                               gap=500.0, n_replicas=150,
                               delta_views=True)),
    ),
}


# -- running ---------------------------------------------------------------

def _host_meta() -> Dict[str, Any]:
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cpus = os.cpu_count() or 1
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpus": cpus,
    }


def run_suite(suite: str, quick: bool = False) -> Dict[str, Any]:
    """Run one suite; returns the schema-versioned result document."""
    if suite not in SUITES:
        raise BenchError(
            f"unknown bench suite {suite!r} (have: {sorted(SUITES)})"
        )
    scenarios: List[Dict[str, Any]] = []
    for scenario in SUITES[suite]:
        best_wall = None
        events = 0
        fingerprint: Optional[str] = None
        params: Dict[str, Any] = {}
        fingerprints = set()
        for _ in range(scenario.repeats):
            start = time.perf_counter()
            events, fingerprint, params = scenario.fn(quick)
            wall = time.perf_counter() - start
            fingerprints.add(fingerprint)
            if best_wall is None or wall < best_wall:
                best_wall = wall
        if len(fingerprints) > 1:
            raise BenchError(
                f"scenario {scenario.name!r} is non-deterministic across "
                f"repeats: {sorted(map(str, fingerprints))}"
            )
        scenarios.append({
            "name": scenario.name,
            "unit": scenario.unit,
            "repeats": scenario.repeats,
            "events": events,
            "wall_s": round(best_wall, 6),
            "rate": round(events / best_wall, 3) if best_wall else 0.0,
            "fingerprint": fingerprint,
            "params": params,
        })
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "quick": quick,
        "created_unix": round(time.time(), 3),
        "host": _host_meta(),
        "scenarios": scenarios,
    }


def bench_filename(suite: str) -> str:
    """The canonical output name for a suite (``BENCH_<suite>.json``)."""
    return f"BENCH_{suite}.json"


def write_bench(doc: Dict[str, Any], out_dir: str = ".") -> str:
    """Write one suite document; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, bench_filename(doc["suite"]))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    """Read + schema-validate one BENCH_*.json document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchError(f"cannot read bench file {path!r}: {exc}")
    if doc.get("schema") != SCHEMA_VERSION:
        raise BenchError(
            f"{path}: schema {doc.get('schema')!r} != {SCHEMA_VERSION!r}"
        )
    return doc


# -- comparison ------------------------------------------------------------

@dataclass
class Comparison:
    """The outcome of diffing two bench documents."""

    lines: List[str]
    regressions: List[str]
    warnings: List[str]

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_docs(old: Dict[str, Any], new: Dict[str, Any],
                 threshold: float = 0.10) -> Comparison:
    """Diff two suite documents scenario-by-scenario.

    A scenario regresses when ``new_rate < old_rate * (1 - threshold)``.
    Fingerprint drift and scenario-set drift are *warnings* — they flag
    changed results or coverage, which the perf gate should surface but
    not conflate with a slowdown.
    """
    lines: List[str] = []
    regressions: List[str] = []
    warnings: List[str] = []
    suite = new.get("suite", "?")
    by_name = {s["name"]: s for s in old.get("scenarios", ())}
    seen = set()
    for scenario in new.get("scenarios", ()):
        name = scenario["name"]
        seen.add(name)
        base = by_name.get(name)
        label = f"{suite}/{name}"
        if base is None:
            warnings.append(f"{label}: no baseline scenario")
            continue
        old_rate, new_rate = base["rate"], scenario["rate"]
        delta = (new_rate - old_rate) / old_rate if old_rate else 0.0
        verdict = "ok"
        if old_rate and new_rate < old_rate * (1.0 - threshold):
            verdict = "REGRESSION"
            regressions.append(
                f"{label}: {old_rate:g} -> {new_rate:g} {scenario['unit']} "
                f"({delta:+.1%}, threshold -{threshold:.0%})"
            )
        lines.append(
            f"{label:32s} {old_rate:12g} -> {new_rate:12g} "
            f"{scenario['unit']:10s} {delta:+7.1%}  {verdict}"
        )
        if base.get("fingerprint") != scenario.get("fingerprint"):
            warnings.append(
                f"{label}: fingerprint drift "
                f"{base.get('fingerprint')} -> {scenario.get('fingerprint')}"
            )
    for name in sorted(set(by_name) - seen):
        warnings.append(f"{suite}/{name}: scenario missing from new run")
    return Comparison(lines=lines, regressions=regressions,
                      warnings=warnings)


def _doc_paths(path: str) -> List[str]:
    """A bench file, or every ``BENCH_*.json`` inside a directory."""
    if os.path.isdir(path):
        names = sorted(
            name for name in os.listdir(path)
            if name.startswith("BENCH_") and name.endswith(".json")
        )
        if not names:
            raise BenchError(f"no BENCH_*.json files in directory {path!r}")
        return [os.path.join(path, name) for name in names]
    return [path]


def compare_paths(old_path: str, new_path: str,
                  threshold: float = 0.10) -> Comparison:
    """Compare two bench files, or two directories of them, by suite."""
    old_docs = {d["suite"]: d for d in map(load_bench, _doc_paths(old_path))}
    new_docs = {d["suite"]: d for d in map(load_bench, _doc_paths(new_path))}
    merged = Comparison(lines=[], regressions=[], warnings=[])
    for suite in sorted(new_docs):
        old_doc = old_docs.get(suite)
        if old_doc is None:
            merged.warnings.append(f"{suite}: no baseline file")
            continue
        result = compare_docs(old_doc, new_docs[suite], threshold=threshold)
        merged.lines.extend(result.lines)
        merged.regressions.extend(result.regressions)
        merged.warnings.extend(result.warnings)
    for suite in sorted(set(old_docs) - set(new_docs)):
        merged.warnings.append(f"{suite}: suite missing from new run")
    return merged
