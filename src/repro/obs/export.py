"""Exporters for the observability hub.

Three output formats:

* **JSONL** — one JSON object per line, ``type`` field distinguishing
  ``metric`` / ``span`` / ``event`` records. Machine-readable, append-
  friendly, round-trips via :func:`read_jsonl`.
* **Prometheus text exposition** — the registry rendered in the
  ``# TYPE`` / ``name{label="v"} value`` format, so a scrape endpoint
  (or just ``curl | promtool``) can consume a run's metrics.
* **Human report** — aligned text tables via
  :mod:`repro.analysis.tables`, one for scalar metrics, one for
  histograms, one summarising span families.
* **Chrome ``trace_event`` JSON** — the spans as complete (``"X"``)
  events, one *process* lane per trace id (one agent journey each),
  loadable directly in Perfetto / ``chrome://tracing``. Sim-clock
  milliseconds map to the format's microsecond ``ts``/``dur`` fields,
  so the timeline reads in the paper's own time unit.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterator, List, Optional

from repro.analysis.tables import format_table
from repro.obs.hub import ObservabilityHub
from repro.obs.registry import Histogram, MetricsRegistry

__all__ = [
    "iter_jsonl_records",
    "write_jsonl",
    "read_jsonl",
    "prometheus_text",
    "format_report",
    "summary_line",
    "chrome_trace",
    "write_chrome_trace",
]


def _finite(value: float) -> Any:
    """JSON-safe number (inf/nan become strings)."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def iter_jsonl_records(
    hub: ObservabilityHub,
    metrics: bool = True,
    spans: bool = True,
    events: bool = True,
) -> Iterator[Dict[str, Any]]:
    """Yield every hub record as a JSON-serialisable dict."""
    if metrics:
        for sample in hub.registry.collect():
            yield {
                "type": "metric",
                "name": sample.name,
                "kind": sample.kind,
                "labels": sample.labels,
                "value": _finite(sample.value),
            }
    if spans:
        for span in hub.tracer.spans:
            yield {
                "type": "span",
                "id": span.span_id,
                "parent": span.parent_id,
                "trace": span.trace_id,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "status": span.status,
                "attrs": {k: _attr(v) for k, v in span.attrs.items()},
            }
    if events:
        for event in hub.tracer.events:
            yield {
                "type": "event",
                "name": event.name,
                "time": event.time,
                "span": event.span_id,
                "attrs": {k: _attr(v) for k, v in event.attrs.items()},
            }


def _attr(value: Any) -> Any:
    """Span/event attribute coerced to a JSON-safe value."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return _finite(value)
    return str(value)


def write_jsonl(hub: ObservabilityHub, path: str, metrics: bool = True,
                spans: bool = True, events: bool = True) -> int:
    """Dump the hub to a JSONL file; returns the number of lines."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in iter_jsonl_records(hub, metrics, spans, events):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL dump back into a list of record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for sample in instrument.samples():
            if sample.labels:
                rendered = ",".join(
                    f'{key}="{value}"'
                    for key, value in sorted(sample.labels.items())
                )
                lines.append(f"{sample.name}{{{rendered}}} {sample.value:g}")
            else:
                lines.append(f"{sample.name} {sample.value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def format_report(hub: ObservabilityHub,
                  title: str = "observability report") -> str:
    """Human-readable tables: metrics, histograms, span families."""
    sections: List[str] = []

    scalar_rows = []
    histogram_rows = []
    for instrument in hub.registry.instruments():
        if isinstance(instrument, Histogram):
            for sample in instrument.samples():
                if not sample.name.endswith("_count"):
                    continue
                labels = {
                    k: v for k, v in sample.labels.items() if k != "le"
                }
                histogram_rows.append([
                    instrument.name,
                    _render_labels(labels),
                    int(sample.value),
                    instrument.mean(**labels) if sample.value else None,
                    instrument.sum(**labels),
                ])
        else:
            for sample in instrument.samples():
                scalar_rows.append([
                    sample.name,
                    _render_labels(sample.labels),
                    instrument.kind,
                    sample.value,
                ])

    if scalar_rows:
        sections.append(format_table(
            ["metric", "labels", "type", "value"], scalar_rows,
            title=title,
        ))
    if histogram_rows:
        sections.append(format_table(
            ["histogram", "labels", "count", "mean", "sum"],
            histogram_rows, title="distributions",
        ))

    span_rows = []
    families: Dict[str, List[float]] = {}
    open_count: Dict[str, int] = {}
    for span in hub.tracer.spans:
        if span.end is None:
            open_count[span.name] = open_count.get(span.name, 0) + 1
        else:
            families.setdefault(span.name, []).append(span.duration)
    for name in sorted(set(families) | set(open_count)):
        durations = families.get(name, [])
        span_rows.append([
            name,
            len(durations),
            open_count.get(name, 0),
            sum(durations) / len(durations) if durations else None,
            max(durations) if durations else None,
        ])
    if span_rows:
        sections.append(format_table(
            ["span", "finished", "open", "mean(ms)", "max(ms)"],
            span_rows, title="spans",
        ))

    if not sections:
        return f"{title}\n{'=' * max(len(title), 8)}\n(no telemetry recorded)"
    return "\n\n".join(sections)


def summary_line(hub: ObservabilityHub,
                 destination: Optional[str] = None) -> str:
    """One end-of-run line: ``[obs] N metrics, N spans, N events``."""
    parts = (
        f"[obs] {len(hub.registry)} metrics, "
        f"{len(hub.tracer.spans)} spans, {len(hub.tracer.events)} events"
    )
    if destination:
        parts += f" -> {destination}"
    return parts


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


# -- Chrome trace_event export (Perfetto / chrome://tracing) ---------------

#: stable thread lanes so every journey renders in the same vertical
#: order: the root on top, then the phase spans beneath it.
_CHROME_LANES = {"request": 0, "lock-wait": 1, "migrate": 2, "park": 3,
                 "claim": 4}
_MS_TO_US = 1000.0


def chrome_trace(source: Any) -> Dict[str, Any]:
    """Render spans/events in Chrome ``trace_event`` JSON object format.

    ``source`` is an :class:`ObservabilityHub` or an iterable of JSONL
    record dicts (the output of :func:`read_jsonl` — so a dumped run
    round-trips into Perfetto without re-running anything). Each trace
    id becomes one *process* lane named after the journey; spans with
    no trace id share an ``(untraced)`` lane. Metric records have no
    timeline and are skipped. Open spans are emitted with ``dur`` 0 and
    ``status: "open"`` in args so they remain visible.
    """
    if isinstance(source, ObservabilityHub):
        records: List[Dict[str, Any]] = list(iter_jsonl_records(source))
    else:
        records = list(source)

    events: List[Dict[str, Any]] = []
    pids: Dict[Optional[str], int] = {}
    named_lanes: Dict[int, Dict[str, int]] = {}
    span_trace: Dict[int, Optional[str]] = {}

    def pid_for(trace: Optional[str]) -> int:
        if trace not in pids:
            pids[trace] = len(pids) + 1
            events.append({
                "ph": "M", "name": "process_name", "pid": pids[trace],
                "tid": 0, "args": {"name": trace or "(untraced)"},
            })
        return pids[trace]

    def lane_for(pid: int, name: str) -> int:
        lane = _CHROME_LANES.get(name)
        if lane is None:
            lanes = named_lanes.setdefault(pid, {})
            lane = lanes.setdefault(name, len(_CHROME_LANES) + len(lanes))
        return lane

    for record in records:
        if record.get("type") != "span":
            continue
        trace = record.get("trace")
        span_trace[record["id"]] = trace
        pid = pid_for(trace)
        start = record["start"]
        end = record.get("end")
        args = dict(record.get("attrs") or {})
        args.update(id=record["id"], parent=record.get("parent"),
                    status=record.get("status"))
        events.append({
            "ph": "X",
            "name": record["name"],
            "cat": "span",
            "pid": pid,
            "tid": lane_for(pid, record["name"]),
            "ts": start * _MS_TO_US,
            "dur": ((end - start) if end is not None else 0.0) * _MS_TO_US,
            "args": args,
        })
    for record in records:
        if record.get("type") != "event":
            continue
        trace = span_trace.get(record.get("span"))
        pid = pid_for(trace)
        events.append({
            "ph": "i",
            "s": "p",
            "name": record["name"],
            "cat": "event",
            "pid": pid,
            "tid": 0,
            "ts": record["time"] * _MS_TO_US,
            "args": dict(record.get("attrs") or {}),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: Any, path: str) -> int:
    """Write the Chrome trace JSON; returns the traceEvents count."""
    document = chrome_trace(source)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])
