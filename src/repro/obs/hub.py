"""The ObservabilityHub: one handle for metrics + traces.

A hub bundles a :class:`~repro.obs.registry.MetricsRegistry` and a
:class:`~repro.obs.tracing.SpanTracer`. It is **injectable** — pass one
to :class:`~repro.replication.deployment.Deployment` — and also
**process-wide**: :func:`enable` installs a global hub that every
subsequently built deployment picks up, which is how the CLI's
``--metrics-out`` flag instruments an existing experiment command
without threading a parameter through every layer.

Zero-cost discipline: instrumented components resolve their hub **once,
at construction**, to either a live hub or ``None``; every hot-path
record is guarded by a single ``if hub is not None`` attribute check.
With no hub installed (the default) the simulator runs the exact same
code it always did plus that one comparison.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracing import ObsEvent, Span, SpanTracer

__all__ = ["ObservabilityHub", "get_hub", "set_hub", "enable", "disable"]


class ObservabilityHub:
    """Unified telemetry sink: a metrics registry plus a span tracer."""

    def __init__(self, enabled: bool = True,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(clock=clock)
        self.enabled = bool(enabled)

    # -- clock ------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Bind the tracer's time source (typically ``lambda: env.now``)."""
        self.tracer.bind_clock(clock)

    # -- registry passthrough ---------------------------------------------

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a counter in the hub's registry."""
        return self.registry.counter(name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge in the hub's registry."""
        return self.registry.gauge(name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
                  ) -> Histogram:
        """Get or create a histogram in the hub's registry."""
        return self.registry.histogram(name, help, labelnames, buckets)

    # -- tracer passthrough -----------------------------------------------

    def span(self, name: str, **kwargs) -> Span:
        """Open a span (usable as a context manager)."""
        return self.tracer.span(name, **kwargs)

    def start_span(self, name: str, **kwargs) -> Span:
        """Open a span for explicit finish() (interleaved processes)."""
        return self.tracer.start_span(name, **kwargs)

    def event(self, name: str, **kwargs) -> ObsEvent:
        """Record a point event."""
        return self.tracer.event(name, **kwargs)

    # -- lifecycle --------------------------------------------------------

    def reset(self) -> None:
        """Clear all recorded metrics, spans and events."""
        self.registry.clear()
        self.tracer.clear()

    def __repr__(self) -> str:
        return (
            f"<ObservabilityHub enabled={self.enabled} "
            f"metrics={len(self.registry)} "
            f"spans={len(self.tracer.spans)} "
            f"events={len(self.tracer.events)}>"
        )


#: The process-wide hub (None unless :func:`enable`/:func:`set_hub` ran).
_active_hub: Optional[ObservabilityHub] = None


def get_hub() -> Optional[ObservabilityHub]:
    """The installed process-wide hub, or ``None``.

    Disabled hubs are reported as ``None`` so call sites can treat the
    return value as "record here, unconditionally".
    """
    hub = _active_hub
    if hub is not None and hub.enabled:
        return hub
    return None


def set_hub(hub: Optional[ObservabilityHub]) -> Optional[ObservabilityHub]:
    """Install (or, with ``None``, remove) the process-wide hub."""
    global _active_hub
    _active_hub = hub
    return hub


def enable(hub: Optional[ObservabilityHub] = None) -> ObservabilityHub:
    """Install and enable a process-wide hub; returns it.

    Reuses the currently installed hub when one exists, so repeated
    calls accumulate into the same registry/trace.
    """
    global _active_hub
    if hub is not None:
        hub.enabled = True
        _active_hub = hub
    elif _active_hub is not None:
        _active_hub.enabled = True
    else:
        _active_hub = ObservabilityHub(enabled=True)
    return _active_hub


def disable() -> None:
    """Remove the process-wide hub (instrumentation reverts to no-ops)."""
    global _active_hub
    _active_hub = None
