"""Whole-journey reconstruction and critical-path latency analysis.

Every span an update agent records — in either backend — is stamped
with the agent's **trace id** (``str(agent_id)``, carried in the
migrating state and in every wire payload). This module reassembles
those spans into :class:`Journey` objects, one per update agent, and
decomposes each journey's latency into the phases the paper's model
talks about:

``ALT`` (agent lock time, dispatch → final lock acquisition) =
``travel`` (migration hops) + ``park`` ([D2] waits) + ``retry``
(failed claim rounds) + ``service`` (the residual: visit service time
and local processing).

``ATT`` (agent total time, dispatch → dispose) = ``ALT`` + ``commit``
(the winning claim round) + ``tail`` (post-commit bookkeeping).

The two identities hold *exactly* by construction — ``service`` and
``tail`` are residuals — so a journey's decomposition always sums to
the measured ALT/ATT, which is the property the integration tests
assert against :class:`~repro.replication.requests.RequestRecord`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.tables import format_table
from repro.obs.tracing import Span, SpanTracer

__all__ = [
    "Hop",
    "CriticalPath",
    "Journey",
    "reconstruct_journeys",
    "critical_path",
    "format_journey_report",
]


@dataclass(frozen=True)
class Hop:
    """One migration leg of a journey."""

    src: str
    dst: str
    start: float
    end: float
    status: str = "ok"

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CriticalPath:
    """Additive latency decomposition of one journey (all ms).

    ``travel + park + retry + service == alt`` and
    ``alt + commit + tail == att`` hold exactly; ``service`` and
    ``tail`` are defined as the residuals.
    """

    travel_ms: float
    park_ms: float
    retry_ms: float
    service_ms: float
    alt_ms: float
    commit_ms: float
    tail_ms: float
    att_ms: float

    @property
    def dominant(self) -> str:
        """The largest ALT component (ties go to the earlier phase)."""
        parts = [
            ("travel", self.travel_ms),
            ("park", self.park_ms),
            ("retry", self.retry_ms),
            ("service", self.service_ms),
        ]
        return max(parts, key=lambda item: item[1])[0]

    def as_dict(self) -> Dict[str, float]:
        return {
            "travel_ms": self.travel_ms,
            "park_ms": self.park_ms,
            "retry_ms": self.retry_ms,
            "service_ms": self.service_ms,
            "alt_ms": self.alt_ms,
            "commit_ms": self.commit_ms,
            "tail_ms": self.tail_ms,
            "att_ms": self.att_ms,
        }


@dataclass
class Journey:
    """One update agent's whole life, reassembled from its spans."""

    trace_id: str
    root: Span
    spans: List[Span] = field(default_factory=list)

    @property
    def agent(self) -> str:
        return str(self.root.attrs.get("agent", self.trace_id))

    @property
    def backend(self) -> str:
        return str(self.root.attrs.get("backend", "?"))

    @property
    def batch_id(self) -> Any:
        return self.root.attrs.get("batch_id")

    @property
    def status(self) -> str:
        return self.root.status

    @property
    def complete(self) -> bool:
        """Every span of the journey (including the root) is finished."""
        return all(span.finished for span in self.spans)

    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    @property
    def hops(self) -> List[Hop]:
        """Migration legs in start order (the agent's itinerary)."""
        legs = []
        for span in self.named("migrate"):
            if not span.finished:
                continue
            legs.append(Hop(
                src=str(span.attrs.get("src", "?")),
                dst=str(span.attrs.get("dst", "?")),
                start=span.start,
                end=span.end,
                status=span.status,
            ))
        legs.sort(key=lambda hop: hop.start)
        return legs

    @property
    def path(self) -> CriticalPath:
        return critical_path(self)

    def __repr__(self) -> str:
        return (
            f"<Journey {self.trace_id!r} {self.status} "
            f"spans={len(self.spans)} hops={len(self.hops)}>"
        )


def _tracer_of(source: Union[SpanTracer, Any]) -> SpanTracer:
    if isinstance(source, SpanTracer):
        return source
    tracer = getattr(source, "tracer", None)
    if isinstance(tracer, SpanTracer):
        return tracer
    raise TypeError(f"expected a SpanTracer or hub, got {type(source)!r}")


def reconstruct_journeys(
    source: Union[SpanTracer, Any],
    trace_id: Optional[str] = None,
) -> List[Journey]:
    """Group the tracer's spans into per-agent journeys.

    ``source`` is a :class:`SpanTracer` or anything with a ``.tracer``
    (an :class:`~repro.obs.hub.ObservabilityHub`). Spans with no trace
    id — experiment-harness spans, ad-hoc instrumentation — are left
    out. Journeys are returned in root-span start order; each journey's
    spans are sorted by ``(start, span_id)`` so interleaved recording
    (live host threads racing) cannot perturb the reconstruction.
    """
    tracer = _tracer_of(source)
    groups: Dict[str, List[Span]] = {}
    for span in tracer.spans:
        if span.trace_id is None:
            continue
        if trace_id is not None and span.trace_id != trace_id:
            continue
        groups.setdefault(span.trace_id, []).append(span)

    journeys = []
    for tid, spans in groups.items():
        spans.sort(key=lambda s: (s.start, s.span_id))
        roots = [s for s in spans if s.name == "request"]
        if not roots:
            # A partial trace (e.g. process-backend fragments): anchor
            # on the earliest span so the journey is still inspectable.
            roots = [spans[0]]
        journeys.append(Journey(trace_id=tid, root=roots[0], spans=spans))
    journeys.sort(key=lambda j: (j.root.start, j.root.span_id))
    return journeys


def _closed(spans: Sequence[Span]) -> List[Span]:
    return [s for s in spans if s.finished]


def critical_path(journey: Journey) -> CriticalPath:
    """Decompose one journey's latency; see the module docstring.

    Journeys with an unfinished root (the run was cut short) get the
    decomposition of the portion that *did* happen, with ``att``/
    ``tail`` measured up to the last recorded span end.
    """
    root = journey.root
    start = root.start
    ends = [s.end for s in _closed(journey.spans)]
    att_end = root.end if root.finished else (max(ends) if ends else start)
    att = att_end - start

    lock_waits = _closed(journey.named("lock-wait"))
    alt_end = max((s.end for s in lock_waits), default=start)
    alt = alt_end - start

    travel = float(sum(s.duration for s in _closed(journey.named("migrate"))))
    park = float(sum(s.duration for s in _closed(journey.named("park"))))
    claims = _closed(journey.named("claim"))
    retry = float(sum(s.duration for s in claims if s.status != "committed"))
    commit = float(sum(s.duration for s in claims if s.status == "committed"))
    # Residuals make the identities exact (see module docstring).
    service = alt - travel - park - retry
    tail = att - alt - commit
    return CriticalPath(
        travel_ms=travel, park_ms=park, retry_ms=retry, service_ms=service,
        alt_ms=alt, commit_ms=commit, tail_ms=tail, att_ms=att,
    )


def format_journey_report(
    journeys: Sequence[Journey],
    title: str = "agent journeys (critical path, ms)",
) -> str:
    """Aligned text table: one row per journey plus a totals row."""
    if not journeys:
        return f"{title}\n{'=' * max(len(title), 8)}\n(no journeys recorded)"
    rows: List[List[Any]] = []
    totals = [0.0] * 6
    for journey in journeys:
        path = journey.path
        cells: Tuple[float, ...] = (
            path.travel_ms, path.park_ms, path.retry_ms, path.service_ms,
            path.alt_ms, path.att_ms,
        )
        for index, value in enumerate(cells):
            totals[index] += value
        rows.append([
            journey.agent, journey.backend, journey.status,
            len(journey.hops), path.dominant,
            *(round(value, 3) for value in cells),
        ])
    count = len(journeys)
    rows.append([
        f"mean/{count}", "-", "-", "-", "-",
        *(round(value / count, 3) for value in totals),
    ])
    return format_table(
        ["agent", "backend", "status", "hops", "dominant",
         "travel", "park", "retry", "service", "alt", "att"],
        rows, title=title,
    )
