"""The metrics registry: Counter, Gauge and Histogram instruments.

Instruments follow the Prometheus data model restricted to what the
reproduction needs: every instrument has a ``name``, a ``help`` string
and a fixed tuple of ``labelnames`` (typically ``host``/``agent``/
``protocol``); samples are keyed by the label *values*. Histograms use
fixed upper-bound buckets, which is exactly right for the paper's
bounded distributions (ALT/ATT in milliseconds, hop counts in
``1..N``).

All instruments are plain-Python and allocation-light: recording into a
labelled counter is one dict lookup plus a float add, so an *enabled*
hub stays cheap and a disabled one (the instruments are never called)
costs nothing.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sample",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: Default histogram buckets for millisecond latencies (ALT/ATT live in
#: the tens-to-thousands range on the calibrated LAN/WAN profiles).
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1_000.0, 2_000.0, 5_000.0, 10_000.0, 30_000.0, float("inf"),
)

LabelValues = Tuple[str, ...]


class Sample:
    """One exported measurement: ``name{labels} = value``."""

    __slots__ = ("name", "labels", "value", "kind")

    def __init__(self, name: str, labels: Dict[str, str], value: float,
                 kind: str) -> None:
        self.name = name
        self.labels = labels
        self.value = value
        self.kind = kind

    def __repr__(self) -> str:
        return f"<Sample {self.name} {self.labels} = {self.value}>"


class _Instrument:
    """Shared bookkeeping for all instrument types."""

    kind = "untyped"

    __slots__ = ("name", "help", "labelnames", "_series")

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = ()) -> None:
        if not name or not name.replace("_", "a").isidentifier():
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[LabelValues, float] = {}

    def _key(self, labels: Dict[str, str]) -> LabelValues:
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labels)}"
            )
        try:
            return tuple(str(labels[n]) for n in self.labelnames)
        except KeyError as missing:
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(labels)}"
            ) from missing

    def _label_dict(self, key: LabelValues) -> Dict[str, str]:
        return dict(zip(self.labelnames, key))

    def clear(self) -> None:
        """Drop every recorded series."""
        self._series.clear()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"series={len(self._series)}>"
        )


class Counter(_Instrument):
    """Monotonically increasing count (events, messages, commits)."""

    kind = "counter"

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        series = self._series
        if not labels and not self.labelnames:
            # Unlabelled counters sit on the per-sim-event hot path.
            series[()] = series.get((), 0.0) + amount
            return
        key = self._key(labels)
        series[key] = series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current count of one labelled series (0.0 if never touched)."""
        return self._series.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over all labelled series."""
        return sum(self._series.values())

    def samples(self) -> Iterator[Sample]:
        for key, value in sorted(self._series.items()):
            yield Sample(self.name, self._label_dict(key), value, self.kind)


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, LL length)."""

    kind = "gauge"

    __slots__ = ()

    def set(self, value: float, **labels: str) -> None:
        if not labels and not self.labelnames:
            self._series[()] = float(value)
            return
        self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._series.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[Sample]:
        for key, value in sorted(self._series.items()):
            yield Sample(self.name, self._label_dict(key), value, self.kind)


class Histogram(_Instrument):
    """Fixed-bucket distribution (ALT/ATT latencies, hop counts).

    ``buckets`` are inclusive upper bounds; a trailing ``+inf`` bucket is
    appended when missing so every observation lands somewhere.
    """

    kind = "histogram"

    __slots__ = ("buckets", "_counts", "_sums", "_totals")

    def __init__(self, name: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
                 ) -> None:
        super().__init__(name, help, labelnames)
        bounds = [float(b) for b in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be sorted: {buckets}")
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        if not labels and not self.labelnames:
            key: LabelValues = ()
        else:
            key = self._key(labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = [0] * len(self.buckets)
            self._counts[key] = counts
            self._sums[key] = 0.0
            self._totals[key] = 0
        # Buckets are sorted with a trailing +inf: binary-search the
        # first bound >= value (== the old linear "value <= bound" scan).
        counts[bisect_left(self.buckets, value)] += 1
        self._sums[key] += float(value)
        self._totals[key] += 1

    def count(self, **labels: str) -> int:
        return self._totals.get(self._key(labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def mean(self, **labels: str) -> float:
        key = self._key(labels)
        total = self._totals.get(key, 0)
        if not total:
            return float("nan")
        return self._sums[key] / total

    def bucket_counts(self, **labels: str) -> Dict[float, int]:
        """Cumulative ``upper_bound -> count`` (Prometheus ``le`` style)."""
        key = self._key(labels)
        counts = self._counts.get(key, [0] * len(self.buckets))
        out: Dict[float, int] = {}
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out[bound] = running
        return out

    def clear(self) -> None:
        super().clear()
        self._counts.clear()
        self._sums.clear()
        self._totals.clear()

    def samples(self) -> Iterator[Sample]:
        for key in sorted(self._counts):
            labels = self._label_dict(key)
            running = 0
            for bound, count in zip(self.buckets, self._counts[key]):
                running += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = (
                    "+Inf" if bound == float("inf") else f"{bound:g}"
                )
                yield Sample(
                    f"{self.name}_bucket", bucket_labels, float(running),
                    self.kind,
                )
            yield Sample(
                f"{self.name}_sum", labels, self._sums[key], self.kind
            )
            yield Sample(
                f"{self.name}_count", labels, float(self._totals[key]),
                self.kind,
            )


class MetricsRegistry:
    """Named collection of instruments; get-or-create semantics.

    Asking twice for the same name returns the same instrument, so
    independent components (every replica server, the network, the
    runner) can share one labelled family without coordination.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs):
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, not {tuple(labelnames)}"
                )
            return existing
        instrument = cls(name, help, labelnames, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
                  ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Instrument]:
        """The instrument registered under ``name`` (None if absent)."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        """Sorted names of all registered instruments."""
        return sorted(self._instruments)

    def instruments(self) -> List[_Instrument]:
        """All instruments, sorted by name."""
        return [self._instruments[name] for name in self.names()]

    def collect(self) -> Iterator[Sample]:
        """Every sample of every instrument (exporter entry point)."""
        for instrument in self.instruments():
            yield from instrument.samples()

    def clear(self) -> None:
        """Reset every instrument's recorded series (keeps definitions)."""
        for instrument in self._instruments.values():
            instrument.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __repr__(self) -> str:
        return f"<MetricsRegistry instruments={len(self)}>"
