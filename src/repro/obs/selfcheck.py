"""End-to-end self-check of the observability layer.

Run from the CLI as ``python -m repro obs --self-check`` (CI executes
this on every push). It exercises the full pipeline — registry
semantics, span nesting, a real instrumented MARP run, JSONL round-trip
and the Prometheus/report renderers — and raises ``AssertionError`` on
the first discrepancy.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import List

__all__ = ["self_check"]


def self_check(verbose: bool = False) -> List[str]:
    """Run all checks; returns the list of check names that passed."""
    from repro.obs import export, hub as hub_mod
    from repro.obs.hub import ObservabilityHub
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracing import SpanTracer

    passed: List[str] = []

    def check(name: str, condition: bool) -> None:
        assert condition, f"obs self-check failed: {name}"
        passed.append(name)
        if verbose:
            print(f"  ok: {name}")

    # -- registry semantics ----------------------------------------------
    registry = MetricsRegistry()
    counter = registry.counter("c_total", labelnames=("host",))
    counter.inc(host="s1")
    counter.inc(2, host="s1")
    counter.inc(host="s2")
    check("counter labelled accumulation",
          counter.value(host="s1") == 3.0 and counter.total() == 4.0)
    gauge = registry.gauge("g")
    gauge.set(5.0)
    gauge.dec(2.0)
    check("gauge set/dec", gauge.value() == 3.0)
    histogram = registry.histogram("h_ms", buckets=(1.0, 10.0))
    for value in (0.5, 5.0, 50.0):
        histogram.observe(value)
    check("histogram buckets",
          histogram.bucket_counts() == {1.0: 1, 10.0: 2, float("inf"): 3})
    check("registry get-or-create",
          registry.counter("c_total", labelnames=("host",)) is counter)

    # -- span nesting ----------------------------------------------------
    clock = {"t": 0.0}
    tracer = SpanTracer(clock=lambda: clock["t"])
    with tracer.span("outer") as outer:
        clock["t"] = 1.0
        with tracer.span("inner") as inner:
            tracer.event("tick", time=1.5)
            clock["t"] = 2.0
        clock["t"] = 3.0
    check("span parent link", inner.parent_id == outer.span_id)
    check("span timestamps",
          outer.duration == 3.0 and inner.duration == 1.0
          and tracer.events[0].time == 1.5)

    # -- instrumented run -------------------------------------------------
    from repro.core.protocol import MARP
    from repro.replication.deployment import Deployment

    run_hub = ObservabilityHub()
    deployment = Deployment(n_replicas=3, seed=0, obs=run_hub)
    deployment.enable_tracing()  # protocol.* events join the hub stream
    marp = MARP(deployment)
    marp.submit_write("s1", "x", 1)
    marp.submit_write("s2", "x", 2)
    deployment.run(until=100_000)
    names = run_hub.registry.names()
    check("instrumented run emits metrics", len(names) >= 6)
    check("sim events counted",
          run_hub.registry.get("sim_events_total").total() > 0)
    check("request spans recorded",
          len(run_hub.tracer.spans_named("request")) == 2)
    check("no dangling spans", not run_hub.tracer.open_spans())

    # -- exporters --------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "obs.jsonl")
        written = export.write_jsonl(run_hub, path)
        records = export.read_jsonl(path)
        check("jsonl round-trip", written == len(records) and written > 0)
        kinds = {record["type"] for record in records}
        check("jsonl record types", kinds == {"metric", "span", "event"})
        check("jsonl is valid json lines",
              all(isinstance(r, dict) for r in records))
        blob = json.dumps(records[0])
        check("jsonl re-serialisable", isinstance(blob, str))
    text = export.prometheus_text(run_hub.registry)
    check("prometheus exposition",
          "# TYPE sim_events_total counter" in text)
    report = export.format_report(run_hub)
    check("human report renders", "spans" in report)

    # -- global hub lifecycle --------------------------------------------
    previous = hub_mod._active_hub
    try:
        installed = hub_mod.enable()
        check("enable installs hub", hub_mod.get_hub() is installed)
        hub_mod.disable()
        check("disable removes hub", hub_mod.get_hub() is None)
    finally:
        hub_mod.set_hub(previous)

    return passed
