"""End-to-end self-check of the observability layer.

Run from the CLI as ``python -m repro obs --self-check`` (CI executes
this on every push). It exercises the full pipeline — registry
semantics, span nesting, a real instrumented MARP run, journey
reconstruction, JSONL/Chrome round-trips and the Prometheus/report
renderers. Failures are *collected*, not raised: every check runs even
after one fails, and the CLI reports ``passed/total`` with a nonzero
exit code when anything failed, so one broken exporter does not mask
the state of the rest of the pipeline.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, List

__all__ = ["SelfCheckReport", "self_check"]


@dataclass
class SelfCheckReport:
    """Outcome of one self-check run."""

    passed: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)  # "name: detail"

    @property
    def total(self) -> int:
        return len(self.passed) + len(self.failed)

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        return f"obs self-check: {len(self.passed)}/{self.total} checks passed"


class _Checker:
    def __init__(self, report: SelfCheckReport, verbose: bool) -> None:
        self.report = report
        self.verbose = verbose

    def __call__(self, name: str, condition: bool) -> None:
        if condition:
            self.report.passed.append(name)
            if self.verbose:
                print(f"  ok: {name}")
        else:
            self.report.failed.append(name)
            if self.verbose:
                print(f"  FAIL: {name}")

    def section(self, name: str, body: Callable[[], None]) -> None:
        """Run one check group; an exception fails the *group*, not the
        whole self-check, so later groups still report."""
        try:
            body()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            self.report.failed.append(f"{name}: {type(exc).__name__}: {exc}")
            if self.verbose:
                print(f"  FAIL: {name}: {type(exc).__name__}: {exc}")


def self_check(verbose: bool = False) -> SelfCheckReport:
    """Run every check; returns the collected pass/fail report."""
    from repro.obs import export, hub as hub_mod, journeys
    from repro.obs.hub import ObservabilityHub
    from repro.obs.registry import MetricsRegistry
    from repro.obs.tracing import SpanTracer

    report = SelfCheckReport()
    check = _Checker(report, verbose)

    def registry_semantics() -> None:
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labelnames=("host",))
        counter.inc(host="s1")
        counter.inc(2, host="s1")
        counter.inc(host="s2")
        check("counter labelled accumulation",
              counter.value(host="s1") == 3.0 and counter.total() == 4.0)
        gauge = registry.gauge("g")
        gauge.set(5.0)
        gauge.dec(2.0)
        check("gauge set/dec", gauge.value() == 3.0)
        histogram = registry.histogram("h_ms", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        check("histogram buckets",
              histogram.bucket_counts()
              == {1.0: 1, 10.0: 2, float("inf"): 3})
        check("registry get-or-create",
              registry.counter("c_total", labelnames=("host",)) is counter)

    def span_nesting() -> None:
        clock = {"t": 0.0}
        tracer = SpanTracer(clock=lambda: clock["t"])
        with tracer.span("outer") as outer:
            clock["t"] = 1.0
            with tracer.span("inner") as inner:
                tracer.event("tick", time=1.5)
                clock["t"] = 2.0
            clock["t"] = 3.0
        check("span parent link", inner.parent_id == outer.span_id)
        check("span timestamps",
              outer.duration == 3.0 and inner.duration == 1.0
              and tracer.events[0].time == 1.5)

    # -- instrumented run (shared by the later groups) --------------------
    run_hub = ObservabilityHub()

    def instrumented_run() -> None:
        from repro.core.protocol import MARP
        from repro.replication.deployment import Deployment

        deployment = Deployment(n_replicas=3, seed=0, obs=run_hub)
        deployment.enable_tracing()  # protocol.* events join the hub
        marp = MARP(deployment)
        marp.submit_write("s1", "x", 1)
        marp.submit_write("s2", "x", 2)
        deployment.run(until=100_000)
        names = run_hub.registry.names()
        check("instrumented run emits metrics", len(names) >= 6)
        check("sim events counted",
              run_hub.registry.get("sim_events_total").total() > 0)
        check("request spans recorded",
              len(run_hub.tracer.spans_named("request")) == 2)
        check("no dangling spans", not run_hub.tracer.open_spans())

    def journey_reconstruction() -> None:
        trips = journeys.reconstruct_journeys(run_hub)
        check("journeys reconstruct per agent", len(trips) == 2)
        check("journeys are complete",
              all(trip.complete for trip in trips))
        paths = [trip.path for trip in trips]
        check("critical path sums to ALT",
              all(abs(p.travel_ms + p.park_ms + p.retry_ms + p.service_ms
                      - p.alt_ms) < 1e-6 for p in paths))
        check("critical path sums to ATT",
              all(abs(p.alt_ms + p.commit_ms + p.tail_ms - p.att_ms) < 1e-6
                  for p in paths))

    def exporters() -> None:
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "obs.jsonl")
            written = export.write_jsonl(run_hub, path)
            records = export.read_jsonl(path)
            check("jsonl round-trip", written == len(records) and written > 0)
            kinds = {record["type"] for record in records}
            check("jsonl record types", kinds == {"metric", "span", "event"})
            check("jsonl is valid json lines",
                  all(isinstance(r, dict) for r in records))
            blob = json.dumps(records[0])
            check("jsonl re-serialisable", isinstance(blob, str))
            chrome = export.chrome_trace(records)
            spans = [r for r in records if r["type"] == "span"]
            xs = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
            check("chrome trace keeps span count", len(xs) == len(spans))
            chrome_path = os.path.join(tmp, "trace.json")
            count = export.write_chrome_trace(run_hub, chrome_path)
            with open(chrome_path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            check("chrome trace file loads",
                  len(loaded["traceEvents"]) == count > 0)
        text = export.prometheus_text(run_hub.registry)
        check("prometheus exposition",
              "# TYPE sim_events_total counter" in text)
        rendered = export.format_report(run_hub)
        check("human report renders", "spans" in rendered)

    def hub_lifecycle() -> None:
        previous = hub_mod._active_hub
        try:
            installed = hub_mod.enable()
            check("enable installs hub", hub_mod.get_hub() is installed)
            hub_mod.disable()
            check("disable removes hub", hub_mod.get_hub() is None)
        finally:
            hub_mod.set_hub(previous)

    check.section("registry semantics", registry_semantics)
    check.section("span nesting", span_nesting)
    check.section("instrumented run", instrumented_run)
    check.section("journey reconstruction", journey_reconstruction)
    check.section("exporters", exporters)
    check.section("global hub lifecycle", hub_lifecycle)
    return report
