"""Span-based tracing over the simulation clock.

A :class:`Span` is a named interval with attributes and a parent link;
an :class:`ObsEvent` is a named point-in-time record. Both are stamped
with the *simulated* clock the tracer is bound to (milliseconds, like
everything else in the repro), so traces line up exactly with the
paper's ALT/ATT numbers.

Two usage styles coexist:

* ``with tracer.span("claim", agent=a):`` — synchronous nesting; the
  tracer keeps an active-span stack and links children automatically.
* ``span = tracer.start_span("migrate", parent=root)`` ...
  ``span.finish()`` — explicit parents, for simulation processes whose
  generators interleave (many agents in flight at once would corrupt a
  stack, so the agent code passes its own root span around).

Spans additionally carry an optional **trace id**: a string naming the
causal journey the span belongs to. Both backends stamp every span of
one update agent's life with the same trace id (carried in the agent's
migrating state), which is what lets
:mod:`repro.obs.journeys` reassemble whole agent journeys — including
live journeys whose spans were recorded by *different host threads* —
without relying on parent links alone.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = ["Span", "ObsEvent", "SpanTracer"]

Clock = Callable[[], float]


class Span:
    """One named interval in the trace; finish() closes it."""

    __slots__ = (
        "tracer", "span_id", "parent_id", "name", "start", "end",
        "attrs", "status", "trace_id",
    )

    def __init__(self, tracer: "SpanTracer", span_id: int,
                 parent_id: Optional[int], name: str, start: float,
                 attrs: Dict[str, Any],
                 trace_id: Optional[str] = None) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.status = "open"
        self.trace_id = trace_id

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in ms (nan while still open)."""
        if self.end is None:
            return float("nan")
        return self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def finish(self, end: Optional[float] = None, status: str = "ok",
               **attrs: Any) -> "Span":
        """Close the span (idempotent; the first finish wins)."""
        if self.end is not None:
            return self
        self.end = float(end) if end is not None else self.tracer.now()
        if self.end < self.start:
            raise ValueError(
                f"span {self.name!r} finished before it started: "
                f"{self.end} < {self.start}"
            )
        self.status = status
        if attrs:
            self.attrs.update(attrs)
        return self

    # -- synchronous (stack-linked) usage ---------------------------------

    def __enter__(self) -> "Span":
        self.tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        self.finish(status="error" if exc_type is not None else "ok")

    def __repr__(self) -> str:
        end = f"{self.end:.2f}" if self.end is not None else "open"
        return (
            f"<Span #{self.span_id} {self.name!r} "
            f"[{self.start:.2f}..{end}] {self.status}>"
        )


class ObsEvent:
    """One named point-in-time record with free-form attributes."""

    __slots__ = ("time", "name", "attrs", "span_id")

    def __init__(self, time: float, name: str, attrs: Dict[str, Any],
                 span_id: Optional[int] = None) -> None:
        self.time = time
        self.name = name
        self.attrs = attrs
        self.span_id = span_id

    def __repr__(self) -> str:
        return f"<ObsEvent {self.time:.2f} {self.name!r}>"


class SpanTracer:
    """Records spans and events against an injectable clock.

    The clock defaults to a constant 0.0 (useful for unit tests); a
    deployment binds it to ``env.now`` so every record carries simulated
    time. Explicit ``start=`` / ``end=`` / ``time=`` arguments override
    the clock, which the instrumentation uses to stamp exact protocol
    instants.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock: Optional[Clock] = clock
        self.spans: List[Span] = []
        self.events: List[ObsEvent] = []
        self._stack: List[Span] = []
        self._next_id = 1
        # The live thread backend records spans from several host threads
        # into one shared tracer; id allocation and appends must not race.
        self._lock = threading.Lock()

    # -- clock ------------------------------------------------------------

    def bind_clock(self, clock: Clock) -> None:
        """Point the tracer at a time source (e.g. ``lambda: env.now``)."""
        self.clock = clock

    def now(self) -> float:
        """Current time per the bound clock (0.0 when unbound)."""
        return self.clock() if self.clock is not None else 0.0

    # -- recording --------------------------------------------------------

    def start_span(self, name: str,
                   parent: Optional[Union[Span, int]] = None,
                   start: Optional[float] = None,
                   trace_id: Optional[str] = None,
                   **attrs: Any) -> Span:
        """Open a span; link it under ``parent`` or the active stack top."""
        if parent is None and self._stack:
            parent_id: Optional[int] = self._stack[-1].span_id
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        with self._lock:
            span = Span(
                tracer=self,
                span_id=self._next_id,
                parent_id=parent_id,
                name=name,
                start=float(start) if start is not None else self.now(),
                attrs=attrs,
                trace_id=trace_id,
            )
            self._next_id += 1
            self.spans.append(span)
        return span

    def span(self, name: str, parent: Optional[Union[Span, int]] = None,
             start: Optional[float] = None,
             trace_id: Optional[str] = None, **attrs: Any) -> Span:
        """Context-manager form: ``with tracer.span("x"): ...``."""
        return self.start_span(
            name, parent=parent, start=start, trace_id=trace_id, **attrs
        )

    def event(self, name: str, time: Optional[float] = None,
              span: Optional[Union[Span, int]] = None,
              **attrs: Any) -> ObsEvent:
        """Record a point event (optionally attached to a span)."""
        if isinstance(span, Span):
            span_id: Optional[int] = span.span_id
        elif span is None and self._stack:
            span_id = self._stack[-1].span_id
        else:
            span_id = span
        record = ObsEvent(
            time=float(time) if time is not None else self.now(),
            name=name,
            attrs=attrs,
            span_id=span_id,
        )
        self.events.append(record)
        return record

    # -- queries ----------------------------------------------------------

    def spans_named(self, name: str) -> List[Span]:
        """All spans with the given name, in start order of recording."""
        return [s for s in self.spans if s.name == name]

    def events_named(self, name: str) -> List[ObsEvent]:
        """All events with the given name, in recording order."""
        return [e for e in self.events if e.name == name]

    def children_of(self, span: Union[Span, int]) -> List[Span]:
        """Direct children of a span."""
        parent_id = span.span_id if isinstance(span, Span) else span
        return [s for s in self.spans if s.parent_id == parent_id]

    def get(self, span_id: int) -> Optional[Span]:
        """The span with the given id, or ``None``.

        The live backend uses this to finish a journey's root span from
        a *different* host thread than the one that opened it (the root
        span id travels in the agent's migrating state).
        """
        with self._lock:
            for span in reversed(self.spans):
                if span.span_id == span_id:
                    return span
        return None

    def spans_in_trace(self, trace_id: str) -> List[Span]:
        """Every span stamped with the given trace id."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def open_spans(self) -> List[Span]:
        """Spans not yet finished (should be empty after a clean run)."""
        return [s for s in self.spans if s.end is None]

    def clear(self) -> None:
        """Drop every recorded span and event."""
        self.spans.clear()
        self.events.clear()
        self._stack.clear()
        self._next_id = 1

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)

    def __repr__(self) -> str:
        return (
            f"<SpanTracer spans={len(self.spans)} "
            f"events={len(self.events)}>"
        )
