"""Replication substrate: versioned stores, locking structures, replica
servers (the paper's Algorithm 2), deployment wiring and clients."""

from repro.replication.client import Client, attach_clients
from repro.replication.deployment import Deployment
from repro.replication.history import CommitRecord, HistoryLog
from repro.replication.locking import LockEntry, LockingList, LockView, UpdatedList
from repro.replication.protocol import ReplicationProtocol
from repro.replication.requests import READ, WRITE, RequestRecord, new_request_id
from repro.replication.server import (
    ReplicaConfig,
    ReplicaServer,
    SharedView,
    UpdatePayload,
    WriteOp,
)
from repro.replication.store import VersionedStore, VersionedValue

__all__ = [
    "VersionedStore",
    "VersionedValue",
    "LockEntry",
    "LockingList",
    "UpdatedList",
    "LockView",
    "CommitRecord",
    "HistoryLog",
    "ReplicaServer",
    "ReplicaConfig",
    "SharedView",
    "UpdatePayload",
    "WriteOp",
    "Deployment",
    "ReplicationProtocol",
    "RequestRecord",
    "new_request_id",
    "READ",
    "WRITE",
    "Client",
    "attach_clients",
]
