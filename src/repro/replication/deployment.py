"""Deployment wiring: one call builds a complete replicated system.

A :class:`Deployment` owns the environment, random streams, topology,
network, one agent platform + replica server per host, and the post-crash
recovery processes. Protocols (MARP and the message-passing baselines)
are constructed *on top of* a deployment, so every protocol runs over the
identical substrate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ReplicationError
from repro.agents.directory import PlatformDirectory
from repro.agents.mobility import MigrationCostModel
from repro.agents.platform import AgentPlatform, MobilityPolicy
from repro.net.faults import FaultPlan
from repro.net.latency import LatencyModel, lan_profile
from repro.net.network import Network
from repro.net.topology import Topology
from repro.replication.server import ReplicaConfig, ReplicaServer
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams

__all__ = ["Deployment"]


class Deployment:
    """A cluster of N mobile-agent-enabled replica servers.

    Parameters
    ----------
    n_replicas:
        Number of replicated servers (the paper evaluates 3–5).
    seed:
        Master seed for all random streams.
    latency:
        Network latency model (default: calibrated LAN profile).
    topology:
        Host graph; default full mesh of unit cost over hosts
        ``s1..sN``.
    faults:
        Crash windows / link faults (default: none).
    replica_config, mobility_policy, cost_model:
        Substrate tunables, shared by all hosts.
    obs:
        An :class:`~repro.obs.hub.ObservabilityHub` to instrument this
        deployment with. Defaults to the process-wide hub installed via
        :func:`repro.obs.enable` (``None``/disabled → no telemetry and
        no overhead).
    inbox_ttl:
        Network inbox hygiene window in ms (see
        :meth:`repro.net.network.Endpoint.maybe_reap`); ``None``
        (default) never reaps — the exact historical semantics.
    """

    def __init__(
        self,
        n_replicas: int = 5,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        topology: Optional[Topology] = None,
        faults: Optional[FaultPlan] = None,
        replica_config: Optional[ReplicaConfig] = None,
        mobility_policy: Optional[MobilityPolicy] = None,
        cost_model: Optional[MigrationCostModel] = None,
        host_prefix: str = "s",
        obs=None,
        inbox_ttl: Optional[float] = None,
    ) -> None:
        from repro.obs.hub import get_hub

        hub = obs if obs is not None else get_hub()
        #: the observability hub, or None when telemetry is off
        self.obs = hub if (hub is not None and hub.enabled) else None
        if topology is None:
            if n_replicas < 1:
                raise ReplicationError(f"need at least 1 replica: {n_replicas}")
            hosts = [f"{host_prefix}{i}" for i in range(1, n_replicas + 1)]
            topology = Topology.full_mesh(hosts)
        self.hosts: List[str] = sorted(topology.hosts)
        self.n_replicas = len(self.hosts)

        self.env = Environment()
        if self.obs is not None:
            self.obs.bind_clock(lambda: self.env.now)
            self.env.attach_observability(self.obs)
        self.streams = RandomStreams(seed)
        self.topology = topology
        self.faults = faults or FaultPlan.none()
        self.network = Network(
            self.env,
            topology,
            latency=latency if latency is not None else lan_profile(),
            faults=self.faults,
            streams=self.streams,
            inbox_ttl=inbox_ttl,
        )
        if self.obs is not None:
            self.network.attach_observability(self.obs)
        self.directory = PlatformDirectory()
        self.replica_config = replica_config or ReplicaConfig()
        policy = mobility_policy or MobilityPolicy()
        costs = cost_model or MigrationCostModel()

        self.platforms: Dict[str, AgentPlatform] = {}
        self.servers: Dict[str, ReplicaServer] = {}
        for host in self.hosts:
            platform = AgentPlatform(
                self.env, self.network, host, self.directory,
                policy=policy, cost_model=costs,
            )
            server = ReplicaServer(
                self.env, host, platform.endpoint, self.network,
                peers=self.hosts, config=self.replica_config,
            )
            platform.provide("replica", server)
            if self.obs is not None:
                server.attach_observability(self.obs)
            self.platforms[host] = platform
            self.servers[host] = server

        #: optional structured protocol trace (see enable_tracing)
        self.trace = None

        if self.replica_config.recover_on_restart:
            self._start_recovery_processes()

    # ------------------------------------------------------------------

    def enable_tracing(self, capacity: Optional[int] = None):
        """Turn on structured protocol tracing; returns the trace.

        The MARP agents and every replica server start recording
        :class:`~repro.analysis.tracelog.TraceEvent`s. ``capacity``
        bounds memory for long runs (events beyond it are counted as
        dropped).

        When the deployment has an observability hub, the trace is a
        view over the hub's unified span/event stream, so protocol
        events also appear in JSONL exports; without a hub the trace
        gets a private stream (the pre-obs behaviour, bit for bit).
        """
        from repro.analysis.tracelog import ProtocolTrace

        if self.trace is None:
            tracer = self.obs.tracer if self.obs is not None else None
            self.trace = ProtocolTrace(capacity=capacity, tracer=tracer)
            for server in self.servers.values():
                server.trace = self.trace
        return self.trace

    def enable_anti_entropy(self, mean_interval: float = 5_000.0) -> None:
        """Start background store reconciliation (paper §2: replicas
        "perform operations such as failure recovery ... and background
        information transfer").

        Each server periodically (exponential intervals) pulls a store
        snapshot from a random peer. This is what heals the data gaps
        left by *dropped* COMMITs — message loss during link outages or
        partitions — which the crash-recovery sync cannot see.
        """
        if mean_interval <= 0:
            raise ReplicationError(
                f"anti-entropy interval must be > 0: {mean_interval}"
            )
        if getattr(self, "_anti_entropy_running", False):
            return
        self._anti_entropy_running = True
        for host in self.hosts:
            self.env.process(
                self._anti_entropy_loop(host, mean_interval),
                name=f"anti-entropy-{host}",
            )

    def _anti_entropy_loop(self, host: str, mean_interval: float):
        stream = self.streams.stream(f"anti-entropy.{host}")
        peers = [h for h in self.hosts if h != host]
        if not peers:
            return
        while True:
            yield self.env.timeout(stream.exponential(mean_interval))
            if not self.network.host_up(host):
                continue
            self.servers[host].request_sync(stream.choice(peers))

    def enable_queue_monitoring(self) -> Dict[str, "object"]:
        """Track each server's Locking-List length over time.

        Returns ``{host: StateMonitor}``; the monitors' time-weighted
        averages quantify lock queueing (the dominant ALT component at
        high contention).
        """
        from repro.sim.monitor import StateMonitor

        monitors = {}
        for host, server in self.servers.items():
            if server.queue_monitor is None:
                server.queue_monitor = StateMonitor(
                    name=f"ll-{host}", initial=len(server.locking_list),
                    time=self.env.now,
                )
            monitors[host] = server.queue_monitor
        return monitors

    def platform(self, host: str) -> AgentPlatform:
        try:
            return self.platforms[host]
        except KeyError:
            raise ReplicationError(f"unknown host {host!r}") from None

    def server(self, host: str) -> ReplicaServer:
        try:
            return self.servers[host]
        except KeyError:
            raise ReplicationError(f"unknown host {host!r}") from None

    @property
    def majority(self) -> int:
        """Smallest integer strictly greater than N/2."""
        return self.n_replicas // 2 + 1

    def alive_hosts(self) -> List[str]:
        return [h for h in self.hosts if self.network.host_up(h)]

    # ------------------------------------------------------------------

    def _start_recovery_processes(self) -> None:
        """After each crash window, resync the store from a live peer."""
        for host in self.faults.crashes.hosts_with_faults():
            if host in self.servers:
                self.env.process(
                    self._recovery_loop(host), name=f"recovery-{host}"
                )

    def _recovery_loop(self, host: str):
        grace = 1.0  # let the clock pass the exact boundary instant
        for _down_at, up_at in self.faults.crashes.windows(host):
            wait = up_at + grace - self.env.now
            if wait > 0:
                yield self.env.timeout(wait)
            peers = [h for h in self.alive_hosts() if h != host]
            if peers:
                self.servers[host].request_sync(peers[0])

    def run(self, until=None):
        """Convenience passthrough to the environment's run loop."""
        return self.env.run(until=until)

    def __repr__(self) -> str:
        return f"<Deployment n={self.n_replicas} hosts={self.hosts}>"
