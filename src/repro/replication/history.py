"""Commit history recording (compatibility shim).

The history log is part of the protocol's auditable state, so the
implementation now lives in the sans-IO kernel —
:mod:`repro.core.machines.structures`. This module re-exports it
unchanged for existing importers (notably
:mod:`repro.analysis.consistency`).
"""

from __future__ import annotations

from repro.core.machines.structures import CommitRecord, HistoryLog

__all__ = ["CommitRecord", "HistoryLog"]
