"""Commit history recording for consistency audits.

Each replica appends a :class:`CommitRecord` every time it *commits* an
update; the :mod:`repro.analysis.consistency` auditor compares these logs
across replicas against the invariants of DESIGN.md §5 (identical global
order projection, per-key version monotonicity, final-state equality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

__all__ = ["CommitRecord", "HistoryLog"]


@dataclass(frozen=True)
class CommitRecord:
    """One committed update as seen by one replica."""

    request_id: int
    key: str
    value: Any
    version: int
    committed_at: float
    origin: str  # home server of the request

    def identity(self) -> Tuple[int, str, int]:
        """Fields that must agree across replicas for the same commit."""
        return (self.request_id, self.key, self.version)


class HistoryLog:
    """Append-only commit log of a single replica."""

    def __init__(self, host: str) -> None:
        self.host = host
        self._records: List[CommitRecord] = []

    def append(self, record: CommitRecord) -> None:
        if self._records and record.committed_at < self._records[-1].committed_at:
            raise ValueError(
                f"history at {self.host} must be appended in time order"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records(self) -> List[CommitRecord]:
        return list(self._records)

    def identities(self) -> List[Tuple[int, str, int]]:
        """The commit-identity sequence used for order comparison."""
        return [record.identity() for record in self._records]

    def versions_for(self, key: str) -> List[int]:
        """Version sequence applied for one key, in commit order."""
        return [r.version for r in self._records if r.key == key]

    def last(self) -> Optional[CommitRecord]:
        return self._records[-1] if self._records else None

    def __repr__(self) -> str:
        return f"<HistoryLog {self.host!r} commits={len(self._records)}>"
