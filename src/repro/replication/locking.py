"""The paper's per-server locking structures.

Each replicated server maintains (paper §3.2):

* a **Locking List (LL)** — lock requests from visiting mobile agents,
  "sorted according to the time the entries are created" (i.e. FIFO
  append order); and
* an **Updated List (UL)** — identifiers of agents "that have already
  obtained the lock and performed the actual update".

An agent's rank in a server's LL is its position; permission to update is
granted to the agent ranked *top* in the LLs of a majority of servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ProtocolError
from repro.agents.identity import AgentId

__all__ = ["LockEntry", "LockingList", "UpdatedList", "LockView"]


@dataclass(frozen=True)
class LockEntry:
    """One agent's pending lock request at one server."""

    agent_id: AgentId
    request_id: int
    enqueued_at: float


#: An immutable view of a server's LL at a point in time: the ordered
#: tuple of agent ids, newest last. Shared between agents (information
#: sharing) and merged into Locking Tables.
LockView = Tuple[AgentId, ...]


class LockingList:
    """FIFO list of pending lock requests at one replica server."""

    def __init__(self, host: str) -> None:
        self.host = host
        self._entries: List[LockEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, agent_id: AgentId) -> bool:
        return any(e.agent_id == agent_id for e in self._entries)

    def append(self, entry: LockEntry) -> None:
        """Append a new lock request (one entry per agent)."""
        if entry.agent_id in self:
            raise ProtocolError(
                f"agent {entry.agent_id} already holds a lock entry at "
                f"{self.host}"
            )
        if self._entries and entry.enqueued_at < self._entries[-1].enqueued_at:
            raise ProtocolError(
                f"lock entries at {self.host} must be appended in time order"
            )
        self._entries.append(entry)

    def top(self) -> Optional[AgentId]:
        """The agent currently ranked first, or None if empty."""
        return self._entries[0].agent_id if self._entries else None

    def rank(self, agent_id: AgentId) -> Optional[int]:
        """0-based position of the agent, or None if absent."""
        for index, entry in enumerate(self._entries):
            if entry.agent_id == agent_id:
                return index
        return None

    def remove(self, agent_id: AgentId) -> bool:
        """Remove the agent's entry (after its COMMIT). True if present."""
        for index, entry in enumerate(self._entries):
            if entry.agent_id == agent_id:
                del self._entries[index]
                return True
        return False

    def view(self) -> LockView:
        """Immutable ordered snapshot of the queued agent ids."""
        return tuple(entry.agent_id for entry in self._entries)

    def entries(self) -> List[LockEntry]:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        ids = ", ".join(str(e.agent_id) for e in self._entries)
        return f"<LockingList {self.host!r}: [{ids}]>"


class UpdatedList:
    """Ordered set of agents that completed their update at this server.

    Merging ULs across servers yields an agent's Updated Agents List
    (UAL) — agents known to have finished, whose (possibly stale) lock
    entries can be disregarded.
    """

    def __init__(self) -> None:
        self._order: List[AgentId] = []
        self._members: set = set()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, agent_id: AgentId) -> bool:
        return agent_id in self._members

    def add(self, agent_id: AgentId) -> bool:
        """Record a completed agent. True if newly added."""
        if agent_id in self._members:
            return False
        self._members.add(agent_id)
        self._order.append(agent_id)
        return True

    def merge(self, other_ids) -> int:
        """Union in another UL/UAL; returns number of new entries."""
        added = 0
        for agent_id in other_ids:
            if self.add(agent_id):
                added += 1
        return added

    def ids(self) -> Tuple[AgentId, ...]:
        """Completion order as an immutable tuple."""
        return tuple(self._order)

    def as_set(self) -> frozenset:
        return frozenset(self._members)

    def __iter__(self):
        return iter(self._order)

    def __repr__(self) -> str:
        return f"<UpdatedList n={len(self._order)}>"
