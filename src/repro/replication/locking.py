"""The paper's per-server locking structures (compatibility shim).

The Locking List (LL) and Updated List (UL) are protocol-owned data
structures, so they now live in the sans-IO kernel —
:mod:`repro.core.machines.structures` — where both execution backends
(and the replay harness) share one implementation. This module re-exports
them unchanged for existing importers.
"""

from __future__ import annotations

from repro.core.machines.structures import (
    LockEntry,
    LockingList,
    LockView,
    UpdatedList,
)

__all__ = ["LockEntry", "LockingList", "UpdatedList", "LockView"]
