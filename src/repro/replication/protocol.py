"""Abstract replication-protocol interface.

MARP and every message-passing baseline implement this interface over a
shared :class:`~repro.replication.deployment.Deployment`, so workloads,
metrics and consistency audits are protocol-agnostic.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ReplicationError
from repro.replication.deployment import Deployment
from repro.replication.requests import READ, WRITE, RequestRecord, new_request_id

__all__ = ["ReplicationProtocol"]


class ReplicationProtocol:
    """Base class for replication control protocols.

    Subclasses implement :meth:`_start_write` and :meth:`_start_read`,
    which must *asynchronously* process the request (spawning simulation
    processes) and fill in the record's timeline fields, finally setting
    ``record.status``.
    """

    name = "abstract"

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self.env = deployment.env
        self.records: List[RequestRecord] = []
        # Streaming mode (enable_streaming): terminal records are swept
        # out of self.records into the sink, so memory stays O(in-flight)
        # instead of O(total requests).
        self._stream_sink = None
        self._sweep_every = 0
        self._since_sweep = 0
        self.swept = 0

    # -- submission API (used by clients and examples) ----------------------

    def submit(
        self, home: str, op: str, key: str, value: Any = None
    ) -> RequestRecord:
        """Entry point for one client request (non-blocking)."""
        if home not in self.deployment.servers:
            raise ReplicationError(f"unknown home server {home!r}")
        if op == WRITE:
            return self.submit_write(home, key, value)
        if op == READ:
            return self.submit_read(home, key)
        raise ReplicationError(f"unknown operation {op!r}")

    def submit_write(self, home: str, key: str, value: Any) -> RequestRecord:
        record = RequestRecord(
            request_id=new_request_id(),
            home=home,
            op=WRITE,
            key=key,
            value=value,
            created_at=self.env.now,
        )
        self.records.append(record)
        self._start_write(record)
        if self._stream_sink is not None:
            self._maybe_sweep()
        return record

    def submit_read(self, home: str, key: str) -> RequestRecord:
        record = RequestRecord(
            request_id=new_request_id(),
            home=home,
            op=READ,
            key=key,
            created_at=self.env.now,
        )
        self.records.append(record)
        self._start_read(record)
        if self._stream_sink is not None:
            self._maybe_sweep()
        return record

    # -- protocol hooks ---------------------------------------------------------

    def _start_write(self, record: RequestRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def _start_read(self, record: RequestRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    # -- streaming accounting -----------------------------------------------

    def enable_streaming(self, sink, sweep_every: int = 4096) -> None:
        """Sweep terminal records into ``sink`` instead of keeping them.

        ``sink`` is any callable taking one terminal
        :class:`RequestRecord` (e.g.
        :meth:`repro.analysis.metrics.StreamingMetrics.observe`); it
        sees each record exactly once, after the record reached a
        terminal status. Every ``sweep_every`` submissions the record
        list is compacted down to the still-pending requests, bounding
        memory by the in-flight population. Call
        :meth:`finalize_streaming` after the run to flush stragglers.
        """
        if sweep_every < 1:
            raise ReplicationError(f"sweep_every must be >= 1: {sweep_every}")
        self._stream_sink = sink
        self._sweep_every = sweep_every
        self._since_sweep = 0

    def _maybe_sweep(self) -> None:
        self._since_sweep += 1
        if self._since_sweep >= self._sweep_every:
            self._sweep()

    def _sweep(self) -> int:
        sink = self._stream_sink
        kept: List[RequestRecord] = []
        swept = 0
        for record in self.records:
            if record.status == "pending":
                kept.append(record)
            else:
                sink(record)
                swept += 1
        self.records = kept
        self.swept += swept
        self._since_sweep = 0
        return swept

    def finalize_streaming(self) -> int:
        """Flush remaining terminal records; returns how many still
        pending (incomplete at horizon — never handed to the sink)."""
        if self._stream_sink is not None:
            self._sweep()
        return len(self.records)

    # -- bookkeeping --------------------------------------------------------------

    def open_requests(self) -> int:
        """Requests submitted but not yet terminal."""
        return sum(1 for r in self.records if r.status == "pending")

    def completed_writes(self) -> List[RequestRecord]:
        return [r for r in self.records if r.op == WRITE and r.status == "committed"]

    def failed_requests(self) -> List[RequestRecord]:
        return [r for r in self.records if r.status == "failed"]

    def run(self, until: Optional[float] = None):
        """Run the underlying simulation."""
        return self.deployment.run(until=until)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} requests={len(self.records)} "
            f"open={self.open_requests()}>"
        )
