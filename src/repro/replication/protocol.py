"""Abstract replication-protocol interface.

MARP and every message-passing baseline implement this interface over a
shared :class:`~repro.replication.deployment.Deployment`, so workloads,
metrics and consistency audits are protocol-agnostic.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ReplicationError
from repro.replication.deployment import Deployment
from repro.replication.requests import READ, WRITE, RequestRecord, new_request_id

__all__ = ["ReplicationProtocol"]


class ReplicationProtocol:
    """Base class for replication control protocols.

    Subclasses implement :meth:`_start_write` and :meth:`_start_read`,
    which must *asynchronously* process the request (spawning simulation
    processes) and fill in the record's timeline fields, finally setting
    ``record.status``.
    """

    name = "abstract"

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self.env = deployment.env
        self.records: List[RequestRecord] = []

    # -- submission API (used by clients and examples) ----------------------

    def submit(
        self, home: str, op: str, key: str, value: Any = None
    ) -> RequestRecord:
        """Entry point for one client request (non-blocking)."""
        if home not in self.deployment.servers:
            raise ReplicationError(f"unknown home server {home!r}")
        if op == WRITE:
            return self.submit_write(home, key, value)
        if op == READ:
            return self.submit_read(home, key)
        raise ReplicationError(f"unknown operation {op!r}")

    def submit_write(self, home: str, key: str, value: Any) -> RequestRecord:
        record = RequestRecord(
            request_id=new_request_id(),
            home=home,
            op=WRITE,
            key=key,
            value=value,
            created_at=self.env.now,
        )
        self.records.append(record)
        self._start_write(record)
        return record

    def submit_read(self, home: str, key: str) -> RequestRecord:
        record = RequestRecord(
            request_id=new_request_id(),
            home=home,
            op=READ,
            key=key,
            created_at=self.env.now,
        )
        self.records.append(record)
        self._start_read(record)
        return record

    # -- protocol hooks ---------------------------------------------------------

    def _start_write(self, record: RequestRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    def _start_read(self, record: RequestRecord) -> None:  # pragma: no cover
        raise NotImplementedError

    # -- bookkeeping --------------------------------------------------------------

    def open_requests(self) -> int:
        """Requests submitted but not yet terminal."""
        return sum(1 for r in self.records if r.status == "pending")

    def completed_writes(self) -> List[RequestRecord]:
        return [r for r in self.records if r.op == WRITE and r.status == "committed"]

    def failed_requests(self) -> List[RequestRecord]:
        return [r for r in self.records if r.status == "failed"]

    def run(self, until: Optional[float] = None):
        """Run the underlying simulation."""
        return self.deployment.run(until=until)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} requests={len(self.records)} "
            f"open={self.open_requests()}>"
        )
