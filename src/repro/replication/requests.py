"""Client request types and the per-request lifecycle record.

A :class:`RequestRecord` accumulates the timeline of one client request as
it flows through a protocol; the evaluation metrics (ALT, ATT, PRK — see
:mod:`repro.analysis.metrics`) are pure functions over lists of completed
records, so every protocol produces directly comparable output.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.machines.wire import Transform

__all__ = ["READ", "WRITE", "RequestRecord", "Transform", "new_request_id"]

#: Operation tags.
READ = "read"
WRITE = "write"

_request_counter = itertools.count(1)


def new_request_id() -> int:
    """Globally unique (per-process) request identifier."""
    return next(_request_counter)


@dataclass
class RequestRecord:
    """Timeline and outcome of one client request.

    Times are simulation milliseconds; ``None`` means "not reached".

    Attributes
    ----------
    lock_acquired_at:
        When the carrying agent won the distributed lock (MARP) or the
        quorum was assembled (message-passing protocols) — the end point
        of the paper's ALT metric.
    completed_at:
        When the request was fully processed (COMMIT acknowledged / value
        returned) — the end point of ATT.
    visits_to_lock:
        Number of server *visits* the agent needed to learn it had won
        (the paper's PRK metric; ``None`` for non-agent protocols).
    """

    request_id: int
    home: str
    op: str
    key: str
    value: Any = None
    created_at: float = 0.0
    dispatched_at: Optional[float] = None
    lock_acquired_at: Optional[float] = None
    completed_at: Optional[float] = None
    visits_to_lock: Optional[int] = None
    total_visits: Optional[int] = None
    agent_id: Optional[str] = None
    status: str = "pending"  # pending | committed | failed | read-done
    extra: dict = field(default_factory=dict)

    # -- derived metrics ----------------------------------------------------

    @property
    def lock_time(self) -> Optional[float]:
        """ALT contribution: dispatch -> lock acquisition."""
        if self.lock_acquired_at is None or self.dispatched_at is None:
            return None
        return self.lock_acquired_at - self.dispatched_at

    @property
    def total_time(self) -> Optional[float]:
        """ATT contribution: dispatch -> completion."""
        if self.completed_at is None or self.dispatched_at is None:
            return None
        return self.completed_at - self.dispatched_at

    @property
    def response_time(self) -> Optional[float]:
        """Client-perceived latency: creation -> completion."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.created_at

    @property
    def is_write(self) -> bool:
        return self.op == WRITE

    def __repr__(self) -> str:
        return (
            f"<RequestRecord #{self.request_id} {self.op} {self.key!r} "
            f"home={self.home} status={self.status}>"
        )
