"""The replicated server — the DES driver for the paper's Algorithm 2.

All protocol *logic* lives in the sans-IO
:class:`~repro.core.machines.replica.ReplicaMachine`; this class is the
discrete-event **driver** around it: it owns the simulation process, the
network endpoint, tracing, observability, and the release-waiter events
parked agents block on. Every machine effect is translated into exactly
one driver action:

* ``Send`` → :meth:`Endpoint.send`;
* ``Granted`` / ``Nacked`` / ``CommitApplied`` / ``Recovered`` → the
  grant/apply counters' metrics and the protocol trace;
* ``QueueChanged`` → Locking-List gauge/monitor refresh;
* ``ReleaseNotify`` → wake agents parked at this server ([D2]).

Visiting mobile agents still interact with the server **locally**
(direct method calls — "taking the advantage of being in the same site
as the peer process"); those calls delegate to the machine's local
interface. Servers also run an optional recovery process: after each
crash window (fail-stop with recovery, §2) they resynchronise their
store from a live peer via SYNC messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ProtocolError
from repro.agents.identity import AgentId
from repro.core.machines.effects import (
    CommitApplied,
    Granted,
    Nacked,
    QueueChanged,
    Recovered,
    ReleaseNotify,
    Send,
)
from repro.core.machines.config import DES_TUNABLES
from repro.core.machines.replica import ReplicaMachine
from repro.core.machines.wire import (
    SharedView,
    UpdatePayload,
    VisitData,
    WriteOp,
)
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.sim.core import Environment
from repro.sim.events import Event

__all__ = ["ReplicaServer", "ReplicaConfig", "SharedView", "UpdatePayload"]


@dataclass
class ReplicaConfig:
    """Tunables of a replica server.

    The protocol-level fields (``enable_bulletin``, ``grant_ttl``)
    default to the kernel's :data:`~repro.core.machines.config.DES_TUNABLES`
    and are read by the :class:`ReplicaMachine` directly (this dataclass
    *is* the machine's tunables object); the service-time fields are
    DES-only costs charged by this driver.

    Attributes
    ----------
    agent_service_time:
        Milliseconds a visiting agent spends interacting with the server
        (lock request + information exchange). The paper's ALT is
        "average number of server sites visited times the average time a
        mobile agent spent at a server".
    update_apply_time:
        Local processing time for applying an UPDATE before ACKing.
    enable_bulletin:
        Paper §3.1: agents "exchange their locking information by leaving
        the information at the servers they visited". Off for the A2
        ablation.
    recover_on_restart:
        Run the post-crash resynchronisation process.
    grant_ttl:
        Ms after which an unreleased update grant expires. A grant is
        the server-side exclusive promise behind an UPDATE
        acknowledgement; the TTL only exists so a claimer that crashed
        mid-claim cannot wedge the server forever. It must comfortably
        exceed any realistic claim round (ack gathering + commit
        propagation).
    """

    agent_service_time: float = 2.0
    update_apply_time: float = 0.5
    read_service_time: float = 0.5
    enable_bulletin: bool = DES_TUNABLES.enable_bulletin
    recover_on_restart: bool = True
    grant_ttl: float = DES_TUNABLES.grant_ttl
    #: Updated List retention window (ms); None = paper semantics
    #: (keep forever). See ProtocolTunables.ul_retention.
    ul_retention: Optional[float] = DES_TUNABLES.ul_retention
    #: Delta-view data plane (see ProtocolTunables.delta_views).
    delta_views: bool = DES_TUNABLES.delta_views


class ReplicaServer:
    """DES driver around a :class:`ReplicaMachine` (Algorithm 2)."""

    def __init__(
        self,
        env: Environment,
        host: str,
        endpoint: Endpoint,
        network: Network,
        peers: List[str],
        config: Optional[ReplicaConfig] = None,
    ) -> None:
        if host not in peers:
            raise ProtocolError(f"peers list must include the host {host!r}")
        self.env = env
        self.host = host
        self.endpoint = endpoint
        self.network = network
        self.peers = list(peers)
        self.config = config or ReplicaConfig()
        #: the sans-IO protocol kernel; the config doubles as tunables
        self.machine = ReplicaMachine(host, self.peers, self.config)

        self._release_waiters: List[Event] = []
        #: optional ProtocolTrace, injected by Deployment.enable_tracing
        self.trace = None
        #: optional StateMonitor of the Locking List length, injected by
        #: Deployment.enable_queue_monitoring
        self.queue_monitor = None
        #: optional ObservabilityHub, injected by the deployment
        self._obs = None

        self._loop_process = env.process(
            self._message_loop(), name=f"replica-loop-{host}"
        )

    # ------------------------------------------------------------------
    # Machine state, exposed for drivers/tests/analysis
    # ------------------------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.peers)

    @property
    def store(self):
        return self.machine.store

    @property
    def locking_list(self):
        return self.machine.locking_list

    @property
    def updated_list(self):
        return self.machine.updated_list

    @property
    def history(self):
        return self.machine.history

    @property
    def bulletin(self) -> Dict[str, SharedView]:
        return self.machine.bulletin

    @property
    def _pending_updates(self) -> Dict[int, UpdatePayload]:
        return self.machine.pending_updates

    @property
    def _grant_holder(self) -> Optional[AgentId]:
        return self.machine.grant_holder

    @property
    def _grant_batch(self) -> Optional[int]:
        return self.machine.grant_batch

    @property
    def _grant_epoch(self) -> int:
        return self.machine.grant_epoch

    @property
    def _grant_expires_at(self) -> float:
        return self.machine.grant_expires_at

    @property
    def acks_sent(self) -> int:
        return self.machine.acks_sent

    @property
    def nacks_sent(self) -> int:
        return self.machine.nacks_sent

    @property
    def commits_applied(self) -> int:
        return self.machine.commits_applied

    @property
    def recoveries(self) -> int:
        return self.machine.recoveries

    # ------------------------------------------------------------------
    # Local interface used by co-located mobile agents
    # ------------------------------------------------------------------

    def begin_visit(
        self, agent_id: AgentId, request_id: int,
        acked: Optional[int] = None,
    ) -> VisitData:
        """One agent visit: guarded lock enqueue + information exchange."""
        data, effects = self.machine.begin_visit(
            agent_id, request_id, self.env.now, acked=acked
        )
        self._perform_all(effects)
        return data

    def request_lock(self, agent_id: AgentId, request_id: int) -> None:
        """Append the visiting agent to the Locking List (idempotent)."""
        self._perform_all(
            self.machine.request_lock(agent_id, request_id, self.env.now)
        )

    def requeue_lock(self, agent_id: AgentId, request_id: int) -> None:
        """Move the agent's lock entry to the tail of the Locking List."""
        self._perform_all(
            self.machine.requeue_lock(agent_id, request_id, self.env.now)
        )

    def lock_view(self) -> SharedView:
        """Fresh snapshot of this server's lock state."""
        return self.machine.lock_view(self.env.now)

    def read_bulletin(self) -> Dict[str, SharedView]:
        """Views of *other* servers deposited by previous visitors."""
        return self.machine.read_bulletin()

    def post_bulletin(self, views: Dict[str, SharedView]) -> int:
        """Deposit lock views; keeps only the freshest per server."""
        return self.machine.post_bulletin(views)

    def read(self, key: str):
        """Local read — the paper's fast read path (not guaranteed fresh)."""
        return self.machine.read(key)

    def version_of(self, key: str) -> int:
        return self.machine.version_of(key)

    def last_update_time(self, key: str) -> float:
        return self.machine.last_update_time(key)

    def wait_release(self) -> Event:
        """Event that fires at the next lock release at this server.

        Parked losers ([D2]) yield this to learn when to start a refresh
        tour.
        """
        event = Event(self.env)
        self._release_waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # Message handling (Algorithm 2's message clauses)
    # ------------------------------------------------------------------

    _HANDLED_KINDS = (
        "UPDATE", "COMMIT", "ABORT", "RELEASE",
        "SYNC_REQUEST", "SYNC_REPLY", "READQ",
    )

    def _message_loop(self):
        handled = set(self._HANDLED_KINDS)
        while True:
            msg: Message = yield self.endpoint.receive(
                match=lambda m: m.kind in handled
            )
            if not self.network.host_up(self.host):
                # Fail-stop: a crashed server processes nothing. (Messages
                # delivered during the crash window are already dropped by
                # the network; this guards the exact boundary instant.)
                continue
            if (
                msg.kind in ("UPDATE", "COMMIT")
                and self.config.update_apply_time > 0
            ):
                yield self.env.timeout(self.config.update_apply_time)
            effects = self.machine.on_message(
                msg.kind, msg.payload, src=msg.src, now=self.env.now
            )
            self._perform_all(effects, msg)

    def request_sync(self, peer: str) -> None:
        """Ask ``peer`` for a store snapshot (post-crash catch-up)."""
        self.endpoint.send(peer, "SYNC_REQUEST", payload={})

    # ------------------------------------------------------------------
    # Effect interpretation
    # ------------------------------------------------------------------

    def _perform_all(self, effects, msg: Optional[Message] = None) -> None:
        for effect in effects:
            self._perform(effect, msg)

    def _perform(self, effect, msg: Optional[Message] = None) -> None:
        if isinstance(effect, Send):
            self.endpoint.send(
                effect.dst,
                effect.kind,
                payload=effect.payload,
                category=effect.category or "control",
            )
        elif isinstance(effect, Granted):
            if self._obs is not None:
                self._obs_grants.inc(host=self.host, outcome="ack")
                if msg is not None:
                    self._obs_grant_latency.observe(
                        self.env.now - msg.sent_at, host=self.host
                    )
            self._trace("grant", agent_id=effect.agent_id,
                        request_id=effect.batch_id,
                        detail=f"epoch {effect.epoch}")
        elif isinstance(effect, Nacked):
            if self._obs is not None:
                self._obs_grants.inc(host=self.host, outcome="nack")
            self._trace("nack", agent_id=effect.agent_id,
                        request_id=effect.batch_id,
                        detail=f"held by {effect.holder}")
        elif isinstance(effect, CommitApplied):
            if self._obs is not None:
                self._obs_applies.inc(host=self.host)
            self._trace("apply", agent_id=effect.agent_id,
                        request_id=effect.request_id,
                        detail=f"{effect.key}=v{effect.version}")
        elif isinstance(effect, Recovered):
            self._trace("recover", detail=f"snapshot from {effect.src}")
        elif isinstance(effect, QueueChanged):
            self._note_queue()
        elif isinstance(effect, ReleaseNotify):
            self._notify_release()

    # ------------------------------------------------------------------
    # Observability & tracing
    # ------------------------------------------------------------------

    def attach_observability(self, hub) -> None:
        """Register this replica's metric families with a hub.

        Emits the Locking-List length gauge, the grant-latency histogram
        (UPDATE send → ACK issued, i.e. what a claimer actually waits
        per replica) and grant/apply counters, all labelled by host.
        """
        if hub is None or not getattr(hub, "enabled", False):
            return
        self._obs = hub
        self._obs_ll = hub.gauge(
            "replica_ll_length", "Locking List length", ("host",)
        )
        self._obs_grant_latency = hub.histogram(
            "replica_grant_latency_ms",
            "latency from UPDATE send to grant (ACK) issued", ("host",),
        )
        self._obs_grants = hub.counter(
            "replica_grants_total", "grant decisions on UPDATE messages",
            ("host", "outcome"),
        )
        self._obs_applies = hub.counter(
            "replica_commits_applied_total", "committed writes applied",
            ("host",),
        )
        self._obs_ll.set(len(self.locking_list), host=self.host)

    def _note_queue(self) -> None:
        if self.queue_monitor is not None:
            self.queue_monitor.set(self.env.now, len(self.locking_list))
        if self._obs is not None:
            self._obs_ll.set(len(self.locking_list), host=self.host)

    def _trace(self, kind: str, agent_id=None, request_id=None,
               detail: str = "") -> None:
        if self.trace is not None:
            self.trace.record(
                self.env.now, kind, host=self.host,
                agent=str(agent_id) if agent_id is not None else None,
                request_id=request_id, detail=detail,
            )

    def _notify_release(self) -> None:
        waiters, self._release_waiters = self._release_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(self.env.now)

    # ------------------------------------------------------------------

    def alive(self) -> bool:
        return self.network.host_up(self.host)

    def __repr__(self) -> str:
        return (
            f"<ReplicaServer {self.host!r} ll={len(self.locking_list)} "
            f"ul={len(self.updated_list)} commits={self.commits_applied}>"
        )
