"""The replicated server — the paper's Algorithm 2.

A :class:`ReplicaServer` is the stationary process at one host. Visiting
mobile agents interact with it **locally** (direct method calls — "taking
the advantage of being in the same site as the peer process"), while
remote coordination arrives as network messages:

* agent arrival → ``request_lock`` appends to the Locking List and the
  agent merges the server's lock state and bulletin-board information;
* ``UPDATE`` message → validate, stage, acknowledge to the coordinator;
* ``COMMIT`` message → apply the update to the versioned store, record
  history, remove the winner's lock entry, add it to the Updated List,
  and wake any agents parked waiting for a lock release ([D2]).

Servers also run an optional recovery process: after each crash window
(fail-stop with recovery, §2) they resynchronise their store from a live
peer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.agents.identity import AgentId
from repro.net.message import Message
from repro.net.network import Endpoint, Network
from repro.replication.history import CommitRecord, HistoryLog
from repro.replication.locking import LockEntry, LockingList, LockView, UpdatedList
from repro.replication.store import VersionedStore
from repro.sim.core import Environment
from repro.sim.events import Event

__all__ = ["ReplicaServer", "ReplicaConfig", "SharedView", "UpdatePayload"]


@dataclass
class ReplicaConfig:
    """Tunables of a replica server.

    Attributes
    ----------
    agent_service_time:
        Milliseconds a visiting agent spends interacting with the server
        (lock request + information exchange). The paper's ALT is
        "average number of server sites visited times the average time a
        mobile agent spent at a server".
    update_apply_time:
        Local processing time for applying an UPDATE before ACKing.
    enable_bulletin:
        Paper §3.1: agents "exchange their locking information by leaving
        the information at the servers they visited". Off for the A2
        ablation.
    recover_on_restart:
        Run the post-crash resynchronisation process.
    grant_ttl:
        Ms after which an unreleased update grant expires. A grant is
        the server-side exclusive promise behind an UPDATE
        acknowledgement; the TTL only exists so a claimer that crashed
        mid-claim cannot wedge the server forever. It must comfortably
        exceed any realistic claim round (ack gathering + commit
        propagation).
    """

    agent_service_time: float = 2.0
    update_apply_time: float = 0.5
    read_service_time: float = 0.5
    enable_bulletin: bool = True
    recover_on_restart: bool = True
    grant_ttl: float = 10_000.0


@dataclass(frozen=True)
class SharedView:
    """A (possibly stale) snapshot of one server's lock state.

    Carried by agents in their Locking Tables and deposited on server
    bulletin boards for other agents. ``versions`` is the server's
    per-key version vector at snapshot time — this is how a winner
    "checks the time of last update of all the quorum members" ([D3]):
    a view that certifies the winner as top also certifies which commits
    that server had applied.
    """

    host: str
    as_of: float
    view: LockView
    updated: frozenset  # agent ids known to have completed
    versions: Any = None  # Dict[str, int] | None

    def version_of(self, key: str) -> int:
        if not self.versions:
            return 0
        return self.versions.get(key, 0)

    def is_newer_than(self, other: Optional["SharedView"]) -> bool:
        return other is None or self.as_of > other.as_of


@dataclass(frozen=True)
class WriteOp:
    """One write within an UPDATE batch (the agent's Request List)."""

    request_id: int
    key: str
    value: Any
    version: int


@dataclass(frozen=True)
class UpdatePayload:
    """Body of UPDATE/COMMIT/ABORT/RELEASE messages.

    ``batch_id`` identifies the agent's update batch (= the first carried
    request id); ``epoch`` distinguishes successive claim attempts of the
    same agent so stale acknowledgements from an abandoned claim cannot
    be counted toward a later one. UPDATE and RELEASE carry no writes;
    COMMIT carries the full Request List with the final versions.
    """

    batch_id: int
    agent_id: AgentId
    origin: str
    writes: Tuple[WriteOp, ...] = ()
    reply_to: str = ""
    epoch: int = 0


class ReplicaServer:
    """Stationary replica process implementing Algorithm 2."""

    def __init__(
        self,
        env: Environment,
        host: str,
        endpoint: Endpoint,
        network: Network,
        peers: List[str],
        config: Optional[ReplicaConfig] = None,
    ) -> None:
        if host not in peers:
            raise ProtocolError(f"peers list must include the host {host!r}")
        self.env = env
        self.host = host
        self.endpoint = endpoint
        self.network = network
        self.peers = list(peers)
        self.config = config or ReplicaConfig()

        self.store = VersionedStore()
        self.locking_list = LockingList(host)
        self.updated_list = UpdatedList()
        self.history = HistoryLog(host)
        self.bulletin: Dict[str, SharedView] = {}
        self._pending_updates: Dict[int, UpdatePayload] = {}
        self._release_waiters: List[Event] = []
        # Exclusive update grant: the server-side promise behind an ACK.
        # While held (and unexpired), UPDATEs from other agents are
        # NACKed, which is what makes a majority of ACKs an exclusive
        # critical section regardless of how stale the claimer's Locking
        # Table was.
        self._grant_holder: Optional[AgentId] = None
        self._grant_batch: Optional[int] = None
        self._grant_epoch: int = 0
        self._grant_expires_at: float = float("-inf")
        self.nacks_sent = 0

        self.acks_sent = 0
        self.commits_applied = 0
        self.recoveries = 0
        #: optional ProtocolTrace, injected by Deployment.enable_tracing
        self.trace = None
        #: optional StateMonitor of the Locking List length, injected by
        #: Deployment.enable_queue_monitoring
        self.queue_monitor = None
        #: optional ObservabilityHub, injected by the deployment
        self._obs = None

        self._loop_process = env.process(
            self._message_loop(), name=f"replica-loop-{host}"
        )

    # ------------------------------------------------------------------
    # Local interface used by co-located mobile agents
    # ------------------------------------------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.peers)

    def request_lock(self, agent_id: AgentId, request_id: int) -> None:
        """Append the visiting agent to the Locking List (idempotent)."""
        if agent_id in self.locking_list:
            return
        if agent_id in self.updated_list:
            raise ProtocolError(
                f"agent {agent_id} already completed its update; it must "
                "not re-request the lock"
            )
        self.locking_list.append(
            LockEntry(agent_id=agent_id, request_id=request_id,
                      enqueued_at=self.env.now)
        )
        self._note_queue()

    def requeue_lock(self, agent_id: AgentId, request_id: int) -> None:
        """Move the agent's lock entry to the tail of the Locking List.

        A voluntary back-off primitive: withdrawing and immediately
        re-appending one's *own* entry can only demote oneself, so
        mutual exclusion is unaffected. The current protocol resolves
        stalemates through grant-certified claims instead ([D1]), but
        the primitive remains available to alternative policies.
        """
        self.locking_list.remove(agent_id)
        self.locking_list.append(
            LockEntry(agent_id=agent_id, request_id=request_id,
                      enqueued_at=self.env.now)
        )
        self._notify_release()

    def lock_view(self) -> SharedView:
        """Fresh snapshot of this server's lock state."""
        return SharedView(
            host=self.host,
            as_of=self.env.now,
            view=self.locking_list.view(),
            updated=self.updated_list.as_set(),
            versions=self.store.version_vector(),
        )

    def read_bulletin(self) -> Dict[str, SharedView]:
        """Views of *other* servers deposited by previous visitors."""
        if not self.config.enable_bulletin:
            return {}
        return dict(self.bulletin)

    def post_bulletin(self, views: Dict[str, SharedView]) -> int:
        """Deposit lock views; keeps only the freshest per server.

        Returns the number of entries that were news to this server.
        """
        if not self.config.enable_bulletin:
            return 0
        posted = 0
        for host, view in views.items():
            if host == self.host:
                continue  # our own state is always fresher locally
            if view.is_newer_than(self.bulletin.get(host)):
                self.bulletin[host] = view
                posted += 1
        return posted

    def read(self, key: str):
        """Local read — the paper's fast read path (not guaranteed fresh)."""
        return self.store.read(key)

    def version_of(self, key: str) -> int:
        return self.store.version_of(key)

    def last_update_time(self, key: str) -> float:
        return self.store.last_update_time(key)

    def wait_release(self) -> Event:
        """Event that fires at the next lock release at this server.

        Parked losers ([D2]) yield this to learn when to start a refresh
        tour.
        """
        event = Event(self.env)
        self._release_waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # Message handling (Algorithm 2's message clauses)
    # ------------------------------------------------------------------

    _HANDLED_KINDS = (
        "UPDATE", "COMMIT", "ABORT", "RELEASE",
        "SYNC_REQUEST", "SYNC_REPLY", "READQ",
    )

    def _message_loop(self):
        handled = set(self._HANDLED_KINDS)
        while True:
            msg: Message = yield self.endpoint.receive(
                match=lambda m: m.kind in handled
            )
            if not self.network.host_up(self.host):
                # Fail-stop: a crashed server processes nothing. (Messages
                # delivered during the crash window are already dropped by
                # the network; this guards the exact boundary instant.)
                continue
            if msg.kind == "UPDATE":
                yield from self._on_update(msg)
            elif msg.kind == "COMMIT":
                yield from self._on_commit(msg)
            elif msg.kind == "ABORT":
                self._on_abort(msg)
            elif msg.kind == "RELEASE":
                self._on_release(msg)
            elif msg.kind == "SYNC_REQUEST":
                self._on_sync_request(msg)
            elif msg.kind == "SYNC_REPLY":
                self._on_sync_reply(msg)
            elif msg.kind == "READQ":
                self._on_read_query(msg)

    def attach_observability(self, hub) -> None:
        """Register this replica's metric families with a hub.

        Emits the Locking-List length gauge, the grant-latency histogram
        (UPDATE send → ACK issued, i.e. what a claimer actually waits
        per replica) and grant/apply counters, all labelled by host.
        """
        if hub is None or not getattr(hub, "enabled", False):
            return
        self._obs = hub
        self._obs_ll = hub.gauge(
            "replica_ll_length", "Locking List length", ("host",)
        )
        self._obs_grant_latency = hub.histogram(
            "replica_grant_latency_ms",
            "latency from UPDATE send to grant (ACK) issued", ("host",),
        )
        self._obs_grants = hub.counter(
            "replica_grants_total", "grant decisions on UPDATE messages",
            ("host", "outcome"),
        )
        self._obs_applies = hub.counter(
            "replica_commits_applied_total", "committed writes applied",
            ("host",),
        )
        self._obs_ll.set(len(self.locking_list), host=self.host)

    def _note_queue(self) -> None:
        if self.queue_monitor is not None:
            self.queue_monitor.set(self.env.now, len(self.locking_list))
        if self._obs is not None:
            self._obs_ll.set(len(self.locking_list), host=self.host)

    def _trace(self, kind: str, agent_id=None, request_id=None,
               detail: str = "") -> None:
        if self.trace is not None:
            self.trace.record(
                self.env.now, kind, host=self.host,
                agent=str(agent_id) if agent_id is not None else None,
                request_id=request_id, detail=detail,
            )

    def _grant_is_free(self) -> bool:
        return (
            self._grant_holder is None
            or self.env.now > self._grant_expires_at
        )

    def _release_grant(
        self, agent_id: AgentId, up_to_epoch: Optional[int] = None
    ) -> None:
        """Free the grant if held by ``agent_id``.

        ``up_to_epoch`` (RELEASE/ABORT messages) guards against the race
        where a re-claim's UPDATE overtakes the failed claim's RELEASE:
        a release must not clear a grant issued for a *later* epoch.
        """
        if self._grant_holder != agent_id:
            return
        if up_to_epoch is not None and self._grant_epoch > up_to_epoch:
            return
        self._grant_holder = None
        self._grant_batch = None
        self._grant_epoch = 0
        self._grant_expires_at = float("-inf")

    def _on_update(self, msg: Message):
        """Grant request: ACK (with our version vector) or NACK.

        The ACK's version vector is what lets the winner pick versions
        above everything previously committed ([D3]): any earlier
        winner's grant here was released by processing its COMMIT, i.e.
        *after* applying its writes, so an ACK never predates a commit
        this server participated in.
        """
        payload: UpdatePayload = msg.payload
        if self.config.update_apply_time > 0:
            yield self.env.timeout(self.config.update_apply_time)
        if payload.agent_id == self._grant_holder or self._grant_is_free():
            if self._grant_holder == payload.agent_id:
                # A stale UPDATE must not roll the epoch backwards.
                self._grant_epoch = max(self._grant_epoch, payload.epoch)
            else:
                self._grant_epoch = payload.epoch
            self._grant_holder = payload.agent_id
            self._grant_batch = payload.batch_id
            self._grant_expires_at = self.env.now + self.config.grant_ttl
            self._pending_updates[payload.batch_id] = payload
            self.acks_sent += 1
            if self._obs is not None:
                self._obs_grants.inc(host=self.host, outcome="ack")
                self._obs_grant_latency.observe(
                    self.env.now - msg.sent_at, host=self.host
                )
            self._trace("grant", agent_id=payload.agent_id,
                        request_id=payload.batch_id,
                        detail=f"epoch {payload.epoch}")
            self.endpoint.send(
                payload.reply_to,
                "ACK",
                payload={
                    "batch_id": payload.batch_id,
                    "epoch": payload.epoch,
                    "from": self.host,
                    "versions": self.store.version_vector(),
                },
            )
        else:
            self.nacks_sent += 1
            if self._obs is not None:
                self._obs_grants.inc(host=self.host, outcome="nack")
            self._trace("nack", agent_id=payload.agent_id,
                        request_id=payload.batch_id,
                        detail=f"held by {self._grant_holder}")
            self.endpoint.send(
                payload.reply_to,
                "NACK",
                payload={
                    "batch_id": payload.batch_id,
                    "epoch": payload.epoch,
                    "from": self.host,
                    "holder": str(self._grant_holder),
                },
            )

    def _on_commit(self, msg: Message):
        payload: UpdatePayload = msg.payload
        # COMMIT is self-contained: even if our UPDATE was lost (e.g. we
        # were briefly down), the commit can still be applied.
        self._pending_updates.pop(payload.batch_id, None)
        if self.config.update_apply_time > 0:
            yield self.env.timeout(self.config.update_apply_time)
        for write in payload.writes:
            applied = self.store.apply(
                write.key, write.value, write.version, self.env.now
            )
            if applied:
                self.history.append(
                    CommitRecord(
                        request_id=write.request_id,
                        key=write.key,
                        value=write.value,
                        version=write.version,
                        committed_at=self.env.now,
                        origin=payload.origin,
                    )
                )
                self.commits_applied += 1
                if self._obs is not None:
                    self._obs_applies.inc(host=self.host)
                self._trace("apply", agent_id=payload.agent_id,
                            request_id=write.request_id,
                            detail=f"{write.key}=v{write.version}")
        # Locks from this agent are removed regardless of staleness.
        self._release_grant(payload.agent_id)
        self.locking_list.remove(payload.agent_id)
        self.updated_list.add(payload.agent_id)
        self._note_queue()
        self._notify_release()

    def _on_abort(self, msg: Message) -> None:
        """An agent gave up on its request entirely: forget it."""
        payload: UpdatePayload = msg.payload
        self._pending_updates.pop(payload.batch_id, None)
        self._release_grant(payload.agent_id)
        self.locking_list.remove(payload.agent_id)
        self.updated_list.add(payload.agent_id)
        self._note_queue()
        self._notify_release()

    def _on_release(self, msg: Message) -> None:
        """A claim failed: give back the grant, keep the lock entry."""
        payload: UpdatePayload = msg.payload
        self._pending_updates.pop(payload.batch_id, None)
        self._release_grant(payload.agent_id, up_to_epoch=payload.epoch)

    def _on_sync_request(self, msg: Message) -> None:
        self.endpoint.send(
            msg.src,
            "SYNC_REPLY",
            payload={
                "snapshot": self.store.snapshot(),
                "updated": tuple(self.updated_list.ids()),
            },
            category="data",
        )

    def _on_sync_reply(self, msg: Message) -> None:
        snapshot = msg.payload["snapshot"]
        self.store.install_snapshot(snapshot, self.env.now)
        self.updated_list.merge(msg.payload["updated"])
        self.recoveries += 1
        self._trace("recover", detail=f"snapshot from {msg.src}")
        # Stale lock entries from agents that finished while we were down
        # would wedge our LL top forever; clear them.
        for agent_id in list(self.locking_list.view()):
            if agent_id in self.updated_list:
                self.locking_list.remove(agent_id)
        if self._grant_holder is not None and self._grant_holder in self.updated_list:
            self._release_grant(self._grant_holder)
        self._note_queue()
        self._notify_release()

    def _on_read_query(self, msg: Message) -> None:
        """Quorum-read support ([D5] extension): report version + value."""
        key = msg.payload["key"]
        entry = self.store.read(key)
        self.endpoint.send(
            msg.src,
            "READR",
            payload={
                "request_id": msg.payload["request_id"],
                "key": key,
                "from": self.host,
                "version": entry.version if entry else 0,
                "value": entry.value if entry else None,
            },
        )

    def request_sync(self, peer: str) -> None:
        """Ask ``peer`` for a store snapshot (post-crash catch-up)."""
        self.endpoint.send(peer, "SYNC_REQUEST", payload={})

    def _notify_release(self) -> None:
        waiters, self._release_waiters = self._release_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed(self.env.now)

    # ------------------------------------------------------------------

    def alive(self) -> bool:
        return self.network.host_up(self.host)

    def __repr__(self) -> str:
        return (
            f"<ReplicaServer {self.host!r} ll={len(self.locking_list)} "
            f"ul={len(self.updated_list)} commits={self.commits_applied}>"
        )
