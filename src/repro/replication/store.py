"""Versioned local object store held by each replica.

Versions are per-key, assigned by the replication protocol, and strictly
increasing at every replica: an arriving update older than the installed
version is *stale* and ignored (the installed value already supersedes
it). This is what makes write-all application safe under message
reordering ([D3] in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["VersionedValue", "VersionedStore"]


@dataclass(frozen=True)
class VersionedValue:
    """One key's current state at a replica."""

    value: Any
    version: int
    updated_at: float

    def __repr__(self) -> str:
        return f"VersionedValue(v{self.version}={self.value!r} @ {self.updated_at:g})"


class VersionedStore:
    """Per-replica key/value store with per-key version ordering."""

    def __init__(self) -> None:
        self._data: Dict[str, VersionedValue] = {}
        #: versions applied, in application order, per key (for audits)
        self.applied_log: List[Tuple[str, int, float]] = []
        self.stale_rejections = 0

    # -- reads --------------------------------------------------------------

    def read(self, key: str) -> Optional[VersionedValue]:
        """Current versioned value, or ``None`` if never written."""
        return self._data.get(key)

    def version_of(self, key: str) -> int:
        """Installed version for ``key`` (0 if absent)."""
        entry = self._data.get(key)
        return entry.version if entry is not None else 0

    def last_update_time(self, key: str) -> float:
        """Paper's 'time of last update' (-inf if never written)."""
        entry = self._data.get(key)
        return entry.updated_at if entry is not None else float("-inf")

    def keys(self) -> List[str]:
        return sorted(self._data)

    def snapshot(self) -> Dict[str, VersionedValue]:
        """Copy of the full store (for recovery transfer and audits)."""
        return dict(self._data)

    def version_vector(self) -> Dict[str, int]:
        """``key -> version`` for every key present."""
        return {key: vv.version for key, vv in self._data.items()}

    # -- writes -------------------------------------------------------------

    def apply(
        self, key: str, value: Any, version: int, timestamp: float
    ) -> bool:
        """Install ``value`` at ``version`` if it is newer.

        Returns True if applied, False if stale (already superseded).
        Duplicate deliveries of the same version are stale by definition.
        """
        if version <= 0:
            raise ValueError(f"versions are positive integers: {version}")
        current = self._data.get(key)
        if current is not None and version <= current.version:
            self.stale_rejections += 1
            return False
        self._data[key] = VersionedValue(value, version, timestamp)
        self.applied_log.append((key, version, timestamp))
        return True

    def install_snapshot(
        self, snapshot: Dict[str, VersionedValue], timestamp: float
    ) -> int:
        """Recovery catch-up: adopt any strictly newer entries.

        Returns the number of keys updated.
        """
        updated = 0
        for key, vv in snapshot.items():
            if self.apply(key, vv.value, vv.version, timestamp):
                updated += 1
        return updated

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:
        return f"<VersionedStore keys={len(self._data)}>"
