"""Versioned local object store (compatibility shim).

The store's version-monotone apply rule is protocol logic ([D3]), so the
implementation now lives in the sans-IO kernel —
:mod:`repro.core.machines.structures`. This module re-exports it
unchanged for existing importers.
"""

from __future__ import annotations

from repro.core.machines.structures import VersionedStore, VersionedValue

__all__ = ["VersionedValue", "VersionedStore"]
