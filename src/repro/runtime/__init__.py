"""Live runtime backend: replica servers as real threads/processes,
agents migrating as pickled state over latency-injected queues
(the Aglets-prototype-shaped half of the reproduction)."""

from repro.runtime.cluster import LiveAudit, LiveCluster
from repro.runtime.host import HostRuntime, LiveConfig, now_ms
from repro.runtime.shipping import LiveAgentState, ship, unship
from repro.runtime.transport import LiveMessage, LiveTransport
from repro.runtime.workload import LiveWorkloadDriver, records_from_dicts

__all__ = [
    "LiveWorkloadDriver",
    "records_from_dicts",
    "LiveCluster",
    "LiveAudit",
    "HostRuntime",
    "LiveConfig",
    "LiveTransport",
    "LiveMessage",
    "LiveAgentState",
    "ship",
    "unship",
    "now_ms",
]
