"""Live cluster orchestration.

Spins up one :class:`~repro.runtime.host.HostRuntime` per replica as a
real thread (default) or OS process, submits client writes, collects
completion records from the results queue, and performs a live
consistency audit at shutdown.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReplicationError
from repro.runtime.host import HostRuntime, LiveConfig, now_ms
from repro.runtime.transport import LiveMessage, LiveTransport

__all__ = ["LiveCluster", "LiveAudit"]


@dataclass
class LiveAudit:
    """Consistency audit over the final dumps of all live hosts."""

    final_state_equal: bool
    divergence_free: bool
    total_commits: int
    problems: List[str] = field(default_factory=list)

    @property
    def consistent(self) -> bool:
        return self.final_state_equal and self.divergence_free


class LiveCluster:
    """A cluster of live replica hosts (threads or processes)."""

    def __init__(
        self,
        n_replicas: int = 3,
        backend: str = "thread",
        config: Optional[LiveConfig] = None,
        latency_range: Tuple[float, float] = (1.0, 4.0),
        seed: int = 0,
        obs=None,
    ) -> None:
        if n_replicas < 1:
            raise ReplicationError(f"need at least 1 replica: {n_replicas}")
        self.hosts = [f"h{i}" for i in range(1, n_replicas + 1)]
        self.backend = backend
        self.config = config or LiveConfig()
        self.transport = LiveTransport(
            self.hosts, backend=backend, latency_range=latency_range,
            seed=seed,
        )
        # obs=None lets each HostRuntime resolve the process-wide hub;
        # with the thread backend all hosts then share one tracer, which
        # is what makes cross-hop journeys reassemble (process-backend
        # hosts record into fork-copied hubs whose contents are lost).
        self.runtimes = {
            host: HostRuntime(
                host, self.hosts, self.transport, self.config, seed=seed,
                obs=obs,
            )
            for host in self.hosts
        }
        self._workers: List[Any] = []
        self._request_seq = 0
        self._started = False
        self._finals: Dict[str, dict] = {}
        self.records: Dict[int, dict] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "LiveCluster":
        if self._started:
            return self
        self._started = True
        for host, runtime in self.runtimes.items():
            if self.backend == "thread":
                worker = threading.Thread(
                    target=runtime.run, name=f"live-{host}", daemon=True
                )
            else:
                ctx = multiprocessing.get_context("fork")
                worker = ctx.Process(
                    target=runtime.run, name=f"live-{host}", daemon=True
                )
            worker.start()
            self._workers.append(worker)
        return self

    def __enter__(self) -> "LiveCluster":
        return self.start()

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.shutdown()

    # -- client API --------------------------------------------------------------

    def submit_write(self, home: str, key: str, value: Any) -> int:
        """Submit one update; returns the request id."""
        if home not in self.runtimes:
            raise ReplicationError(f"unknown home host {home!r}")
        if not self._started:
            raise ReplicationError("cluster not started")
        self._request_seq += 1
        request_id = self._request_seq
        self.transport.send(
            LiveMessage(
                kind="WRITE",
                src="client",
                dst=home,
                payload={
                    "request_id": request_id,
                    "key": key,
                    "value": value,
                    "created_at": now_ms(),
                },
            )
        )
        return request_id

    def wait_for(self, n_records: int, timeout: float = 30.0) -> List[dict]:
        """Block until ``n_records`` completions arrive (wall seconds)."""
        deadline = time.monotonic() + timeout
        while len(self.records) < n_records:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"only {len(self.records)}/{n_records} records after "
                    f"{timeout}s"
                )
            try:
                item = self.transport.results.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                continue
            if item.get("type") == "record":
                self.records[item["request_id"]] = item
            elif item.get("type") == "final":
                self._finals[item["host"]] = item
        return [self.records[k] for k in sorted(self.records)]

    # -- shutdown & audit -----------------------------------------------------------

    def shutdown(self, timeout: float = 10.0) -> Dict[str, dict]:
        """Stop all hosts and collect their final dumps."""
        if not self._started:
            return {}
        for host in self.hosts:
            self.transport.send(
                LiveMessage(kind="STOP", src="client", dst=host)
            )
        deadline = time.monotonic() + timeout
        while len(self._finals) < len(self.hosts):
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                item = self.transport.results.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                continue
            if item.get("type") == "final":
                self._finals[item["host"]] = item
            elif item.get("type") == "record":
                self.records[item["request_id"]] = item
        for worker in self._workers:
            worker.join(timeout=2.0)
        return dict(self._finals)

    def audit(self) -> LiveAudit:
        """Compare final stores and histories across hosts."""
        finals = self._finals
        problems: List[str] = []
        stores = {
            host: tuple(sorted(final["store"].items()))
            for host, final in finals.items()
        }
        final_state_equal = len(set(stores.values())) <= 1
        if not final_state_equal:
            problems.append(f"final stores differ: {stores}")

        seen: Dict[Tuple[str, int], Tuple[int, str]] = {}
        divergence_free = True
        commits = set()
        for host, final in finals.items():
            for request_id, key, version in final["history"]:
                commits.add((key, version))
                slot = (key, version)
                claim = (request_id, host)
                prior = seen.get(slot)
                if prior is None:
                    seen[slot] = claim
                elif prior[0] != request_id:
                    divergence_free = False
                    problems.append(
                        f"divergent commit at {slot}: {prior} vs {claim}"
                    )
        return LiveAudit(
            final_state_equal=final_state_equal,
            divergence_free=divergence_free,
            total_commits=len(commits),
            problems=problems,
        )

    def __repr__(self) -> str:
        return (
            f"<LiveCluster backend={self.backend} hosts={self.hosts} "
            f"records={len(self.records)}>"
        )
