"""Live host runtime: one replica server as a real thread/process.

Each :class:`HostRuntime` is the live **driver** for the same sans-IO
protocol kernel the DES backend runs: one
:class:`~repro.core.machines.replica.ReplicaMachine` for the replica
side, and one :class:`~repro.core.machines.agent.AgentMachine` rebuilt
around every visiting agent's shipped state. The runtime owns only the
execution substrate — the real clock, the transport mailboxes, pickled
migration, claim deadlines, the parked-agent table and the back-off RNG
— and translates kernel effects into transport sends, shipments, parks
and result records. This is the Aglets-prototype-shaped half of the
reproduction; consistency comes from the shared kernel, not from
re-implemented control flow.

Observability: when a hub is attached (injected, or process-wide via
:func:`repro.obs.enable` before the cluster starts), the runtime emits
the same span vocabulary as the DES driver — ``request`` /
``lock-wait`` / ``migrate`` / ``park`` / ``claim`` — with one twist:
an agent's spans are recorded by *several host threads*, stitched into
one journey by the trace context (``trace_id`` + root span id) carried
in the migrating :class:`~repro.runtime.shipping.LiveAgentState`.
Phase spans are recorded retroactively by whichever host completes the
phase (the phase's start timestamp travels with the agent), so no host
ever needs to mutate another thread's open span except the journey
root, which the disposing host finishes by id.
"""

from __future__ import annotations

import hashlib
import queue
import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.agents.identity import AgentId
from repro.core.machines.agent import BACKOFF, PARKED, AgentMachine
from repro.core.machines.config import LIVE_TUNABLES
from repro.core.machines.effects import (
    Backoff,
    Broadcast,
    CancelTimer,
    ClaimResolved,
    ClaimStarted,
    Dispose,
    LockWon,
    Migrate,
    Park,
    PostBulletin,
    ReleaseNotify,
    Send,
    SetTimer,
    Visit,
)
from repro.core.machines.events import (
    Arrived,
    MsgReceived,
    ReplicaDown,
    TimerFired,
)
from repro.core.machines.replica import ReplicaMachine
from repro.core.machines.structures import LockEntry
from repro.core.machines.wire import UpdatePayload, WriteOp
from repro.runtime.shipping import LiveAgentState, ship, unship
from repro.runtime.transport import LiveMessage, LiveTransport

__all__ = ["HostRuntime", "LiveConfig", "now_ms", "stable_seed"]


def now_ms() -> float:
    """Wall clock in milliseconds (monotonic)."""
    return time.monotonic() * 1000.0


def stable_seed(host: str, seed: int = 0, salt: str = "") -> int:
    """A process-independent RNG seed for ``host``.

    ``hash(host)`` is salted by PYTHONHASHSEED and therefore differs
    between runs (and between the threads and forked processes of a
    cluster started with a different interpreter), which silently broke
    run-to-run reproducibility of the live back-off jitter. A sha256
    digest of ``seed:salt:host`` is stable everywhere.
    """
    digest = hashlib.sha256(f"{seed}:{salt}:{host}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class LiveConfig:
    """Tunables of the live runtime (all times in real ms).

    The protocol fields double as the kernel machines' tunables object
    (they are read per-use, so tests may mutate them) and default to the
    kernel's :data:`~repro.core.machines.config.LIVE_TUNABLES`; ``tick``
    is the driver's own mailbox poll interval.
    """

    park_timeout: float = LIVE_TUNABLES.park_timeout
    ack_timeout: float = LIVE_TUNABLES.ack_timeout
    grant_ttl: float = LIVE_TUNABLES.grant_ttl
    max_claims: int = LIVE_TUNABLES.max_claims
    claim_backoff: float = LIVE_TUNABLES.claim_backoff
    tick: float = 10.0
    enable_bulletin: bool = LIVE_TUNABLES.enable_bulletin
    ul_retention: "float | None" = LIVE_TUNABLES.ul_retention
    #: Delta-view data plane (see ProtocolTunables.delta_views).
    delta_views: bool = LIVE_TUNABLES.delta_views


@dataclass
class _Claim:
    """A claim round in flight at this host (driver-side bookkeeping)."""

    machine: AgentMachine
    state: LiveAgentState
    deadline: Optional[float] = None
    timer_kind: str = "ack"
    started_at: float = 0.0


class _StoreView:
    """Dict-flavoured facade over the kernel's :class:`VersionedStore`.

    Keeps the live runtime's historical ``store[key] == (value, version)``
    surface (used by tests and the final dumps) while the machine owns
    the real versioned state.
    """

    def __init__(self, store) -> None:
        self._store = store

    def __setitem__(self, key: str, pair: Tuple[object, int]) -> None:
        value, version = pair
        self._store.apply(key, value, version, 0.0)

    def __getitem__(self, key: str) -> Tuple[object, int]:
        entry = self._store.read(key)
        if entry is None:
            raise KeyError(key)
        return (entry.value, entry.version)

    def __contains__(self, key: str) -> bool:
        return self._store.read(key) is not None

    def __len__(self) -> int:
        return len(self._store.keys())

    def items(self):
        for key in self._store.keys():
            entry = self._store.read(key)
            yield key, (entry.value, entry.version)

    def keys(self):
        return self._store.keys()


class _LockingListView:
    """``[(agent_id, batch_id), ...]`` facade over the kernel's LL."""

    def __init__(self, locking_list) -> None:
        self._ll = locking_list

    def __iter__(self):
        return iter(
            [(e.agent_id, e.request_id) for e in self._ll.entries()]
        )

    def __len__(self) -> int:
        return len(self._ll)

    def append(self, pair: Tuple[AgentId, int]) -> None:
        agent_id, batch_id = pair
        entries = self._ll.entries()
        at = entries[-1].enqueued_at if entries else 0.0
        self._ll.append(
            LockEntry(agent_id=agent_id, request_id=batch_id, enqueued_at=at)
        )


class HostRuntime:
    """The event loop of one live replica host."""

    def __init__(
        self,
        host: str,
        peers: List[str],
        transport: LiveTransport,
        config: Optional[LiveConfig] = None,
        seed: int = 0,
        obs=None,
    ) -> None:
        self.host = host
        self.peers = sorted(peers)
        self.n = len(self.peers)
        self.majority = self.n // 2 + 1
        self.transport = transport
        self.config = config or LiveConfig()
        self.seed = seed
        # Same zero-cost discipline as the DES components: resolve the
        # hub once, at construction; every record below is behind one
        # `is not None` check. (With the thread backend all hosts share
        # the process hub, so spans from different hosts land in one
        # tracer and cross-hop parent links stay resolvable.)
        if obs is None:
            from repro.obs.hub import get_hub

            obs = get_hub()
        self._obs = obs

        #: the replica-side protocol kernel (single-owner: only this
        #: runtime's thread feeds it).
        self.machine = ReplicaMachine(host, self.peers, self.config)
        self.store = _StoreView(self.machine.store)
        self.locking_list = _LockingListView(self.machine.locking_list)

        self.parked: Dict[AgentId, Tuple[LiveAgentState, float]] = {}
        self.claims: Dict[int, _Claim] = {}
        self._agent_seq = 0
        self._rng = random.Random(stable_seed(host, seed))
        self._stopping = False
        self._last_activity = float("-inf")
        #: quiet ms after STOP before the final dump, so in-flight
        #: COMMITs (still sitting in delivery timers) are not lost.
        self.stop_grace = 150.0

    # -- machine state, exposed for tests/audits --------------------------

    @property
    def history(self) -> List[Tuple[int, str, int]]:
        return self.machine.history.identities()

    @property
    def updated(self):
        return self.machine.updated_list

    @property
    def bulletin(self):
        return self.machine.bulletin

    @property
    def grant_holder(self) -> Optional[AgentId]:
        return self.machine.grant_holder

    @property
    def grant_epoch(self) -> int:
        return self.machine.grant_epoch

    @property
    def grant_expires(self) -> float:
        return self.machine.grant_expires_at

    # ------------------------------------------------------------------

    def run(self) -> None:
        """The host's main loop; exits after STOP once claims drain."""
        self.transport.reseed(
            stable_seed(self.host, self.seed, salt="transport") & 0xFFFFFFFF
        )
        mailbox = self.transport.mailbox(self.host)
        while True:
            try:
                msg = mailbox.get(timeout=self.config.tick / 1000.0)
            except queue.Empty:
                msg = None
            now = now_ms()
            if msg is not None:
                self._last_activity = now
                self._dispatch(msg, now)
            self._check_timers(now)
            if (
                self._stopping
                and not self.claims
                and now - self._last_activity > self.stop_grace
            ):
                self._emit_final()
                return

    def _send(self, dst: str, kind: str, payload, size: int = 0) -> None:
        self.transport.send(
            LiveMessage(
                kind=kind, src=self.host, dst=dst, payload=payload,
                size_bytes=size,
            )
        )

    def _broadcast(self, kind: str, payload) -> None:
        for peer in self.peers:
            self._send(peer, kind, payload)

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, msg: LiveMessage, now: float) -> None:
        kind = msg.kind
        if kind == "WRITE":
            self._on_write(msg, now)
        elif kind == "AGENT":
            state = unship(msg.payload)
            state.hops += 1
            if state.migrate_sent_at is not None:
                # The hop completes here: record it against the send
                # time the origin host stamped into the suitcase.
                self._hop_span(
                    state, "migrate", state.migrate_sent_at, now,
                    src=state.migrate_src or "", dst=self.host,
                )
                state.migrate_sent_at = None
                state.migrate_src = None
            self._drive(state, now)
        elif kind in ("ACK", "NACK"):
            self._on_reply(kind, msg, now)
        elif kind in ("UPDATE", "COMMIT", "ABORT", "RELEASE"):
            self._on_replica_msg(msg, now)
        elif kind == "STOP":
            self._stopping = True

    # -- client writes ------------------------------------------------------

    def _on_write(self, msg: LiveMessage, now: float) -> None:
        p = msg.payload
        self._agent_seq += 1
        state = LiveAgentState(
            agent_id=AgentId(self.host, now, self._agent_seq),
            home=self.host,
            batch_id=p["request_id"],
            requests=[
                (p["request_id"], p["key"], p["value"], p["created_at"])
            ],
            tour_remaining=[h for h in self.peers if h != self.host],
            location=self.host,
            dispatched_at=now,
        )
        state.table.delta_views = self.config.delta_views
        state.trace_id = str(state.agent_id)
        state.lock_wait_since = now
        if self._obs is not None:
            root = self._obs.start_span(
                "request", start=now, trace_id=state.trace_id,
                agent=str(state.agent_id), host=self.host,
                batch_id=state.batch_id, protocol="marp", backend="live",
            )
            state.trace_root = root.span_id
        self._drive(state, now)

    # -- span recording (all guarded on the resolved hub) -----------------

    def _hop_span(self, state: LiveAgentState, name: str, start: float,
                  end: float, status: str = "ok", **attrs) -> None:
        """Record one completed phase span of an agent's journey."""
        if self._obs is None:
            return
        self._obs.start_span(
            name, start=start, parent=state.trace_root,
            trace_id=state.trace_id, agent=str(state.agent_id), **attrs
        ).finish(end=end, status=status)

    def _finish_lock_wait(self, state: LiveAgentState, now: float,
                          status: str = "ok", **attrs) -> None:
        """Close the current lock-wait window (idempotent)."""
        if state.lock_wait_since is not None:
            self._hop_span(
                state, "lock-wait", state.lock_wait_since, now,
                status=status, **attrs,
            )
            state.lock_wait_since = None

    # -- agent driving (the kernel's effects, interpreted live) --------------

    def _drive(self, state: LiveAgentState, now: float) -> None:
        """An agent is at this host: visit, then claim/migrate/park."""
        machine = AgentMachine(state, self.peers, self.config)
        self._run_agent(machine, [Visit()], now)

    def _wake(self, state: LiveAgentState, now: float) -> None:
        """A parked or backing-off agent re-enters the acquisition loop."""
        machine = AgentMachine(state, self.peers, self.config)
        if state.phase == BACKOFF:
            effects = machine.on(TimerFired("backoff", now))
        else:
            if state.parked_since is not None:
                self._hop_span(
                    state, "park", state.parked_since, now, host=self.host
                )
            # Mark parked so the machine applies its wake semantics
            # ([D2] refresh tour) on the next arrival.
            state.phase = PARKED
            effects = [Visit()]
        state.parked_since = None
        self._run_agent(machine, effects, now)

    def _start_claim(self, state: LiveAgentState, now: float) -> None:
        """Open a claim round directly (the lock is already held)."""
        machine = AgentMachine(state, self.peers, self.config)
        state.location = self.host
        # ALT boundary: the last (successful) acquisition wins, matching
        # the DES backend's semantics for re-claims.
        state.lock_acquired_at = now
        state.visits_to_lock = len(state.visited)
        self._finish_lock_wait(state, now)
        self._run_agent(machine, machine.start_claim(now), now)

    def _run_agent(self, machine: AgentMachine, effects, now: float) -> None:
        """Flat interpretation loop over one agent machine's effects."""
        state: LiveAgentState = machine.state
        pending = deque(effects)
        while pending:
            effect = pending.popleft()
            if isinstance(effect, Visit):
                state.location = self.host
                data, reffects = self.machine.begin_visit(
                    state.agent_id, state.batch_id, now,
                    acked=state.table.acked_seq(self.host),
                )
                self._perform_replica(reffects, now)
                pending.extend(
                    machine.on(
                        Arrived(
                            host=self.host, now=now, view=data.view,
                            bulletin=data.bulletin, rank=data.rank,
                            ll_len=data.ll_len,
                        )
                    )
                )
            elif isinstance(effect, PostBulletin):
                self.machine.post_bulletin(effect.views)
            elif isinstance(effect, Migrate):
                # The live itinerary is static name order (the kernel
                # emits the candidates sorted).
                dst = effect.candidates[0]
                # Stamp the hop start *into* the suitcase: the receiving
                # host closes the migrate span against this timestamp.
                state.migrate_sent_at = now
                state.migrate_src = self.host
                blob = ship(state)
                if not self._send_agent(dst, blob):
                    # Unreachable (blocked link) — the live equivalent of
                    # the paper's failed-migration detection.
                    self._hop_span(
                        state, "migrate", now, now,
                        status="unavailable", src=self.host, dst=dst,
                    )
                    state.migrate_sent_at = None
                    state.migrate_src = None
                    pending.extend(machine.on(ReplicaDown(dst, now)))
            elif isinstance(effect, Park):
                state.parked_since = now
                self.parked[state.agent_id] = (state, now + effect.timeout)
            elif isinstance(effect, Backoff):
                # Randomized backoff, then rejoin via the park machinery.
                # The lock must be re-acquired, so a fresh lock-wait
                # window opens here (DES parity: see UpdateAgent._backoff).
                state.lock_wait_since = now
                delay = (
                    self._rng.expovariate(1.0 / effect.mean)
                    if effect.mean > 0 else 0.0
                )
                self.parked[state.agent_id] = (state, now + delay)
            elif isinstance(effect, LockWon):
                state.lock_acquired_at = now
                state.visits_to_lock = effect.visits
                self._finish_lock_wait(
                    state, now,
                    visits=effect.visit_events, reason=effect.reason,
                )
            elif isinstance(effect, ClaimStarted):
                self.claims[state.batch_id] = _Claim(
                    machine=machine, state=state, started_at=now
                )
            elif isinstance(effect, SetTimer):
                claim = self.claims.get(state.batch_id)
                if claim is not None:
                    claim.deadline = now + effect.delay
                    claim.timer_kind = effect.kind
            elif isinstance(effect, CancelTimer):
                claim = self.claims.get(state.batch_id)
                if claim is not None and claim.timer_kind == effect.kind:
                    claim.deadline = None
            elif isinstance(effect, ClaimResolved):
                claim = self.claims.pop(state.batch_id, None)
                if claim is not None:
                    self._hop_span(
                        state, "claim", claim.started_at, now,
                        status=effect.outcome, epoch=effect.epoch,
                    )
            elif isinstance(effect, Broadcast):
                self._broadcast(
                    effect.kind, self._wire(effect.kind, effect.payload)
                )
            elif isinstance(effect, Send):
                self._send(effect.dst, effect.kind, effect.payload)
            elif isinstance(effect, Dispose):
                self._emit_records(state, effect, now)
                if effect.status != "committed":
                    # An aborted journey never won its lock: close the
                    # open wait window with the failure status (DES
                    # parity: see UpdateAgent._finish).
                    self._finish_lock_wait(state, now, status=effect.status)
                if self._obs is not None and state.trace_root is not None:
                    root = self._obs.tracer.get(state.trace_root)
                    if root is not None:
                        root.finish(end=now, status=effect.status)
            # Note effects carry trace detail; the live runtime keeps no
            # protocol trace.

    def _send_agent(self, dst: str, blob: bytes) -> bool:
        delay = self.transport.send(
            LiveMessage(
                kind="AGENT", src=self.host, dst=dst, payload=blob,
                size_bytes=len(blob),
            )
        )
        return delay >= 0

    # -- wire format (unchanged from the pre-kernel runtime) ----------------

    @staticmethod
    def _wire(kind: str, payload: UpdatePayload) -> dict:
        """Kernel payload -> the live wire's plain-dict format."""
        if kind == "UPDATE":
            return {
                "batch_id": payload.batch_id,
                "epoch": payload.epoch,
                "agent_id": payload.agent_id,
                "reply_to": payload.reply_to,
                "trace_id": payload.trace_id,
            }
        if kind == "COMMIT":
            return {
                "batch_id": payload.batch_id,
                "agent_id": payload.agent_id,
                "writes": tuple(
                    (w.request_id, w.key, w.value, w.version)
                    for w in payload.writes
                ),
                "origin": payload.origin,
                "trace_id": payload.trace_id,
            }
        if kind == "RELEASE":
            return {
                "batch_id": payload.batch_id,
                "agent_id": payload.agent_id,
                "epoch": payload.epoch,
            }
        return {  # ABORT
            "batch_id": payload.batch_id,
            "agent_id": payload.agent_id,
        }

    @staticmethod
    def _payload_from_wire(p: dict) -> UpdatePayload:
        """Live wire dict -> kernel payload.

        A RELEASE without an ``epoch`` key maps to ``epoch=None``, which
        the kernel treats as an unconditional (unguarded) release.
        """
        return UpdatePayload(
            batch_id=p.get("batch_id"),
            agent_id=p.get("agent_id"),
            origin=p.get("origin", ""),
            writes=tuple(
                WriteOp(
                    request_id=w[0], key=w[1], value=w[2], version=w[3]
                )
                for w in p.get("writes", ())
            ),
            reply_to=p.get("reply_to", ""),
            epoch=p.get("epoch"),
            trace_id=p.get("trace_id"),
        )

    # -- replica-side messages ------------------------------------------------

    def _on_replica_msg(self, msg: LiveMessage, now: float) -> None:
        payload = self._payload_from_wire(msg.payload)
        effects = self.machine.on_message(
            msg.kind, payload, src=msg.src, now=now
        )
        self._perform_replica(effects, now)

    def _perform_replica(self, effects, now: float) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self._send(effect.dst, effect.kind, effect.payload)
            elif isinstance(effect, ReleaseNotify):
                self._wake_parked(now)
            # Granted / Nacked / CommitApplied / QueueChanged / Recovered
            # are observability milestones; the live runtime has no hub.

    # -- claim replies --------------------------------------------------------

    def _on_reply(self, kind: str, msg: LiveMessage, now: float) -> None:
        claim = self.claims.get(msg.payload["batch_id"])
        if claim is None:
            return
        effects = claim.machine.on(
            MsgReceived(kind, msg.payload, now, src=msg.src)
        )
        self._run_agent(claim.machine, effects, now)

    def _emit_records(
        self, state: LiveAgentState, dispose: Dispose, now: float
    ) -> None:
        if dispose.status == "committed":
            for write in dispose.writes:
                self.transport.results.put(
                    {
                        "type": "record",
                        "request_id": write.request_id,
                        "status": "committed",
                        "home": state.home,
                        "dispatched_at": state.dispatched_at,
                        "lock_acquired_at": state.lock_acquired_at,
                        "completed_at": now,
                        "visits_to_lock": state.visits_to_lock,
                        "hops": state.hops,
                        "agent_id": str(state.agent_id),
                    }
                )
            return
        for request in state.requests:
            self.transport.results.put(
                {
                    "type": "record",
                    "request_id": request[0],
                    "status": "failed",
                    "home": state.home,
                    "dispatched_at": state.dispatched_at,
                    "lock_acquired_at": None,
                    "completed_at": now,
                    "visits_to_lock": None,
                    "hops": state.hops,
                    "agent_id": str(state.agent_id),
                }
            )

    # -- parked agents ([D2]) --------------------------------------------------

    def _wake_parked(self, now: float) -> None:
        woken, self.parked = self.parked, {}
        for state, _deadline in woken.values():
            self._wake(state, now)

    # -- timers -------------------------------------------------------------------

    def _check_timers(self, now: float) -> None:
        for batch_id in list(self.claims):
            claim = self.claims.get(batch_id)
            if (
                claim is not None
                and claim.deadline is not None
                and now > claim.deadline
            ):
                claim.deadline = None
                self._run_agent(
                    claim.machine,
                    claim.machine.on(TimerFired(claim.timer_kind, now)),
                    now,
                )
        due = [
            agent_id
            for agent_id, (_state, deadline) in self.parked.items()
            if now > deadline
        ]
        for agent_id in due:
            state, _deadline = self.parked.pop(agent_id)
            self._wake(state, now)

    # -- shutdown --------------------------------------------------------------------

    def _emit_final(self) -> None:
        self.transport.results.put(
            {
                "type": "final",
                "host": self.host,
                "store": {
                    k: (repr(v), ver) for k, (v, ver) in self.store.items()
                },
                "history": list(self.history),
                "locking_list_len": len(self.locking_list),
                "parked": len(self.parked),
            }
        )
