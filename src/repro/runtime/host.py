"""Live host runtime: one replica server as a real thread/process.

Each :class:`HostRuntime` owns its replica state (store, Locking List,
Updated List, grant) and drives visiting agents through the *same*
decision logic as the DES backend — the Locking Table and
:func:`repro.core.priority.decide` are reused verbatim; only the
execution substrate differs (real clocks, real queues, pickled
migration). This is the Aglets-prototype-shaped half of the
reproduction.
"""

from __future__ import annotations

import queue
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.agents.identity import AgentId
from repro.core.priority import STALEMATE, WIN, decide
from repro.replication.server import SharedView
from repro.runtime.shipping import LiveAgentState, ship, unship
from repro.runtime.transport import LiveMessage, LiveTransport

__all__ = ["HostRuntime", "LiveConfig", "now_ms"]


def now_ms() -> float:
    """Wall clock in milliseconds (monotonic)."""
    return time.monotonic() * 1000.0


@dataclass
class LiveConfig:
    """Tunables of the live runtime (all times in real ms)."""

    park_timeout: float = 60.0
    ack_timeout: float = 500.0
    grant_ttl: float = 5_000.0
    max_claims: int = 10
    claim_backoff: float = 15.0
    tick: float = 10.0
    enable_bulletin: bool = True


@dataclass
class _Claim:
    state: LiveAgentState
    epoch: int
    deadline: float
    acks: Dict[str, Dict[str, int]] = field(default_factory=dict)
    nacks: Set[str] = field(default_factory=set)


class HostRuntime:
    """The event loop of one live replica host."""

    def __init__(
        self,
        host: str,
        peers: List[str],
        transport: LiveTransport,
        config: Optional[LiveConfig] = None,
    ) -> None:
        self.host = host
        self.peers = sorted(peers)
        self.n = len(self.peers)
        self.majority = self.n // 2 + 1
        self.transport = transport
        self.config = config or LiveConfig()

        # Replica state (single-owner: only this runtime touches it).
        self.store: Dict[str, Tuple[object, int]] = {}
        self.history: List[Tuple[int, str, int]] = []
        self.locking_list: List[Tuple[AgentId, int]] = []
        self.updated: Set[AgentId] = set()
        self.bulletin: Dict[str, SharedView] = {}
        self.grant_holder: Optional[AgentId] = None
        self.grant_epoch: int = 0
        self.grant_expires: float = float("-inf")

        self.parked: Dict[AgentId, Tuple[LiveAgentState, float]] = {}
        self.claims: Dict[int, _Claim] = {}
        self._agent_seq = 0
        self._rng = random.Random(hash(host) & 0xFFFFFFFF)
        self._stopping = False
        self._last_activity = float("-inf")
        #: quiet ms after STOP before the final dump, so in-flight
        #: COMMITs (still sitting in delivery timers) are not lost.
        self.stop_grace = 150.0

    # ------------------------------------------------------------------

    def run(self) -> None:
        """The host's main loop; exits after STOP once claims drain."""
        self.transport.reseed((hash(self.host) ^ 0xA5A5) & 0xFFFFFFFF)
        mailbox = self.transport.mailbox(self.host)
        while True:
            try:
                msg = mailbox.get(timeout=self.config.tick / 1000.0)
            except queue.Empty:
                msg = None
            now = now_ms()
            if msg is not None:
                self._last_activity = now
                self._dispatch(msg, now)
            self._check_timers(now)
            if (
                self._stopping
                and not self.claims
                and now - self._last_activity > self.stop_grace
            ):
                self._emit_final()
                return

    def _send(self, dst: str, kind: str, payload, size: int = 0) -> None:
        self.transport.send(
            LiveMessage(
                kind=kind, src=self.host, dst=dst, payload=payload,
                size_bytes=size,
            )
        )

    def _broadcast(self, kind: str, payload) -> None:
        for peer in self.peers:
            self._send(peer, kind, payload)

    # -- dispatch --------------------------------------------------------

    def _dispatch(self, msg: LiveMessage, now: float) -> None:
        kind = msg.kind
        if kind == "WRITE":
            self._on_write(msg, now)
        elif kind == "AGENT":
            state = unship(msg.payload)
            state.hops += 1
            self._drive(state, now)
        elif kind == "UPDATE":
            self._on_update(msg, now)
        elif kind == "ACK":
            self._on_ack(msg, now)
        elif kind == "NACK":
            self._on_nack(msg, now)
        elif kind == "COMMIT":
            self._on_commit(msg, now)
        elif kind in ("RELEASE", "ABORT"):
            self._on_release(msg, abort=(kind == "ABORT"))
        elif kind == "STOP":
            self._stopping = True

    # -- client writes ------------------------------------------------------

    def _on_write(self, msg: LiveMessage, now: float) -> None:
        p = msg.payload
        self._agent_seq += 1
        state = LiveAgentState(
            agent_id=AgentId(self.host, now, self._agent_seq),
            home=self.host,
            batch_id=p["request_id"],
            requests=[(p["request_id"], p["key"], p["value"], p["created_at"])],
            dispatched_at=now,
            tour_remaining=[h for h in self.peers if h != self.host],
        )
        self._drive(state, now)

    # -- agent driving (Algorithm 1, state-machine form) ---------------------

    def _visit(self, state: LiveAgentState, now: float) -> None:
        agent_id = state.agent_id
        if agent_id not in self.updated and all(
            entry != agent_id for entry, _b in self.locking_list
        ):
            self.locking_list.append((agent_id, state.batch_id))
        view = SharedView(
            host=self.host,
            as_of=now,
            view=tuple(entry for entry, _b in self.locking_list),
            updated=frozenset(self.updated),
            versions={k: v for k, (_val, v) in self.store.items()},
        )
        state.table.update(view)
        if self.config.enable_bulletin:
            state.table.merge_bulletin(dict(self.bulletin))
            for host, shared in state.table.shareable_views(self.host).items():
                if shared.is_newer_than(self.bulletin.get(host)):
                    self.bulletin[host] = shared
        state.visited.add(self.host)
        state.visit_events += 1
        if self.host in state.tour_remaining:
            state.tour_remaining.remove(self.host)

    def _holds_lock(self, state: LiveAgentState) -> bool:
        decision = decide(
            state.table, self.n, state.agent_id,
            unavailable=frozenset(state.unavailable),
        )
        if decision.outcome == WIN:
            return True
        return (
            decision.outcome == STALEMATE
            and decision.winner == state.agent_id
        )

    def _drive(self, state: LiveAgentState, now: float) -> None:
        """Visit here, then claim, migrate onward, or park."""
        self._visit(state, now)
        if self._holds_lock(state):
            self._start_claim(state, now)
        elif not self._tour_onward(state):
            self._park(state, now)

    def _wake(self, state: LiveAgentState, now: float) -> None:
        """A parked agent re-evaluates after a release or timeout."""
        self._visit(state, now)
        if self._holds_lock(state):
            self._start_claim(state, now)
            return
        # Restart the refresh tour over the other hosts ([D2]); replicas
        # declared unavailable get another chance in the new round.
        state.unavailable.clear()
        state.tour_remaining = [h for h in self.peers if h != self.host]
        if not self._tour_onward(state):
            self._park(state, now)

    def _tour_onward(self, state: LiveAgentState) -> bool:
        """Ship the agent to the next reachable unvisited host.

        Unreachable destinations (blocked links — the live equivalent of
        the paper's failed-migration detection) are declared unavailable
        for this round. Returns False when no destination remains, in
        which case the agent may hold the lock now that unavailability
        is known, and otherwise should park.
        """
        while state.tour_remaining:
            dst = state.tour_remaining[0]
            blob = ship(state)
            if self._send_agent(dst, blob):
                return True
            state.tour_remaining.remove(dst)
            state.unavailable.add(dst)
        if self._holds_lock(state):
            self._start_claim(state, now_ms())
            return True
        return False

    def _send_agent(self, dst: str, blob: bytes) -> bool:
        delay = self.transport.send(
            LiveMessage(
                kind="AGENT", src=self.host, dst=dst, payload=blob,
                size_bytes=len(blob),
            )
        )
        return delay >= 0

    def _park(self, state: LiveAgentState, now: float) -> None:
        self.parked[state.agent_id] = (
            state, now + self.config.park_timeout
        )

    # -- claim round ----------------------------------------------------------

    def _start_claim(self, state: LiveAgentState, now: float) -> None:
        state.epoch += 1
        # ALT boundary: the last (successful) acquisition wins, matching
        # the DES backend's semantics for re-claims.
        state.lock_acquired_at = now
        state.visits_to_lock = len(state.visited)
        self.claims[state.batch_id] = _Claim(
            state=state, epoch=state.epoch,
            deadline=now + self.config.ack_timeout,
        )
        self._broadcast(
            "UPDATE",
            {
                "batch_id": state.batch_id,
                "epoch": state.epoch,
                "agent_id": state.agent_id,
                "reply_to": self.host,
            },
        )

    def _on_update(self, msg: LiveMessage, now: float) -> None:
        p = msg.payload
        agent_id = p["agent_id"]
        free = self.grant_holder is None or now > self.grant_expires
        if agent_id == self.grant_holder or free:
            if self.grant_holder == agent_id:
                self.grant_epoch = max(self.grant_epoch, p["epoch"])
            else:
                self.grant_epoch = p["epoch"]
            self.grant_holder = agent_id
            self.grant_expires = now + self.config.grant_ttl
            self._send(
                p["reply_to"],
                "ACK",
                {
                    "batch_id": p["batch_id"],
                    "epoch": p["epoch"],
                    "from": self.host,
                    "versions": {
                        k: v for k, (_val, v) in self.store.items()
                    },
                },
            )
        else:
            self._send(
                p["reply_to"],
                "NACK",
                {
                    "batch_id": p["batch_id"],
                    "epoch": p["epoch"],
                    "from": self.host,
                },
            )

    def _claim_for(self, payload) -> Optional[_Claim]:
        claim = self.claims.get(payload["batch_id"])
        if claim is None or claim.epoch != payload["epoch"]:
            return None
        return claim

    def _on_ack(self, msg: LiveMessage, now: float) -> None:
        claim = self._claim_for(msg.payload)
        if claim is None:
            return
        claim.acks[msg.payload["from"]] = msg.payload["versions"]
        if len(claim.acks) >= self.majority:
            self._complete_claim(claim, now)

    def _on_nack(self, msg: LiveMessage, now: float) -> None:
        claim = self._claim_for(msg.payload)
        if claim is None:
            return
        claim.nacks.add(msg.payload["from"])
        if self.n - len(claim.nacks) < self.majority:
            self._fail_claim(claim, now)

    def _complete_claim(self, claim: _Claim, now: float) -> None:
        state = claim.state
        del self.claims[state.batch_id]
        # [D3] version ceiling: LT monotone max + ACKed version vectors.
        writes = []
        next_version: Dict[str, int] = {}
        for request_id, key, value, _created in state.requests:
            if key not in next_version:
                ceiling = state.table.version_ceiling(key)
                for versions in claim.acks.values():
                    ceiling = max(ceiling, versions.get(key, 0))
                next_version[key] = ceiling + 1
            writes.append((request_id, key, value, next_version[key]))
            next_version[key] += 1
        self._broadcast(
            "COMMIT",
            {
                "batch_id": state.batch_id,
                "agent_id": state.agent_id,
                "writes": tuple(writes),
                "origin": state.home,
            },
        )
        for request_id, key, _value, _version in writes:
            self.transport.results.put(
                {
                    "type": "record",
                    "request_id": request_id,
                    "status": "committed",
                    "home": state.home,
                    "dispatched_at": state.dispatched_at,
                    "lock_acquired_at": state.lock_acquired_at,
                    "completed_at": now,
                    "visits_to_lock": state.visits_to_lock,
                    "hops": state.hops,
                    "agent_id": str(state.agent_id),
                }
            )

    def _fail_claim(self, claim: _Claim, now: float) -> None:
        state = claim.state
        del self.claims[state.batch_id]
        state.failed_claims += 1
        if state.failed_claims >= self.config.max_claims:
            self._broadcast(
                "ABORT",
                {"batch_id": state.batch_id, "agent_id": state.agent_id},
            )
            for request_id, _key, _value, _created in state.requests:
                self.transport.results.put(
                    {
                        "type": "record",
                        "request_id": request_id,
                        "status": "failed",
                        "home": state.home,
                        "dispatched_at": state.dispatched_at,
                        "lock_acquired_at": None,
                        "completed_at": now,
                        "visits_to_lock": None,
                        "hops": state.hops,
                        "agent_id": str(state.agent_id),
                    }
                )
            return
        self._broadcast(
            "RELEASE",
            {
                "batch_id": state.batch_id,
                "agent_id": state.agent_id,
                "epoch": state.epoch,
            },
        )
        # Randomized backoff, then rejoin via the park machinery.
        backoff = self._rng.expovariate(1.0 / self.config.claim_backoff)
        self.parked[state.agent_id] = (state, now + backoff)

    # -- replica-side commit path -----------------------------------------------

    def _on_commit(self, msg: LiveMessage, now: float) -> None:
        p = msg.payload
        for request_id, key, value, version in p["writes"]:
            current = self.store.get(key)
            if current is None or version > current[1]:
                self.store[key] = (value, version)
                self.history.append((request_id, key, version))
        self._forget_agent(p["agent_id"])
        self._wake_parked(now)

    def _on_release(self, msg: LiveMessage, abort: bool = False) -> None:
        p = msg.payload
        if self.grant_holder == p["agent_id"]:
            # Epoch guard: a stale RELEASE (overtaken by the re-claim's
            # UPDATE) must not clear a newer grant. ABORT is terminal.
            release_epoch = p.get("epoch")
            if abort or release_epoch is None or (
                self.grant_epoch <= release_epoch
            ):
                self.grant_holder = None
                self.grant_epoch = 0
                self.grant_expires = float("-inf")
        if abort:
            self._forget_agent(p["agent_id"])
            self._wake_parked(now_ms())

    def _forget_agent(self, agent_id: AgentId) -> None:
        if self.grant_holder == agent_id:
            self.grant_holder = None
            self.grant_epoch = 0
            self.grant_expires = float("-inf")
        self.locking_list = [
            (entry, batch)
            for entry, batch in self.locking_list
            if entry != agent_id
        ]
        self.updated.add(agent_id)

    def _wake_parked(self, now: float) -> None:
        woken, self.parked = self.parked, {}
        for state, _deadline in woken.values():
            self._wake(state, now)

    # -- timers -------------------------------------------------------------------

    def _check_timers(self, now: float) -> None:
        for batch_id in list(self.claims):
            claim = self.claims.get(batch_id)
            if claim is not None and now > claim.deadline:
                self._fail_claim(claim, now)
        due = [
            agent_id
            for agent_id, (_state, deadline) in self.parked.items()
            if now > deadline
        ]
        for agent_id in due:
            state, _deadline = self.parked.pop(agent_id)
            self._wake(state, now)

    # -- shutdown --------------------------------------------------------------------

    def _emit_final(self) -> None:
        self.transport.results.put(
            {
                "type": "final",
                "host": self.host,
                "store": {
                    k: (repr(v), ver) for k, (v, ver) in self.store.items()
                },
                "history": list(self.history),
                "locking_list_len": len(self.locking_list),
                "parked": len(self.parked),
            }
        )
