"""Agent shipping: serialise an agent's state for migration.

In the live runtime an agent migration is a real pickle round-trip —
exactly what Aglets did with Java serialisation. The carried state is
the paper's suitcase: the Request List, the Locking Table (a genuine
:class:`repro.core.locking_table.LockingTable`), the Un-visited Servers
List and the identifiers.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.agents.identity import AgentId
from repro.core.locking_table import LockingTable

__all__ = ["LiveAgentState", "ship", "unship"]


@dataclass
class LiveAgentState:
    """The migrating state of one live update agent."""

    agent_id: AgentId
    home: str
    batch_id: int
    #: (request_id, key, value, created_at_ms)
    requests: List[Tuple[int, str, object, float]]
    table: LockingTable = field(default_factory=LockingTable)
    visited: Set[str] = field(default_factory=set)
    tour_remaining: List[str] = field(default_factory=list)
    unavailable: Set[str] = field(default_factory=set)
    visit_events: int = 0
    epoch: int = 0
    failed_claims: int = 0
    dispatched_at: Optional[float] = None
    lock_acquired_at: Optional[float] = None
    visits_to_lock: Optional[int] = None
    hops: int = 0


def ship(state: LiveAgentState) -> bytes:
    """Serialise for migration; the byte length sizes the transfer."""
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def unship(blob: bytes) -> LiveAgentState:
    """Rehydrate a migrated agent at the destination host."""
    state = pickle.loads(blob)
    if not isinstance(state, LiveAgentState):
        raise TypeError(f"expected LiveAgentState, got {type(state)!r}")
    return state
