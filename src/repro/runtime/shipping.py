"""Agent shipping: serialise an agent's state for migration.

In the live runtime an agent migration is a real pickle round-trip —
exactly what Aglets did with Java serialisation. The carried state is
the paper's suitcase: the Request List, the Locking Table (a genuine
:class:`repro.core.machines.table.LockingTable`), the Un-visited
Servers List and the identifiers.

:class:`LiveAgentState` extends the kernel's
:class:`~repro.core.machines.agent.AgentCoreState` with the live-only
measurement fields (dispatch/lock timestamps, hop count); the protocol
fields are exactly the ones every :class:`AgentMachine` operates over,
so a host rebuilds a machine around the unshipped state at every hop.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Optional

from repro.core.machines.agent import AgentCoreState

__all__ = ["LiveAgentState", "ship", "unship"]


@dataclass
class LiveAgentState(AgentCoreState):
    """The migrating state of one live update agent.

    ``requests`` entries are ``(request_id, key, value, created_at_ms)``
    — the kernel reads the first three elements and ignores the rest.
    """

    dispatched_at: Optional[float] = None
    lock_acquired_at: Optional[float] = None
    visits_to_lock: Optional[int] = None
    hops: int = 0
    # -- cross-hop span bookkeeping (observational only) ----------------
    # Spans in the live backend are recorded *retroactively* by whichever
    # host completes a phase, so the phase start times must migrate with
    # the agent: a hop's send time travels to the destination host, the
    # current lock-wait window start travels to wherever the lock is
    # finally won. (The trace id / root span id live on the kernel's
    # AgentCoreState — they are protocol-payload-visible.)
    lock_wait_since: Optional[float] = None
    parked_since: Optional[float] = None
    migrate_sent_at: Optional[float] = None
    migrate_src: Optional[str] = None


def ship(state: LiveAgentState) -> bytes:
    """Serialise for migration; the byte length sizes the transfer."""
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def unship(blob: bytes) -> LiveAgentState:
    """Rehydrate a migrated agent at the destination host."""
    state = pickle.loads(blob)
    if not isinstance(state, LiveAgentState):
        raise TypeError(f"expected LiveAgentState, got {type(state)!r}")
    return state
