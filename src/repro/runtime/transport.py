"""Live transport: real queues with injected latency.

Each host owns a mailbox (``queue.Queue`` for the thread backend,
``multiprocessing.Queue`` for the process backend). A send schedules
delivery after a uniformly random delay via a daemon timer thread in the
*sending* runtime, so messages really do arrive asynchronously and out
of order — the live equivalent of the DES network.
"""

from __future__ import annotations

import multiprocessing
import queue
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.errors import NetworkError

__all__ = ["LiveMessage", "LiveTransport"]


@dataclass
class LiveMessage:
    """One transmission between live hosts (must be picklable)."""

    kind: str
    src: str
    dst: str
    payload: Any = None
    size_bytes: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)


class LiveTransport:
    """Mailbox fabric shared by all hosts of one live cluster."""

    def __init__(
        self,
        hosts,
        backend: str = "thread",
        latency_range: Tuple[float, float] = (1.0, 4.0),
        bandwidth_bytes_per_ms: float = 1e5,
        seed: int = 0,
    ) -> None:
        if backend not in ("thread", "process"):
            raise NetworkError(f"unknown live backend {backend!r}")
        low, high = latency_range
        if not 0 <= low <= high:
            raise NetworkError(f"invalid latency range {latency_range}")
        self.backend = backend
        self.hosts = list(hosts)
        self.latency_range = (low, high)
        self.bandwidth = bandwidth_bytes_per_ms
        if backend == "thread":
            self.mailboxes: Dict[str, Any] = {
                h: queue.Queue() for h in self.hosts
            }
            self.results: Any = queue.Queue()
        else:
            ctx = multiprocessing.get_context("fork")
            self.mailboxes = {h: ctx.Queue() for h in self.hosts}
            self.results = ctx.Queue()
        # stdlib RNG: picklable-free per-runtime usage; each runtime gets
        # its own child seed in practice, here one shared lock suffices
        # for the thread backend and each forked process re-seeds.
        self._rng = random.Random(seed)
        self._rng_lock = threading.Lock()
        # blocked (src, dst) pairs: transmissions are silently dropped.
        # Thread backend only (shared set); process runtimes fork a copy.
        self._blocked: set = set()

    # -- fault injection (thread backend) ---------------------------------

    def block(self, src: str, dst: str) -> None:
        """Drop everything sent on this link (both directions)."""
        self._blocked.add((src, dst))
        self._blocked.add((dst, src))

    def unblock(self, src: str, dst: str) -> None:
        """Restore a previously blocked link."""
        self._blocked.discard((src, dst))
        self._blocked.discard((dst, src))

    def isolate(self, host: str) -> None:
        """Cut every link to/from ``host`` (a live 'crash')."""
        for other in self.hosts:
            if other != host:
                self.block(host, other)

    def heal(self, host: str) -> None:
        """Reconnect an isolated host."""
        for other in self.hosts:
            if other != host:
                self.unblock(host, other)

    def reseed(self, salt: int) -> None:
        """Called by forked runtimes so children diverge deterministically."""
        self._rng = random.Random(salt)
        self._rng_lock = threading.Lock()

    def _delay_ms(self, size_bytes: int) -> float:
        with self._rng_lock:
            base = self._rng.uniform(*self.latency_range)
        return base + size_bytes / self.bandwidth

    def send(self, msg: LiveMessage) -> float:
        """Schedule delivery; returns the sampled delay in ms.

        Returns ``-1.0`` when the link is blocked (message dropped).
        """
        if msg.dst not in self.mailboxes:
            raise NetworkError(f"unknown destination {msg.dst!r}")
        if (msg.src, msg.dst) in self._blocked:
            return -1.0
        delay = self._delay_ms(msg.size_bytes)
        mailbox = self.mailboxes[msg.dst]
        if delay < 0.05:  # sub-tick delays: deliver synchronously
            mailbox.put(msg)
        else:
            timer = threading.Timer(delay / 1000.0, mailbox.put, args=(msg,))
            timer.daemon = True
            timer.start()
        return delay

    def mailbox(self, host: str):
        return self.mailboxes[host]

    def __repr__(self) -> str:
        return (
            f"<LiveTransport backend={self.backend} hosts={len(self.hosts)} "
            f"latency={self.latency_range}>"
        )
