"""Open-loop workload driving for the live runtime.

One daemon thread per host submits updates at exponential inter-arrival
times against a running :class:`~repro.runtime.cluster.LiveCluster` —
the live equivalent of :func:`repro.replication.client.attach_clients`.
Completion records convert to :class:`RequestRecord`s so the standard
metrics (ALT/ATT/PRK) apply unchanged.
"""

from __future__ import annotations

import random
import threading
import time
from typing import List

from repro.errors import WorkloadError
from repro.replication.requests import WRITE, RequestRecord
from repro.runtime.cluster import LiveCluster

__all__ = ["LiveWorkloadDriver", "records_from_dicts"]


def records_from_dicts(raw_records: List[dict]) -> List[RequestRecord]:
    """Adapt the live runtime's record dicts to RequestRecords."""
    out = []
    for raw in raw_records:
        out.append(
            RequestRecord(
                request_id=raw["request_id"],
                home=raw["home"],
                op=WRITE,
                key="x",
                created_at=raw.get("created_at", raw["dispatched_at"]),
                dispatched_at=raw["dispatched_at"],
                lock_acquired_at=raw["lock_acquired_at"],
                completed_at=raw["completed_at"],
                visits_to_lock=raw["visits_to_lock"],
                agent_id=raw.get("agent_id"),
                status=raw["status"],
            )
        )
    return out


class LiveWorkloadDriver:
    """Submits an update-only workload against a live cluster."""

    def __init__(
        self,
        cluster: LiveCluster,
        mean_interarrival_ms: float = 50.0,
        writes_per_host: int = 5,
        key: str = "x",
        seed: int = 0,
    ) -> None:
        if mean_interarrival_ms <= 0:
            raise WorkloadError(
                f"mean inter-arrival must be > 0: {mean_interarrival_ms}"
            )
        if writes_per_host < 1:
            raise WorkloadError(
                f"writes_per_host must be >= 1: {writes_per_host}"
            )
        self.cluster = cluster
        self.mean_interarrival_ms = mean_interarrival_ms
        self.writes_per_host = writes_per_host
        self.key = key
        self.seed = seed
        self._threads: List[threading.Thread] = []

    @property
    def total_writes(self) -> int:
        return self.writes_per_host * len(self.cluster.hosts)

    def _submitter(self, host: str, index: int) -> None:
        rng = random.Random(f"{self.seed}:{host}")
        for sequence in range(self.writes_per_host):
            time.sleep(
                rng.expovariate(1.0 / self.mean_interarrival_ms) / 1000.0
            )
            self.cluster.submit_write(
                host, self.key, (index, sequence)
            )

    def run(self, timeout: float = 120.0) -> List[RequestRecord]:
        """Submit everything and block for all completions (wall secs)."""
        for index, host in enumerate(self.cluster.hosts):
            thread = threading.Thread(
                target=self._submitter, args=(host, index),
                name=f"live-client-{host}", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        raw = self.cluster.wait_for(self.total_writes, timeout=timeout)
        for thread in self._threads:
            thread.join(timeout=1.0)
        return records_from_dicts(raw)

    def __repr__(self) -> str:
        return (
            f"<LiveWorkloadDriver hosts={len(self.cluster.hosts)} "
            f"gap={self.mean_interarrival_ms}ms x{self.writes_per_host}>"
        )
