"""Deterministic discrete-event simulation kernel.

A self-contained, generator-based DES engine in the style of SimPy:
processes are Python generators that advance by yielding
:class:`~repro.sim.events.Event` objects; the
:class:`~repro.sim.core.Environment` owns the clock and the event queue.

Quick example::

    from repro.sim import Environment

    def clock(env, name, tick):
        while True:
            yield env.timeout(tick)
            print(name, env.now)

    env = Environment()
    env.process(clock(env, "fast", 1))
    env.run(until=5)
"""

from repro.sim.conditions import AllOf, AnyOf, Condition
from repro.sim.core import NORMAL, URGENT, Environment, Process, Timeout
from repro.sim.events import PENDING, Event
from repro.sim.interrupts import Interrupt
from repro.sim.monitor import Monitor, StateMonitor
from repro.sim.resources import PriorityResource, Request, Resource
from repro.sim.rng import RandomStreams, Stream
from repro.sim.stores import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "Environment",
    "Process",
    "Event",
    "Timeout",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Condition",
    "Store",
    "FilterStore",
    "PriorityStore",
    "PriorityItem",
    "Resource",
    "PriorityResource",
    "Request",
    "Monitor",
    "StateMonitor",
    "RandomStreams",
    "Stream",
    "PENDING",
    "URGENT",
    "NORMAL",
]
