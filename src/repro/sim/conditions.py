"""Composite wait conditions: wait for *all* or *any* of several events.

``AllOf`` triggers when every constituent event has been processed;
``AnyOf`` triggers as soon as one has. Both produce a dictionary mapping
the constituent events to their values (for ``AnyOf``, only constituents
already processed at fire time appear). A failure of any constituent
fails the condition with the same exception.

Implementation note: conditions count *processed* events (callbacks run),
not merely *triggered* ones — a :class:`~repro.sim.core.Timeout` carries
its value from construction and is therefore "triggered" long before it
actually occurs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SimulationError
from repro.sim.events import Event

__all__ = ["Condition", "AllOf", "AnyOf"]


class Condition(Event):
    """Base class implementing the bookkeeping shared by All/Any."""

    __slots__ = ("_events", "_processed_count")

    def __init__(self, env, events: List[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise SimulationError(
                    "all events of a condition must share one environment"
                )
        self._processed_count = 0
        for event in self._events:
            if event.callbacks is None:
                # Already processed before the condition was built.
                if not event._ok:
                    event._defused = True
                    self.fail(event._value)
                    return
                self._processed_count += 1
            else:
                event.callbacks.append(self._check)
        if not self.triggered and self._satisfied():
            self.succeed(self._collect())

    # Subclass contract -------------------------------------------------

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    # Internals -----------------------------------------------------------

    def _collect(self) -> Dict[Event, object]:
        return {
            event: event._value
            for event in self._events
            if event.callbacks is None and event._ok
        }

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._processed_count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(Condition):
    """Triggers once every constituent event has occurred."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._processed_count == len(self._events)


class AnyOf(Condition):
    """Triggers as soon as one constituent event occurs.

    An ``AnyOf`` over zero events triggers immediately (vacuously), which
    keeps ``reduce``-style composition total.
    """

    __slots__ = ()

    def _satisfied(self) -> bool:
        if not self._events:
            return True
        return self._processed_count >= 1
