"""The discrete-event simulation environment and process model.

:class:`Environment` owns simulated time and the event queue; a
:class:`Process` wraps a Python generator that advances by yielding
:class:`~repro.sim.events.Event` objects. The kernel is deterministic:
events scheduled for the same instant are processed in FIFO order of
scheduling (stable via a monotone sequence number), with an urgency tier
so that interrupts and process initialisation run before ordinary events
at the same timestamp.
"""

from __future__ import annotations

import time as _time
from bisect import bisect_left as _bisect_left
from heapq import heappop, heappush
from typing import Any, Generator, Iterable, List, Optional, Tuple

from repro.errors import SimulationError, StopSimulation
from repro.sim.events import PENDING, Event
from repro.sim.interrupts import Interrupt

__all__ = ["Environment", "Process", "Timeout", "URGENT", "NORMAL"]

#: Scheduling tier for interrupts and process bootstrap.
URGENT = 0
#: Scheduling tier for ordinary events.
NORMAL = 1

#: Heap entries are ``(time, key, event)`` with
#: ``key = (priority << _TIER_SHIFT) | seq``. Priority is 0 or 1 and the
#: monotone seq stays far below 2**52 in any feasible run, so comparing
#: the packed key is exactly the old ``(priority, seq)`` lexicographic
#: order while allocating a 3-tuple instead of a 4-tuple per schedule.
_TIER_SHIFT = 52
_NORMAL_KEY_BASE = NORMAL << _TIER_SHIFT

ProcessGenerator = Generator[Event, Any, Any]


class Timeout(Event):
    """An event that triggers automatically ``delay`` time units later."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        # One Timeout is created per process yield — the single hottest
        # allocation in the DES. Event.__init__ and Environment.schedule
        # are inlined here (identical semantics, one call frame).
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        heappush(env._queue, (env._now + delay, _NORMAL_KEY_BASE + seq, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay!r} at {hex(id(self))}>"


class _Initialize(Event):
    """Urgent event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class _Interruption(Event):
    """Urgent event that delivers an :class:`Interrupt` to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process.triggered:
            raise SimulationError(f"{process!r} has already terminated")
        if process is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        self.process = process
        self.callbacks.append(self._deliver)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True  # the interrupt is delivered, never re-raised
        self.env.schedule(self, priority=URGENT)

    def _deliver(self, event: Event) -> None:
        process = self.process
        if process.triggered:
            return  # process ended before the interrupt arrived; drop it
        # Detach the process from whatever it was waiting on, then resume
        # it with the failing interruption event so Interrupt is raised at
        # the yield point.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._resume(self)


class Process(Event):
    """A running simulation process.

    A process is itself an event: it triggers when the underlying
    generator terminates, with the generator's return value (or its
    exception). Other processes can therefore ``yield`` a process to wait
    for its completion.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(
                f"Process requires a generator, got {generator!r}"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its yield point."""
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self
        generator = self._generator
        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # Mark the failure as handled: it is being delivered.
                    event._defused = True
                    exc = event._value
                    next_event = generator.throw(exc)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except StopSimulation:
                env._active_process = None
                raise
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
            if next_event.env is not env:
                raise SimulationError(
                    f"process {self.name!r} yielded an event from a "
                    "different environment"
                )
            if next_event.callbacks is not None:
                # Event still pending or scheduled: park until it fires.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: feed its value back immediately.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {hex(id(self))}>"


class Environment:
    """Owns the simulation clock and event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        # Observability (None = disabled; see attach_observability). The
        # disabled path adds no per-step work: instrumentation lives in a
        # shadowing `step` bound only when a live hub is attached.
        self._obs = None
        self._steps = 0

    # -- observability ----------------------------------------------------

    @property
    def events_processed(self) -> int:
        """Events processed while observed (0 when never observed)."""
        return self._steps

    def attach_observability(self, hub) -> None:
        """Instrument the kernel with an ObservabilityHub.

        Registers ``sim_events_total``, ``sim_queue_depth`` (+ a depth
        histogram), ``sim_time_ms`` and ``sim_wall_seconds_total``, and
        swaps in an instrumented ``step``. A ``None`` or disabled hub is
        ignored, keeping the default event loop untouched.
        """
        if hub is None or not getattr(hub, "enabled", False):
            return
        self._obs = hub
        self._obs_events = hub.counter(
            "sim_events_total", "events processed by the sim kernel"
        )
        self._obs_queue = hub.gauge(
            "sim_queue_depth", "scheduled events currently pending"
        )
        self._obs_queue_hist = hub.histogram(
            "sim_queue_depth_hist", "queue depth sampled at every step",
            buckets=(0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000),
        )
        self._obs_sim_time = hub.gauge(
            "sim_time_ms", "current simulated clock"
        )
        self._obs_wall = hub.counter(
            "sim_wall_seconds_total", "wall-clock seconds spent in run()"
        )
        # Shadow the class method: only observed environments pay for
        # per-step accounting.
        self.step = self._step_observed  # type: ignore[method-assign]

    # -- clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event construction ----------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: ProcessGenerator, name: Optional[str] = None
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.sim.conditions import AnyOf

        return AnyOf(self, list(events))

    # -- scheduling -------------------------------------------------------

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Put a triggered event on the queue ``delay`` units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        self._seq = seq = self._seq + 1
        heappush(
            self._queue,
            (self._now + delay, (priority << _TIER_SHIFT) + seq, event),
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _key, event = heappop(self._queue)
        self._now = when

        callbacks = event.callbacks
        event.callbacks = None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def _step_observed(self) -> None:
        """Instrumented variant of :meth:`step` (bound by
        :meth:`attach_observability`)."""
        Environment.step(self)
        self._steps += 1
        self._obs_events.inc()
        depth = len(self._queue)
        self._obs_queue.set(depth)
        self._obs_queue_hist.observe(depth)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the queue drains;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until the event triggers and return its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed before the run started.
                if stop_event._ok:
                    return stop_event._value
                raise stop_event._value
            stop_event.callbacks.append(_stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise SimulationError(
                    f"run(until={at}) is in the past (now={self._now})"
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(_stop_callback)
            # Urgent so that the clock stops *before* normal events at
            # exactly `until` are processed.
            self.schedule(stop_event, delay=at - self._now, priority=URGENT)

        wall_start = (
            _time.perf_counter() if self._obs is not None else None
        )
        try:
            step_attr = self.__dict__.get("step")
            if (
                step_attr is not None
                and getattr(step_attr, "__func__", None)
                is Environment._step_observed
                and type(self).step is Environment.step
                and type(self)._step_observed is Environment._step_observed
            ):
                # Observed drain: step() + _step_observed accounting
                # inlined with the instruments' unlabelled series bound
                # as locals. Write-through per step, so any mid-run
                # reader sees exactly what _step_observed would produce.
                queue = self._queue
                ev_series = self._obs_events._series
                q_series = self._obs_queue._series
                hist = self._obs_queue_hist
                buckets = hist.buckets
                h_counts = hist._counts.get(())
                if h_counts is None:
                    h_counts = hist._counts[()] = [0] * len(buckets)
                    hist._sums[()] = 0.0
                    hist._totals[()] = 0
                h_sums = hist._sums
                h_totals = hist._totals
                _bisect = _bisect_left
                while queue:
                    when, _key, event = heappop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
                    self._steps += 1
                    ev_series[()] = ev_series.get((), 0.0) + 1.0
                    depth = len(queue)
                    q_series[()] = float(depth)
                    h_counts[_bisect(buckets, depth)] += 1
                    h_sums[()] += float(depth)
                    h_totals[()] += 1
            elif (
                step_attr is not None
                or type(self).step is not Environment.step
            ):
                # Instrumented or subclass-overridden step: honour it.
                step = self.step
                while self._queue:
                    step()
            else:
                # Hot drain: step() inlined (identical body) so the
                # common unobserved run pays no per-event call frame.
                queue = self._queue
                while queue:
                    when, _key, event = heappop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
        except StopSimulation as stop:
            return stop.value
        finally:
            if wall_start is not None:
                self._obs_wall.inc(_time.perf_counter() - wall_start)
                self._obs_sim_time.set(self._now)

        if stop_event is not None and isinstance(until, Event):
            raise SimulationError(
                "run(until=event) finished but the event never triggered"
            )
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} queued={len(self._queue)}>"


def _stop_callback(event: Event) -> None:
    if event._ok:
        raise StopSimulation(event._value)
    # Propagate failures of the until-event to the caller of run().
    event._defused = True
    raise event._value
