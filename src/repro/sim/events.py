"""Core event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot occurrence with an optional value. It moves
through three states:

``pending``
    created but not yet scheduled;
``triggered``
    given a value (or an exception) and placed on the environment's event
    queue;
``processed``
    its callbacks have run.

Processes (see :mod:`repro.sim.core`) suspend by yielding events and are
resumed through the callback mechanism. The design follows the classic
SimPy architecture, reimplemented here because the execution environment
ships no DES library.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.core import Environment

__all__ = ["PENDING", "Event"]


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


#: Unique sentinel marking an event whose value is not yet decided.
PENDING = _Pending()


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    env:
        The environment the event belongs to.

    Notes
    -----
    Callbacks appended to :attr:`callbacks` are invoked with the event as
    their single argument when the environment processes the event. After
    processing, :attr:`callbacks` is set to ``None`` and further appends
    are errors — this catches use-after-fire bugs early.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        # Failed events whose exception is never retrieved re-raise at the
        # end of the run unless defused (mirrors SimPy semantics).
        self._defused: bool = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def defused(self) -> None:
        """Mark a failed event as handled so the kernel won't re-raise."""
        self._defused = True

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is raised inside every process waiting on this
        event.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(
                f"fail() expects an exception instance, got {exception!r}"
            )
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition ---------------------------------------------------

    def __and__(self, other: "Event") -> "Event":
        from repro.sim.conditions import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Event":
        from repro.sim.conditions import AnyOf

        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"
