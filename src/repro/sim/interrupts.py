"""Process interruption support.

A process may be interrupted by another process while it is waiting on an
event. The interrupt is delivered as an :class:`Interrupt` exception raised
at the point of the ``yield``; the interrupted process may catch it and
continue (the event it was waiting on remains valid and can be re-yielded).
"""

from __future__ import annotations

from typing import Any

__all__ = ["Interrupt"]


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    Attributes
    ----------
    cause:
        The object passed to ``interrupt()`` describing why the process
        was interrupted.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"
