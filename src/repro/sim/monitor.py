"""Time-series measurement collection.

A :class:`Monitor` records ``(time, value)`` observations; a
:class:`StateMonitor` tracks a piecewise-constant state variable and can
compute its time-weighted average (e.g. mean locking-list length). Both
convert to numpy arrays for the analysis layer.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["Monitor", "StateMonitor"]


class Monitor:
    """Append-only series of timestamped observations."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        """Arithmetic mean of the observed values (nan when empty)."""
        if not self._values:
            return float("nan")
        return float(np.mean(self._values))

    def percentile(self, q: float) -> float:
        if not self._values:
            return float("nan")
        return float(np.percentile(self._values, q))

    def clear(self) -> None:
        self._times.clear()
        self._values.clear()

    def reset(self) -> None:
        """Drop all observations (alias of :meth:`clear`, for symmetry
        with :meth:`StateMonitor.reset`)."""
        self.clear()

    def __repr__(self) -> str:
        return f"<Monitor {self.name!r} n={len(self)}>"


class StateMonitor:
    """Tracks a piecewise-constant variable for time-weighted statistics.

    Call :meth:`set` whenever the state changes; :meth:`time_average`
    integrates the step function from the first sample to ``until``.
    """

    __slots__ = ("name", "_times", "_states")

    def __init__(self, name: str = "", initial: Optional[float] = None,
                 time: float = 0.0) -> None:
        self.name = name
        self._times: List[float] = []
        self._states: List[float] = []
        if initial is not None:
            self.set(time, initial)

    def set(self, time: float, state: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"StateMonitor time went backwards: {time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        self._states.append(float(state))

    @property
    def current(self) -> float:
        if not self._states:
            raise ValueError("StateMonitor has no samples")
        return self._states[-1]

    def time_average(self, until: float) -> float:
        """Time-weighted mean of the state over ``[first sample, until]``.

        Zero-duration windows (``until`` at — or before — the first
        sample, or every sample at one instant) have no well-defined
        integral; the current state is returned instead of dividing by
        the zero-width window.
        """
        if not self._times:
            return float("nan")
        times = np.asarray(self._times + [float(until)])
        states = np.asarray(self._states)
        total = float(times[-1] - times[0])
        if total <= 0:
            return float(states[-1])
        widths = np.diff(times)
        return float(np.dot(widths, states) / total)

    def reset(self, initial: Optional[float] = None,
              time: float = 0.0) -> None:
        """Forget all samples; optionally re-seed an initial state.

        Lets long-lived monitors (e.g. the per-server Locking-List
        monitors) start a fresh measurement window without rebuilding
        the deployment wiring.
        """
        self._times.clear()
        self._states.clear()
        if initial is not None:
            self.set(time, initial)

    def samples(self) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self._times, dtype=float),
            np.asarray(self._states, dtype=float),
        )

    def __repr__(self) -> str:
        return f"<StateMonitor {self.name!r} n={len(self._times)}>"
