"""Time-series measurement collection.

A :class:`Monitor` records ``(time, value)`` observations; a
:class:`StateMonitor` tracks a piecewise-constant state variable and can
compute its time-weighted average (e.g. mean locking-list length). Both
convert to numpy arrays for the analysis layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Monitor", "StateMonitor", "StreamingMonitor", "StreamingStateMonitor",
]


class Monitor:
    """Append-only series of timestamped observations."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times, dtype=float)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=float)

    def mean(self) -> float:
        """Arithmetic mean of the observed values (nan when empty)."""
        if not self._values:
            return float("nan")
        return float(np.mean(self._values))

    def percentile(self, q: float) -> float:
        if not self._values:
            return float("nan")
        return float(np.percentile(self._values, q))

    def clear(self) -> None:
        self._times.clear()
        self._values.clear()

    def reset(self) -> None:
        """Drop all observations (alias of :meth:`clear`, for symmetry
        with :meth:`StateMonitor.reset`)."""
        self.clear()

    def __repr__(self) -> str:
        return f"<Monitor {self.name!r} n={len(self)}>"


class StateMonitor:
    """Tracks a piecewise-constant variable for time-weighted statistics.

    Call :meth:`set` whenever the state changes; :meth:`time_average`
    integrates the step function from the first sample to ``until``.
    """

    __slots__ = ("name", "_times", "_states")

    def __init__(self, name: str = "", initial: Optional[float] = None,
                 time: float = 0.0) -> None:
        self.name = name
        self._times: List[float] = []
        self._states: List[float] = []
        if initial is not None:
            self.set(time, initial)

    def set(self, time: float, state: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"StateMonitor time went backwards: {time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        self._states.append(float(state))

    @property
    def current(self) -> float:
        if not self._states:
            raise ValueError("StateMonitor has no samples")
        return self._states[-1]

    def time_average(self, until: float) -> float:
        """Time-weighted mean of the state over ``[first sample, until]``.

        Zero-duration windows (``until`` at — or before — the first
        sample, or every sample at one instant) have no well-defined
        integral; the current state is returned instead of dividing by
        the zero-width window.
        """
        if not self._times:
            return float("nan")
        times = np.asarray(self._times + [float(until)])
        states = np.asarray(self._states)
        total = float(times[-1] - times[0])
        if total <= 0:
            return float(states[-1])
        widths = np.diff(times)
        return float(np.dot(widths, states) / total)

    def reset(self, initial: Optional[float] = None,
              time: float = 0.0) -> None:
        """Forget all samples; optionally re-seed an initial state.

        Lets long-lived monitors (e.g. the per-server Locking-List
        monitors) start a fresh measurement window without rebuilding
        the deployment wiring.
        """
        self._times.clear()
        self._states.clear()
        if initial is not None:
            self.set(time, initial)

    def samples(self) -> Tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self._times, dtype=float),
            np.asarray(self._states, dtype=float),
        )

    def __repr__(self) -> str:
        return f"<StateMonitor {self.name!r} n={len(self._times)}>"


class StreamingMonitor:
    """Constant-memory :class:`Monitor`: running mean + P² percentiles.

    API-compatible with :class:`Monitor` for ``record``/``mean``/
    ``percentile``/``clear``/``len``, but holds no series — long
    streaming runs record millions of observations without growing.
    ``percentile`` serves only the quantiles requested at construction
    (default p50/p95/p99), as P² tracks one marker set per quantile.
    """

    __slots__ = ("name", "_welford", "_quantiles")

    def __init__(
        self, name: str = "", quantiles: Tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> None:
        from repro.analysis.stats import P2Quantile, Welford

        self.name = name
        self._welford = Welford()
        self._quantiles: Dict[float, object] = {
            float(q): P2Quantile(float(q) / 100.0) for q in quantiles
        }

    def record(self, time: float, value: float) -> None:
        value = float(value)
        self._welford.observe(value)
        for estimator in self._quantiles.values():
            estimator.observe(value)

    def __len__(self) -> int:
        return self._welford.count

    def mean(self) -> float:
        return self._welford.result()

    def percentile(self, q: float) -> float:
        estimator = self._quantiles.get(float(q))
        if estimator is None:
            raise ValueError(
                f"StreamingMonitor {self.name!r} tracks "
                f"{sorted(self._quantiles)}; p{q} was not requested at "
                "construction"
            )
        return estimator.result()

    def clear(self) -> None:
        quantiles = tuple(self._quantiles)
        self.__init__(self.name, quantiles)  # noqa: PLC2801

    reset = clear

    def __repr__(self) -> str:
        return f"<StreamingMonitor {self.name!r} n={len(self)}>"


class StreamingStateMonitor:
    """Constant-memory :class:`StateMonitor`: running step integral.

    Tracks only ``(first_time, last_time, last_state, integral)``; the
    time average over ``[first sample, until]`` is exact — identical to
    the batch monitor's ``np.dot`` over the full series — because the
    integral of a step function accumulates associatively.
    """

    __slots__ = ("name", "_first_time", "_last_time", "_last_state",
                 "_integral", "_count")

    def __init__(self, name: str = "", initial: Optional[float] = None,
                 time: float = 0.0) -> None:
        self.name = name
        self._first_time: Optional[float] = None
        self._last_time = 0.0
        self._last_state = 0.0
        self._integral = 0.0
        self._count = 0
        if initial is not None:
            self.set(time, initial)

    def set(self, time: float, state: float) -> None:
        time = float(time)
        if self._first_time is None:
            self._first_time = time
        elif time < self._last_time:
            raise ValueError(
                f"StateMonitor time went backwards: {time} < {self._last_time}"
            )
        else:
            self._integral += (time - self._last_time) * self._last_state
        self._last_time = time
        self._last_state = float(state)
        self._count += 1

    @property
    def current(self) -> float:
        if self._count == 0:
            raise ValueError("StateMonitor has no samples")
        return self._last_state

    def time_average(self, until: float) -> float:
        if self._first_time is None:
            return float("nan")
        until = float(until)
        total = until - self._first_time
        if total <= 0:
            return self._last_state
        tail = (until - self._last_time) * self._last_state
        return (self._integral + tail) / total

    def reset(self, initial: Optional[float] = None,
              time: float = 0.0) -> None:
        self._first_time = None
        self._last_time = 0.0
        self._last_state = 0.0
        self._integral = 0.0
        self._count = 0
        if initial is not None:
            self.set(time, initial)

    def __repr__(self) -> str:
        return f"<StreamingStateMonitor {self.name!r} n={self._count}>"
