"""Shared resources with a fixed number of usage slots.

:class:`Resource` models mutual exclusion / limited concurrency: a process
yields ``resource.request()`` to acquire a slot and calls ``release`` (or
uses the request as a context manager) when done. :class:`PriorityResource`
grants pending requests in priority order.

The replica servers use a unit-capacity :class:`Resource` to serialise
application of UPDATE messages against their local store.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List

from repro.errors import SimulationError
from repro.sim.events import Event

__all__ = ["Resource", "PriorityResource", "Request"]


class Request(Event):
    """Acquisition event; fires when the slot is granted.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ... critical section ...
    """

    __slots__ = ("resource", "priority", "_seq")

    def __init__(self, resource: "Resource", priority: Any = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self._seq = 0

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.resource.release(self)

    def __lt__(self, other: "Request") -> bool:
        if self.priority != other.priority:
            return self.priority < other.priority
        return self._seq < other._seq


class Resource:
    """A pool of ``capacity`` identical slots granted FIFO."""

    def __init__(self, env, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self._waiters: Deque[Request] = deque()
        self._seq = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    def request(self, priority: Any = 0) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        event = Request(self, priority)
        self._seq += 1
        event._seq = self._seq
        self._enqueue(event)
        self._grant()
        return event

    def release(self, request: Request) -> None:
        """Return a previously granted slot.

        Releasing a request that was never granted simply cancels it
        (removes it from the wait queue) — this makes the context-manager
        form safe even when the body raises before the grant.
        """
        try:
            self.users.remove(request)
        except ValueError:
            self._cancel(request)
            return
        self._grant()

    # -- queue policy (overridden by PriorityResource) ---------------------

    def _enqueue(self, event: Request) -> None:
        self._waiters.append(event)

    def _next_waiter(self) -> Request:
        return self._waiters.popleft()

    def _cancel(self, request: Request) -> None:
        try:
            self._waiters.remove(request)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self._waiters and len(self.users) < self.capacity:
            event = self._next_waiter()
            if event.triggered:
                continue
            self.users.append(event)
            event.succeed()


class PriorityResource(Resource):
    """A resource that grants waiting requests lowest-priority-first."""

    def __init__(self, env, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._waiters: List[Request] = []  # heap

    def _enqueue(self, event: Request) -> None:
        heapq.heappush(self._waiters, event)

    def _next_waiter(self) -> Request:
        return heapq.heappop(self._waiters)

    def _cancel(self, request: Request) -> None:
        try:
            self._waiters.remove(request)
            heapq.heapify(self._waiters)
        except ValueError:
            pass
