"""Deterministic, named random-number streams.

Every stochastic component of a simulation (each client's arrival process,
each latency model, the fault injector, ...) draws from its own named
stream derived from a single master seed. This gives two properties the
experiment harness depends on:

* **Reproducibility** — the same master seed always reproduces the same
  run, regardless of module import order.
* **Common random numbers** — when two protocol variants are compared
  under the same seed, they see *identical* workloads and latencies, so
  observed differences are attributable to the protocols (a standard
  variance-reduction technique for simulation studies).

Streams are derived by hashing the stream name into a child
``numpy.random.SeedSequence``, so adding a new stream never perturbs
existing ones.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["RandomStreams", "Stream", "spawn_seed"]


def spawn_seed(master_seed: int, label: str, index: int = 0) -> int:
    """Derive an independent child seed from ``(master_seed, label, index)``.

    Uses the same construction as :meth:`RandomStreams.stream` — the
    label is hashed into a ``SeedSequence`` spawn key — so child seeds
    are statistically independent of each other *and* of every named
    stream a run derives from its master seed. Unlike additive schemes
    (``seed + index``), two different master seeds never share a child:
    consecutive base seeds produce disjoint child-seed sets, which the
    experiment engine relies on when fanning out repeats.
    """
    name_key = zlib.crc32(label.encode("utf-8"))
    seq = np.random.SeedSequence(
        entropy=int(master_seed), spawn_key=(name_key, int(index))
    )
    return int(seq.generate_state(1, dtype=np.uint64)[0])


class Stream:
    """A thin convenience wrapper over :class:`numpy.random.Generator`."""

    __slots__ = ("name", "generator")

    def __init__(self, name: str, generator: np.random.Generator) -> None:
        self.name = name
        self.generator = generator

    # Distribution helpers used across the library -------------------------

    def exponential(self, mean: float) -> float:
        """One draw from Exp(mean). ``mean == 0`` returns 0.0 exactly."""
        if mean < 0:
            raise ValueError(f"exponential mean must be >= 0: {mean}")
        if mean == 0:
            return 0.0
        return float(self.generator.exponential(mean))

    def uniform(self, low: float, high: float) -> float:
        return float(self.generator.uniform(low, high))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self.generator.lognormal(mean, sigma))

    def normal(self, loc: float, scale: float) -> float:
        return float(self.generator.normal(loc, scale))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def random(self) -> float:
        return float(self.generator.random())

    def choice(self, seq: Sequence):
        """Uniform choice from a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("choice from an empty sequence")
        return seq[int(self.generator.integers(0, len(seq)))]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self.generator.shuffle(items)

    def zipf_index(self, n: int, theta: float) -> int:
        """Zipf-distributed index in ``[0, n)`` with skew ``theta``.

        ``theta == 0`` degenerates to uniform.
        """
        if n <= 0:
            raise ValueError(f"zipf domain must be positive: {n}")
        if theta == 0:
            return self.integers(0, n)
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks**-theta
        weights /= weights.sum()
        return int(self.generator.choice(n, p=weights))

    def __repr__(self) -> str:
        return f"<Stream {self.name!r}>"


class RandomStreams:
    """Factory of independent named streams from one master seed."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = 0 if seed is None else int(seed)
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the (memoised) stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        # Stable 32-bit hash of the name; combined with the master seed in
        # a SeedSequence spawn key so streams are statistically independent.
        name_key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(name_key,))
        stream = Stream(name, np.random.default_rng(seq))
        self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={len(self._streams)}>"
