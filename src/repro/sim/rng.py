"""Deterministic, named random-number streams.

Every stochastic component of a simulation (each client's arrival process,
each latency model, the fault injector, ...) draws from its own named
stream derived from a single master seed. This gives two properties the
experiment harness depends on:

* **Reproducibility** — the same master seed always reproduces the same
  run, regardless of module import order.
* **Common random numbers** — when two protocol variants are compared
  under the same seed, they see *identical* workloads and latencies, so
  observed differences are attributable to the protocols (a standard
  variance-reduction technique for simulation studies).

Streams are derived by hashing the stream name into a child
``numpy.random.SeedSequence``, so adding a new stream never perturbs
existing ones.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["RandomStreams", "Stream", "spawn_seed"]

#: Cached Zipf CDFs keyed by (population size, theta). The CDF is a pure
#: function of its key, so the cache is safe to share across streams and
#: processes; it is bounded because a run touches a handful of
#: (n, theta) combinations.
_ZIPF_CDF_CACHE: Dict[tuple, np.ndarray] = {}
_ZIPF_CDF_CACHE_MAX = 64


def _zipf_cdf(n: int, theta: float) -> np.ndarray:
    """CDF of the Zipf(theta) distribution over ranks ``1..n``."""
    key = (int(n), float(theta))
    cdf = _ZIPF_CDF_CACHE.get(key)
    if cdf is None:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = ranks**-theta
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        if len(_ZIPF_CDF_CACHE) >= _ZIPF_CDF_CACHE_MAX:
            _ZIPF_CDF_CACHE.clear()
        _ZIPF_CDF_CACHE[key] = cdf
    return cdf


def spawn_seed(master_seed: int, label: str, index: int = 0) -> int:
    """Derive an independent child seed from ``(master_seed, label, index)``.

    Uses the same construction as :meth:`RandomStreams.stream` — the
    label is hashed into a ``SeedSequence`` spawn key — so child seeds
    are statistically independent of each other *and* of every named
    stream a run derives from its master seed. Unlike additive schemes
    (``seed + index``), two different master seeds never share a child:
    consecutive base seeds produce disjoint child-seed sets, which the
    experiment engine relies on when fanning out repeats.
    """
    name_key = zlib.crc32(label.encode("utf-8"))
    seq = np.random.SeedSequence(
        entropy=int(master_seed), spawn_key=(name_key, int(index))
    )
    return int(seq.generate_state(1, dtype=np.uint64)[0])


class Stream:
    """A thin convenience wrapper over :class:`numpy.random.Generator`."""

    __slots__ = ("name", "generator")

    def __init__(self, name: str, generator: np.random.Generator) -> None:
        self.name = name
        self.generator = generator

    # Distribution helpers used across the library -------------------------

    def exponential(self, mean: float) -> float:
        """One draw from Exp(mean). ``mean == 0`` returns 0.0 exactly."""
        if mean < 0:
            raise ValueError(f"exponential mean must be >= 0: {mean}")
        if mean == 0:
            return 0.0
        return float(self.generator.exponential(mean))

    def uniform(self, low: float, high: float) -> float:
        return float(self.generator.uniform(low, high))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self.generator.lognormal(mean, sigma))

    def normal(self, loc: float, scale: float) -> float:
        return float(self.generator.normal(loc, scale))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self.generator.integers(low, high))

    def random(self) -> float:
        return float(self.generator.random())

    def choice(self, seq: Sequence):
        """Uniform choice from a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("choice from an empty sequence")
        return seq[int(self.generator.integers(0, len(seq)))]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self.generator.shuffle(items)

    def zipf_index(self, n: int, theta: float) -> int:
        """Zipf-distributed index in ``[0, n)`` with skew ``theta``.

        ``theta == 0`` degenerates to uniform. Inverse-CDF sampling over
        a cached CDF (one uniform draw + binary search), so the scalar
        and batch samplers consume the stream identically: one
        :meth:`zipf_index` call advances the generator exactly like one
        element of :meth:`zipf_indices`.
        """
        if n <= 0:
            raise ValueError(f"zipf domain must be positive: {n}")
        if theta == 0:
            return self.integers(0, n)
        cdf = _zipf_cdf(n, theta)
        return int(np.searchsorted(cdf, self.generator.random(), side="right"))

    # Batch draws ----------------------------------------------------------
    #
    # numpy Generators produce element-wise identical sequences whether
    # values are drawn one at a time or in a block, so each helper below
    # is chunk-size invariant: drawing 10_000 values as 10 blocks of
    # 1_000 or 157 blocks of 64 yields the same sequence. The vectorized
    # workload path depends on this.

    def exponential_batch(self, mean: float, count: int) -> np.ndarray:
        """``count`` draws from Exp(mean) as a float64 array."""
        if mean < 0:
            raise ValueError(f"exponential mean must be >= 0: {mean}")
        if mean == 0:
            return np.zeros(int(count), dtype=np.float64)
        return self.generator.exponential(mean, size=int(count))

    def uniform_batch(self, low: float, high: float, count: int) -> np.ndarray:
        return self.generator.uniform(low, high, size=int(count))

    def random_batch(self, count: int) -> np.ndarray:
        """``count`` uniforms in ``[0, 1)``."""
        return self.generator.random(int(count))

    def zipf_indices(self, n: int, theta: float, count: int) -> np.ndarray:
        """``count`` Zipf(theta) indices in ``[0, n)`` (uniform when 0)."""
        if n <= 0:
            raise ValueError(f"zipf domain must be positive: {n}")
        if theta == 0:
            return self.generator.integers(0, n, size=int(count))
        cdf = _zipf_cdf(n, theta)
        u = self.generator.random(int(count))
        return np.searchsorted(cdf, u, side="right")

    def __repr__(self) -> str:
        return f"<Stream {self.name!r}>"


class RandomStreams:
    """Factory of independent named streams from one master seed."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = 0 if seed is None else int(seed)
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the (memoised) stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        # Stable 32-bit hash of the name; combined with the master seed in
        # a SeedSequence spawn key so streams are statistically independent.
        name_key = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(name_key,))
        stream = Stream(name, np.random.default_rng(seq))
        self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} streams={len(self._streams)}>"
