"""Producer/consumer channels for processes.

:class:`Store` is an asynchronous FIFO buffer: ``put`` and ``get`` return
events a process yields on. :class:`FilterStore` lets consumers wait for
the first item matching a predicate. :class:`PriorityStore` delivers items
in priority order. These are the building blocks used by mailboxes in the
network substrate and by the agent platforms.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.errors import SimulationError
from repro.sim.events import Event

__all__ = ["Store", "FilterStore", "PriorityStore", "PriorityItem"]


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires when the item is stored."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ("filter",)

    def __init__(
        self, store: "Store", filter: Optional[Callable[[Any], bool]] = None
    ) -> None:
        super().__init__(store.env)
        self.filter = filter


class Store:
    """Unbounded-or-bounded FIFO buffer with blocking put/get events."""

    def __init__(self, env, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._put_waiters: Deque[StorePut] = deque()
        self._get_waiters: Deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    # -- public API ------------------------------------------------------

    def put(self, item: Any) -> StorePut:
        """Request to add ``item``; the returned event fires when stored."""
        event = StorePut(self, item)
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Request to remove the oldest item; the event fires with it."""
        event = StoreGet(self)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    # -- matching machinery ------------------------------------------------

    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._insert(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        item = self._extract(event)
        if item is not _NO_ITEM:
            event.succeed(item)
            return True
        return False

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _extract(self, event: StoreGet) -> Any:
        if self.items:
            return self.items.popleft()
        return _NO_ITEM

    def _dispatch(self) -> None:
        """Run the put/get matching loop until no more progress is made."""
        progress = True
        while progress:
            progress = False
            while self._put_waiters:
                put_event = self._put_waiters[0]
                if put_event.triggered:  # cancelled externally
                    self._put_waiters.popleft()
                    continue
                if self._do_put(put_event):
                    self._put_waiters.popleft()
                    progress = True
                else:
                    break
            # Gets are served in FIFO order, but a FilterStore get that
            # matches nothing must not block later gets, so scan the
            # queue (the spill deque is only built once a get blocks).
            remaining: Optional[Deque[StoreGet]] = None
            while self._get_waiters:
                get_event = self._get_waiters.popleft()
                if get_event.triggered:
                    continue
                if self._do_get(get_event):
                    progress = True
                else:
                    if remaining is None:
                        remaining = deque()
                    remaining.append(get_event)
            if remaining is not None:
                self._get_waiters = remaining


class _NoItem:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NO_ITEM>"


_NO_ITEM = _NoItem()


class FilterStore(Store):
    """A store whose consumers may wait for items matching a predicate."""

    def get(
        self, filter: Optional[Callable[[Any], bool]] = None
    ) -> StoreGet:  # type: ignore[override]
        event = StoreGet(self, filter)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def _extract(self, event: StoreGet) -> Any:
        if event.filter is None:
            return super()._extract(event)
        for index, item in enumerate(self.items):
            if event.filter(item):
                del self.items[index]
                return item
        return _NO_ITEM


class PriorityItem:
    """Wrapper pairing a sortable priority with an arbitrary payload.

    Lower priority values are delivered first; ties are FIFO (stable via a
    monotone sequence number assigned at insertion).
    """

    __slots__ = ("priority", "item", "_seq")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item
        self._seq = 0

    def __lt__(self, other: "PriorityItem") -> bool:
        if self.priority != other.priority:
            return self.priority < other.priority
        return self._seq < other._seq

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """A store that releases the lowest-priority item first.

    Items must be :class:`PriorityItem` instances (or anything mutually
    orderable).
    """

    def __init__(self, env, capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self.items: List[Any] = []  # heap
        self._insert_seq = 0

    def _insert(self, item: Any) -> None:
        if isinstance(item, PriorityItem):
            self._insert_seq += 1
            item._seq = self._insert_seq
        heapq.heappush(self.items, item)

    def _extract(self, event: StoreGet) -> Any:
        if self.items:
            return heapq.heappop(self.items)
        return _NO_ITEM
