"""Workload generation: arrival processes, operation mixes, traces."""

from repro.workload.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    ExponentialArrivals,
    UniformArrivals,
    make_arrivals,
)
from repro.workload.mix import OperationMix
from repro.workload.replay import TraceReplayer, record_workload, replay_onto
from repro.workload.trace import TraceEntry, WorkloadTrace

__all__ = [
    "ArrivalProcess",
    "ExponentialArrivals",
    "UniformArrivals",
    "DeterministicArrivals",
    "make_arrivals",
    "OperationMix",
    "TraceEntry",
    "WorkloadTrace",
    "TraceReplayer",
    "record_workload",
    "replay_onto",
]
