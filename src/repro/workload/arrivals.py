"""Request arrival processes.

The paper drives each server with "an exponential random number
generator ... requests were generated at different rates"; the evaluation
sweeps the **mean inter-arrival time** (x-axis of Figs 2–4). All arrival
processes here produce successive inter-arrival gaps in milliseconds.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rng import Stream

__all__ = [
    "ArrivalProcess",
    "ExponentialArrivals",
    "UniformArrivals",
    "DeterministicArrivals",
    "make_arrivals",
]


class ArrivalProcess:
    """Generates successive inter-arrival gaps."""

    name = "abstract"

    def next_gap(self, stream: Stream) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def gaps(self, stream: Stream, count: int) -> np.ndarray:
        """``count`` successive gaps as a float64 array.

        The base implementation loops over :meth:`next_gap` so custom
        processes stay correct; the built-in processes override it with
        a single vectorized draw that consumes the stream identically
        (numpy batch draws are element-wise equal to scalar draws).
        """
        return np.fromiter(
            (self.next_gap(stream) for _ in range(int(count))),
            dtype=np.float64,
            count=int(count),
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class ExponentialArrivals(ArrivalProcess):
    """Poisson arrivals: exponential gaps with the given mean (ms)."""

    name = "exponential"

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise WorkloadError(f"mean inter-arrival must be > 0: {mean}")
        self.mean = mean

    def next_gap(self, stream: Stream) -> float:
        return stream.exponential(self.mean)

    def gaps(self, stream: Stream, count: int) -> np.ndarray:
        return stream.exponential_batch(self.mean, count)

    def __repr__(self) -> str:
        return f"ExponentialArrivals(mean={self.mean})"


class UniformArrivals(ArrivalProcess):
    """Gaps uniform in ``[low, high]``."""

    name = "uniform"

    def __init__(self, low: float, high: float) -> None:
        if not 0 < low <= high:
            raise WorkloadError(f"invalid uniform gap range [{low}, {high}]")
        self.low = low
        self.high = high

    def next_gap(self, stream: Stream) -> float:
        return stream.uniform(self.low, self.high)

    def gaps(self, stream: Stream, count: int) -> np.ndarray:
        return stream.uniform_batch(self.low, self.high, count)

    def __repr__(self) -> str:
        return f"UniformArrivals({self.low}, {self.high})"


class DeterministicArrivals(ArrivalProcess):
    """Fixed gap (useful for worst-case synchronised contention tests)."""

    name = "deterministic"

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise WorkloadError(f"interval must be > 0: {interval}")
        self.interval = interval

    def next_gap(self, stream: Stream) -> float:
        return self.interval

    def gaps(self, stream: Stream, count: int) -> np.ndarray:
        return np.full(int(count), self.interval, dtype=np.float64)

    def __repr__(self) -> str:
        return f"DeterministicArrivals({self.interval})"


def make_arrivals(name: str, **params) -> ArrivalProcess:
    """Factory by process name (CLI/experiment configuration)."""
    if name == ExponentialArrivals.name:
        return ExponentialArrivals(**params)
    if name == UniformArrivals.name:
        return UniformArrivals(**params)
    if name == DeterministicArrivals.name:
        return DeterministicArrivals(**params)
    raise WorkloadError(f"unknown arrival process {name!r}")
