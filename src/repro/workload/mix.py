"""Operation mixes: what each generated request does.

The paper's evaluation is update-driven (every request dispatches an
agent) while its design argument assumes a "high read-to-update ratio".
:class:`OperationMix` covers both: a write fraction, a key population
with optional Zipf skew, and a value generator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import WorkloadError
from repro.replication.requests import READ, WRITE
from repro.sim.rng import Stream

__all__ = ["OperationMix"]


class OperationMix:
    """Samples (operation, key, value) triples.

    Parameters
    ----------
    write_fraction:
        Probability a request is an update (1.0 reproduces the paper's
        evaluation workload).
    keys:
        Key population; defaults to the single object ``"x"`` — the paper
        coordinates one replicated data item.
    key_skew:
        Zipf theta over the key population (0 = uniform).
    """

    def __init__(
        self,
        write_fraction: float = 1.0,
        keys: Optional[List[str]] = None,
        key_skew: float = 0.0,
    ) -> None:
        if not 0.0 <= write_fraction <= 1.0:
            raise WorkloadError(
                f"write_fraction must be in [0, 1]: {write_fraction}"
            )
        if key_skew < 0:
            raise WorkloadError(f"key_skew must be >= 0: {key_skew}")
        self.write_fraction = write_fraction
        if keys is not None and len(keys) == 0:
            raise WorkloadError("key population must be non-empty")
        self.keys = list(keys) if keys is not None else ["x"]
        self.key_skew = key_skew
        self._value_counter = 0

    def sample(self, stream: Stream) -> Tuple[str, str, Optional[int]]:
        """One (op, key, value) draw; reads carry ``value=None``."""
        op = WRITE if stream.random() < self.write_fraction else READ
        if len(self.keys) == 1:
            key = self.keys[0]
        else:
            key = self.keys[stream.zipf_index(len(self.keys), self.key_skew)]
        value = None
        if op == WRITE:
            self._value_counter += 1
            value = self._value_counter
        return op, key, value

    def sample_batch(
        self, count: int, op_stream: Stream, key_stream: Stream
    ) -> List[Tuple[str, str, Optional[int]]]:
        """``count`` (op, key, value) draws via vectorized sampling.

        Operations and keys come from *separate* named streams (unlike
        :meth:`sample`, which interleaves both on one stream) so the
        sequence is invariant under chunk size: the i-th triple is the
        same whether the run draws one chunk of 10_000 or ten of 1_000.
        Write values continue the same monotone counter as
        :meth:`sample`.
        """
        count = int(count)
        is_write = op_stream.random_batch(count) < self.write_fraction
        keys = self.keys
        if len(keys) == 1:
            key_seq = [keys[0]] * count
        else:
            indices = key_stream.zipf_indices(
                len(keys), self.key_skew, count
            )
            key_seq = [keys[index] for index in indices]
        triples: List[Tuple[str, str, Optional[int]]] = []
        append = triples.append
        counter = self._value_counter
        for index in range(count):
            if is_write[index]:
                counter += 1
                append((WRITE, key_seq[index], counter))
            else:
                append((READ, key_seq[index], None))
        self._value_counter = counter
        return triples

    def __repr__(self) -> str:
        return (
            f"OperationMix(write_fraction={self.write_fraction}, "
            f"keys={len(self.keys)}, skew={self.key_skew})"
        )
