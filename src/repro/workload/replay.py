"""Trace replay: drive any protocol with a previously recorded workload.

Recording (see :class:`~repro.workload.trace.WorkloadTrace`) captures the
exact request stream of a run; replaying it submits the identical
requests at the identical simulated instants. This gives the strongest
form of paired comparison between protocols — not just common random
numbers but literally the same workload — and makes failing runs
replayable while debugging.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.replication.protocol import ReplicationProtocol
from repro.replication.requests import RequestRecord
from repro.workload.trace import WorkloadTrace

__all__ = ["TraceReplayer", "record_workload"]


class TraceReplayer:
    """Submits a recorded trace against a protocol, entry by entry."""

    def __init__(
        self, protocol: ReplicationProtocol, trace: WorkloadTrace
    ) -> None:
        if protocol.env.now > 0 and len(trace) and trace.entries[0].at < protocol.env.now:
            raise WorkloadError(
                "trace starts in the past relative to the simulation clock"
            )
        self.protocol = protocol
        self.trace = trace
        self.submitted: List[RequestRecord] = []
        self.process = protocol.env.process(
            self._replay(), name="trace-replayer"
        )

    def _replay(self):
        env = self.protocol.env
        for entry in self.trace:
            gap = entry.at - env.now
            if gap > 0:
                yield env.timeout(gap)
            record = self.protocol.submit(
                entry.home, entry.op, entry.key, entry.value
            )
            self.submitted.append(record)

    def __repr__(self) -> str:
        return (
            f"<TraceReplayer entries={len(self.trace)} "
            f"submitted={len(self.submitted)}>"
        )


def record_workload(
    protocol: ReplicationProtocol,
    arrivals,
    mix,
    max_requests_per_client: int,
    until: float,
) -> WorkloadTrace:
    """Run a workload against ``protocol`` while recording it.

    Convenience wrapper over :func:`attach_clients` that returns the
    trace; the protocol's records hold the live results as usual.
    """
    from repro.replication.client import attach_clients

    trace = WorkloadTrace()
    attach_clients(
        protocol, arrivals, mix,
        max_requests_per_client=max_requests_per_client,
        trace=trace,
    )
    protocol.run(until=until)
    return trace


def replay_onto(
    protocol: ReplicationProtocol,
    trace: WorkloadTrace,
    horizon: float,
) -> Dict[int, RequestRecord]:
    """Replay ``trace`` to completion; returns records by trace index."""
    replayer = TraceReplayer(protocol, trace)
    protocol.run(until=horizon)
    return dict(enumerate(replayer.submitted))
