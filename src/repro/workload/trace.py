"""Workload traces: record a generated workload and replay it verbatim.

Recording the exact request stream lets two protocols be driven by the
*identical* workload (beyond sharing a seed), and lets a failing run be
replayed deterministically while debugging.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterator, List, Optional

from repro.errors import WorkloadError

__all__ = ["TraceEntry", "WorkloadTrace"]


@dataclass(frozen=True)
class TraceEntry:
    """One request in a recorded workload."""

    at: float  # absolute simulated arrival time (ms)
    home: str
    op: str
    key: str
    value: Optional[int] = None


class WorkloadTrace:
    """An ordered, serialisable sequence of :class:`TraceEntry`."""

    def __init__(self, entries: Optional[List[TraceEntry]] = None) -> None:
        self.entries: List[TraceEntry] = list(entries or [])
        self._validate()

    def _validate(self) -> None:
        last = float("-inf")
        for entry in self.entries:
            if entry.at < last:
                raise WorkloadError("trace entries must be time-ordered")
            last = entry.at

    def record(self, entry: TraceEntry) -> None:
        if self.entries and entry.at < self.entries[-1].at:
            raise WorkloadError("trace entries must be appended in time order")
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    def for_home(self, home: str) -> List[TraceEntry]:
        return [e for e in self.entries if e.home == home]

    # -- (de)serialisation ---------------------------------------------------

    def dumps(self) -> str:
        return json.dumps([asdict(e) for e in self.entries])

    @classmethod
    def loads(cls, text: str) -> "WorkloadTrace":
        try:
            raw = json.loads(text)
            entries = [TraceEntry(**item) for item in raw]
        except (ValueError, TypeError) as exc:
            raise WorkloadError(f"malformed trace: {exc}") from exc
        return cls(entries)

    def __repr__(self) -> str:
        return f"<WorkloadTrace n={len(self.entries)}>"
