"""Unit tests for agent identity and its total order."""

from repro.agents.identity import AgentId, AgentIdFactory


class TestAgentIdOrdering:
    def test_earlier_creation_time_wins(self):
        older = AgentId("zhost", 1.0, 0)
        younger = AgentId("ahost", 2.0, 0)
        assert older < younger

    def test_tie_broken_by_host(self):
        a = AgentId("alpha", 1.0, 0)
        b = AgentId("beta", 1.0, 0)
        assert a < b

    def test_tie_broken_by_seq(self):
        first = AgentId("h", 1.0, 0)
        second = AgentId("h", 1.0, 1)
        assert first < second

    def test_total_order_is_strict(self):
        a = AgentId("h", 1.0, 0)
        b = AgentId("h", 1.0, 0)
        assert not (a < b)
        assert a == b

    def test_sortable_collections(self):
        ids = [
            AgentId("b", 2.0, 0),
            AgentId("a", 1.0, 1),
            AgentId("a", 1.0, 0),
        ]
        assert sorted(ids) == [ids[2], ids[1], ids[0]]

    def test_hashable(self):
        assert len({AgentId("h", 1.0, 0), AgentId("h", 1.0, 0)}) == 1

    def test_str_format(self):
        assert str(AgentId("s1", 12.5, 3)) == "s1@12.5#3"

    def test_wire_size_positive(self):
        assert AgentId("server-1", 0.0, 0).wire_size() > 0


class TestAgentIdFactory:
    def test_unique_at_same_instant(self):
        factory = AgentIdFactory("s1")
        first = factory.new(5.0)
        second = factory.new(5.0)
        assert first != second
        assert first < second

    def test_distinct_instants_reset_seq(self):
        factory = AgentIdFactory("s1")
        a = factory.new(1.0)
        b = factory.new(2.0)
        assert a.seq == 0
        assert b.seq == 0
        assert a < b

    def test_host_recorded(self):
        assert AgentIdFactory("myhost").new(0.0).host == "myhost"
