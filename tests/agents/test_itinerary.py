"""Unit tests for itinerary strategies."""

import networkx as nx
import pytest

from repro.agents.itinerary import (
    CostSorted,
    InitialCostOrder,
    RandomOrder,
    StaticOrder,
    make_itinerary,
)
from repro.net.topology import Topology
from repro.sim.rng import RandomStreams


@pytest.fixture
def topo():
    graph = nx.Graph()
    graph.add_edge("home", "near", cost=1.0)
    graph.add_edge("home", "mid", cost=2.0)
    graph.add_edge("home", "far", cost=5.0)
    graph.add_edge("near", "mid", cost=0.5)
    graph.add_edge("near", "far", cost=0.7)
    graph.add_edge("mid", "far", cost=9.0)
    return Topology(graph)


@pytest.fixture
def stream():
    return RandomStreams(0).stream("itinerary")


class TestCostSorted:
    def test_picks_cheapest_from_current(self, topo):
        strategy = CostSorted()
        assert strategy.next_host("home", {"near", "mid", "far"}, topo) == "near"

    def test_reevaluates_after_moving(self, topo):
        strategy = CostSorted()
        # from `near`, `mid` (0.5) is now cheaper than `far` (0.7)
        assert strategy.next_host("near", {"mid", "far"}, topo) == "mid"

    def test_empty_unvisited_rejected(self, topo):
        with pytest.raises(ValueError):
            CostSorted().next_host("home", [], topo)


class TestInitialCostOrder:
    def test_plans_once_from_home(self, topo):
        strategy = InitialCostOrder("home")
        order = []
        unvisited = {"near", "mid", "far"}
        current = "home"
        while unvisited:
            nxt = strategy.next_host(current, unvisited, topo)
            order.append(nxt)
            unvisited.discard(nxt)
            current = nxt
        # cost from home: near(1) < mid(2) < far(5); the plan never adapts
        assert order == ["near", "mid", "far"]

    def test_empty_rejected(self, topo):
        with pytest.raises(ValueError):
            InitialCostOrder("home").next_host("home", [], topo)


class TestStaticOrder:
    def test_alphabetical(self, topo):
        strategy = StaticOrder()
        assert strategy.next_host("home", {"mid", "far", "near"}, topo) == "far"

    def test_empty_rejected(self, topo):
        with pytest.raises(ValueError):
            StaticOrder().next_host("home", [], topo)


class TestRandomOrder:
    def test_requires_stream(self, topo):
        with pytest.raises(ValueError):
            RandomOrder().next_host("home", {"near"}, topo)

    def test_only_picks_unvisited(self, topo, stream):
        strategy = RandomOrder()
        picks = {
            strategy.next_host("home", {"near", "mid"}, topo, stream)
            for _ in range(50)
        }
        assert picks == {"near", "mid"}

    def test_empty_rejected(self, topo, stream):
        with pytest.raises(ValueError):
            RandomOrder().next_host("home", [], topo, stream)


class TestFactory:
    def test_all_names_construct(self):
        for name in (
            "cost-sorted", "initial-cost-order", "static-order",
            "random-order",
        ):
            assert make_itinerary(name, home="h").name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_itinerary("teleport")
