"""Unit tests for the agent platform: launch, services, migration policy."""

import pytest

from repro.errors import (
    AgentDisposed,
    AgentError,
    ReplicaUnavailable,
)
from repro.agents.agent import MobileAgent
from repro.agents.directory import PlatformDirectory
from repro.agents.mobility import MigrationCostModel
from repro.agents.platform import AgentPlatform, MobilityPolicy
from repro.net.faults import CrashSchedule, FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.rng import RandomStreams


class HopAgent(MobileAgent):
    """Test agent that follows a fixed route and records arrivals."""

    def __init__(self, agent_id, route):
        super().__init__(agent_id)
        self.route = route
        self.errors = []

    def behavior(self):
        for dst in self.route:
            try:
                yield from self.migrate(dst)
            except ReplicaUnavailable as err:
                self.errors.append(err)
        self.dispose()


def make_world(env, hosts=("a", "b", "c"), faults=None, policy=None):
    topo = Topology.full_mesh(list(hosts))
    network = Network(
        env, topo, latency=ConstantLatency(2.0), faults=faults,
        streams=RandomStreams(0),
    )
    directory = PlatformDirectory()
    platforms = {
        h: AgentPlatform(env, network, h, directory, policy=policy)
        for h in hosts
    }
    return network, directory, platforms


class TestServices:
    def test_provide_and_lookup(self, env):
        _n, _d, platforms = make_world(env)
        marker = object()
        platforms["a"].provide("replica", marker)
        assert platforms["a"].service("replica") is marker

    def test_missing_service_raises(self, env):
        _n, _d, platforms = make_world(env)
        with pytest.raises(AgentError):
            platforms["a"].service("ghost")

    def test_double_provide_rejected(self, env):
        _n, _d, platforms = make_world(env)
        platforms["a"].provide("x", 1)
        with pytest.raises(AgentError):
            platforms["a"].provide("x", 2)


class TestDirectory:
    def test_lookup(self, env):
        _n, directory, platforms = make_world(env)
        assert directory.lookup("b") is platforms["b"]

    def test_unknown_host(self, env):
        _n, directory, _p = make_world(env)
        with pytest.raises(AgentError):
            directory.lookup("zz")

    def test_duplicate_registration_rejected(self, env):
        _n, directory, platforms = make_world(env)
        with pytest.raises(AgentError):
            directory.register(platforms["a"])

    def test_len_and_hosts(self, env):
        _n, directory, _p = make_world(env)
        assert len(directory) == 3
        assert directory.hosts == ["a", "b", "c"]


class TestLaunchAndMigration:
    def test_agent_travels_route(self, env):
        _n, _d, platforms = make_world(env)
        agent = HopAgent(platforms["a"].new_agent_id(), ["b", "c"])
        platforms["a"].launch(agent)
        env.run()
        assert [h for _t, h in agent.travel_log] == ["a", "b", "c"]
        assert agent.hops == 2
        assert agent.disposed

    def test_migration_takes_network_time(self, env):
        _n, _d, platforms = make_world(env)
        agent = HopAgent(platforms["a"].new_agent_id(), ["b"])
        platforms["a"].launch(agent)
        env.run()
        times = [t for t, _h in agent.travel_log]
        assert times == [0.0, 2.0]

    def test_self_migration_is_noop(self, env):
        _n, _d, platforms = make_world(env)
        agent = HopAgent(platforms["a"].new_agent_id(), ["a"])
        platforms["a"].launch(agent)
        env.run()
        assert agent.hops == 0
        assert agent.location is None  # disposed

    def test_launch_twice_rejected(self, env):
        _n, _d, platforms = make_world(env)
        agent = HopAgent(platforms["a"].new_agent_id(), [])
        platforms["a"].launch(agent)
        with pytest.raises(AgentError):
            platforms["b"].launch(agent)

    def test_unknown_destination_rejected(self, env):
        _n, _d, platforms = make_world(env)

        class BadAgent(MobileAgent):
            def behavior(self):
                yield from self.migrate("nowhere")

        agent = BadAgent(platforms["a"].new_agent_id())
        platforms["a"].launch(agent)
        with pytest.raises(AgentError):
            env.run()

    def test_disposed_agent_cannot_migrate(self, env):
        _n, _d, platforms = make_world(env)

        class ZombieAgent(MobileAgent):
            def behavior(self):
                self.dispose()
                yield from self.migrate("b")

        agent = ZombieAgent(platforms["a"].new_agent_id())
        platforms["a"].launch(agent)
        with pytest.raises(AgentDisposed):
            env.run()

    def test_dispose_idempotent(self, env):
        _n, _d, platforms = make_world(env)
        agent = HopAgent(platforms["a"].new_agent_id(), [])
        platforms["a"].launch(agent)
        env.run()
        agent.dispose()  # second time: no error
        assert agent.disposed

    def test_resident_sets_updated(self, env):
        _n, _d, platforms = make_world(env)

        class Sitter(MobileAgent):
            def behavior(self):
                yield from self.migrate("b")
                yield self.platform.env.timeout(100)

        agent = Sitter(platforms["a"].new_agent_id())
        platforms["a"].launch(agent)
        env.run(until=50)
        assert agent not in platforms["a"].residents
        assert agent in platforms["b"].residents


class TestRetryPolicy:
    def test_unavailable_after_max_attempts(self, env):
        faults = FaultPlan(crashes=CrashSchedule().add("b", 0, 10_000))
        policy = MobilityPolicy(
            migration_timeout=10, max_attempts=3, retry_backoff=5
        )
        _n, _d, platforms = make_world(env, faults=faults, policy=policy)
        agent = HopAgent(platforms["a"].new_agent_id(), ["b"])
        platforms["a"].launch(agent)
        env.run()
        assert len(agent.errors) == 1
        assert agent.errors[0].replica == "b"
        assert platforms["a"].migrations_failed == 3
        assert agent.location is None  # disposed at home after failure

    def test_policy_validation(self):
        with pytest.raises(AgentError):
            MobilityPolicy(migration_timeout=0)
        with pytest.raises(AgentError):
            MobilityPolicy(max_attempts=0)
        with pytest.raises(AgentError):
            MobilityPolicy(retry_backoff=-1)

    def test_transfer_from_wrong_platform_rejected(self, env):
        _n, _d, platforms = make_world(env)

        class Confused(MobileAgent):
            def __init__(self, agent_id, wrong_platform):
                super().__init__(agent_id)
                self.wrong_platform = wrong_platform

            def behavior(self):
                yield from self.wrong_platform.transfer(self, "c")

        agent = Confused(platforms["a"].new_agent_id(), platforms["b"])
        platforms["a"].launch(agent)
        with pytest.raises(AgentError):
            env.run()


class TestMigrationCost:
    def test_bigger_state_bigger_size(self):
        from repro.agents.identity import AgentId

        model = MigrationCostModel(base_bytes=100)

        class Light(MobileAgent):
            def behavior(self):
                yield

        class Heavy(Light):
            def state(self):
                return {"bulk": "x" * 10_000}

        agent_id = AgentId("h", 0.0, 0)
        assert model.size_of(Heavy(agent_id)) > model.size_of(Light(agent_id))

    def test_cost_model_validation(self):
        with pytest.raises(ValueError):
            MigrationCostModel(base_bytes=-1)
        with pytest.raises(ValueError):
            MigrationCostModel(serialization_overhead=0.5)
