"""Tests for ASCII chart rendering and queue monitoring."""

import pytest

from repro.analysis.charts import ascii_chart, sparkline


class TestSparkline:
    def test_levels_span_range(self):
        line = sparkline([0.0, 50.0, 100.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 3

    def test_constant_series(self):
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_becomes_blank(self):
        assert sparkline([1.0, float("nan"), 2.0])[1] == " "


class TestAsciiChart:
    def test_renders_axes_and_legend(self):
        chart = ascii_chart(
            [1, 2, 3], {"alpha": [10.0, 20.0, 30.0]},
            width=20, height=6, x_label="gap", title="demo",
        )
        assert "demo" in chart
        assert "o alpha" in chart
        assert "30" in chart and "10" in chart  # y range annotations
        assert "gap" in chart

    def test_multiple_series_distinct_markers(self):
        chart = ascii_chart(
            [1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]},
            width=20, height=6,
        )
        assert "o a" in chart
        assert "x b" in chart

    def test_degenerate_dimensions_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]}, width=5, height=6)

    def test_no_data(self):
        assert ascii_chart([], {}, width=20, height=6) == "(no data)"

    def test_constant_values_do_not_crash(self):
        chart = ascii_chart([1, 2], {"a": [5.0, 5.0]}, width=20, height=6)
        assert "o a" in chart

    def test_figure_chart_property(self):
        from repro.experiments.common import FigureData

        figure = FigureData(
            title="t", x_label="x", x_values=[1.0, 2.0],
            series={"s": [3.0, 4.0]},
        )
        assert "o s" in figure.chart


class TestQueueMonitoring:
    def test_ll_lengths_tracked_over_time(self):
        from repro import Deployment, MARP

        dep = Deployment(n_replicas=3, seed=1)
        monitors = dep.enable_queue_monitoring()
        marp = MARP(dep)
        for host in dep.hosts:
            marp.submit_write(host, "x", 1)
        dep.run(until=200_000)
        for host, monitor in monitors.items():
            # queues drained back to zero and saw some occupancy
            assert monitor.current == 0
            average = monitor.time_average(until=dep.env.now)
            assert average >= 0
        # at least one server actually queued more than one agent
        peak = max(
            max(m.samples()[1]) for m in monitors.values()
        )
        assert peak >= 2

    def test_idempotent_enable(self):
        from repro import Deployment

        dep = Deployment(n_replicas=2, seed=0)
        first = dep.enable_queue_monitoring()
        second = dep.enable_queue_monitoring()
        assert first["s1"] is second["s1"]
