"""Unit tests for the consistency auditor (crafted good and bad states)."""

import pytest

from repro.errors import ConsistencyViolation
from repro.analysis.consistency import assert_consistent, audit
from repro.replication.deployment import Deployment
from repro.replication.history import CommitRecord


def commit(rid, key, value, version, at, origin="s1"):
    return CommitRecord(
        request_id=rid, key=key, value=value, version=version,
        committed_at=at, origin=origin,
    )


def apply_everywhere(dep, rid, key, value, version, at):
    for host in dep.hosts:
        dep.server(host).store.apply(key, value, version, at)
        dep.server(host).history.append(commit(rid, key, value, version, at))


@pytest.fixture
def dep():
    return Deployment(n_replicas=3, seed=0)


class TestCleanState:
    def test_empty_deployment_is_consistent(self, dep):
        report = audit(dep)
        assert report.consistent
        assert report.identical_histories
        assert report.total_commits == 0

    def test_uniform_commits_pass_all_checks(self, dep):
        apply_everywhere(dep, 1, "x", "a", 1, 1.0)
        apply_everywhere(dep, 2, "x", "b", 2, 2.0)
        report = audit(dep)
        assert report.consistent
        assert report.complete
        assert report.identical_histories
        assert report.total_commits == 2

    def test_assert_consistent_returns_report(self, dep):
        apply_everywhere(dep, 1, "x", "a", 1, 1.0)
        assert assert_consistent(dep).consistent


class TestViolations:
    def test_final_state_divergence_detected(self, dep):
        dep.server("s1").store.apply("x", "one", 1, 0.0)
        dep.server("s2").store.apply("x", "two", 1, 0.0)
        report = audit(dep)
        assert not report.final_state_equal
        assert not report.consistent
        assert report.problems

    def test_commit_divergence_detected(self, dep):
        # same (key, version) maps to different requests on two replicas
        dep.server("s1").history.append(commit(1, "x", "a", 1, 1.0))
        dep.server("s2").history.append(commit(2, "x", "b", 1, 1.0))
        report = audit(dep)
        assert not report.divergence_free

    def test_missing_commit_detected_as_incomplete(self, dep):
        apply_everywhere(dep, 1, "x", "a", 1, 1.0)
        # s1 alone gets a second commit
        dep.server("s1").store.apply("x", "b", 2, 2.0)
        dep.server("s1").history.append(commit(2, "x", "b", 2, 2.0))
        report = audit(dep)
        assert not report.complete
        assert not report.identical_histories
        # but nothing contradictory: still "consistent" is False only via
        # final-state inequality
        assert not report.final_state_equal

    def test_non_monotone_history_detected(self, dep):
        server = dep.server("s1")
        server.history.append(commit(1, "x", "a", 2, 1.0))
        server.history.append(commit(2, "x", "b", 1, 2.0))
        report = audit(dep)
        assert not report.monotone

    def test_assert_consistent_raises(self, dep):
        dep.server("s1").store.apply("x", "one", 1, 0.0)
        with pytest.raises(ConsistencyViolation):
            assert_consistent(dep)

    def test_order_difference_breaks_identical_histories(self, dep):
        # Same commits, different interleaving across keys.
        a = commit(1, "x", "a", 1, 1.0)
        b = commit(2, "y", "b", 1, 1.0)
        for host in dep.hosts:
            dep.server(host).store.apply("x", "a", 1, 1.0)
            dep.server(host).store.apply("y", "b", 1, 1.0)
        dep.server("s1").history.append(a)
        dep.server("s1").history.append(
            commit(2, "y", "b", 1, 2.0)
        )
        dep.server("s2").history.append(b)
        dep.server("s2").history.append(
            commit(1, "x", "a", 1, 2.0)
        )
        dep.server("s3").history.append(a)
        dep.server("s3").history.append(
            commit(2, "y", "b", 1, 2.0)
        )
        report = audit(dep)
        assert not report.identical_histories
        assert report.consistent  # per-key invariants all hold
