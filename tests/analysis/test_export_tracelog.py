"""Tests for result export and the trace log module."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    ablation_to_csv,
    comparison_to_csv,
    comparison_to_json,
    figure_to_csv,
    figure_to_json,
    figure_to_rows,
)
from repro.analysis.tracelog import ProtocolTrace
from repro.experiments.ablations import AblationTable
from repro.experiments.common import FigureData
from repro.experiments.table_comparison import ComparisonRow, ComparisonTable


@pytest.fixture
def figure():
    return FigureData(
        title="Figure X",
        x_label="gap",
        x_values=[10.0, 20.0],
        series={"3 servers": [5.0, 3.0], "5 servers": [9.0, 6.0]},
    )


@pytest.fixture
def comparison():
    table = ComparisonTable(title="T")
    table.rows.append(
        ComparisonRow(
            protocol="marp", latency="lan", mean_interarrival=30.0,
            committed=10.0, failed=0.0, att=12.5, control_messages=100.0,
            control_bytes=4096.0, agent_migrations=30.0,
            agent_bytes=2048.0, msgs_per_commit=13.0, consistent=True,
        )
    )
    return table


class TestFigureExport:
    def test_rows_shape(self, figure):
        header, rows = figure_to_rows(figure)
        assert header == ["gap", "3 servers", "5 servers"]
        assert rows == [[10.0, 5.0, 9.0], [20.0, 3.0, 6.0]]

    def test_csv_round_trip(self, figure):
        parsed = list(csv.reader(io.StringIO(figure_to_csv(figure))))
        assert parsed[0] == ["gap", "3 servers", "5 servers"]
        assert parsed[1] == ["10.0", "5.0", "9.0"]

    def test_json_fields(self, figure):
        data = json.loads(figure_to_json(figure))
        assert data["title"] == "Figure X"
        assert data["series"]["5 servers"] == [9.0, 6.0]
        assert data["all_consistent"] is True


class TestComparisonExport:
    def test_csv(self, comparison):
        parsed = list(csv.reader(io.StringIO(comparison_to_csv(comparison))))
        assert parsed[0][0] == "protocol"
        assert parsed[1][0] == "marp"

    def test_json(self, comparison):
        data = json.loads(comparison_to_json(comparison))
        assert data["rows"][0]["protocol"] == "marp"
        assert data["rows"][0]["att"] == 12.5


class TestAblationExport:
    def test_csv(self):
        table = AblationTable(
            title="A", headers=["variant", "metric"],
            rows=[["a", 1.0], ["b", 2.0]],
        )
        parsed = list(csv.reader(io.StringIO(ablation_to_csv(table))))
        assert parsed == [["variant", "metric"], ["a", "1.0"], ["b", "2.0"]]


class TestProtocolTraceUnit:
    def test_record_and_filter(self):
        trace = ProtocolTrace()
        trace.record(1.0, "dispatch", host="s1", agent="a1")
        trace.record(2.0, "commit", host="s2", agent="a1")
        trace.record(3.0, "dispatch", host="s2", agent="a2")
        assert len(trace) == 3
        assert len(trace.of_kind("dispatch")) == 2
        assert len(trace.for_agent("a1")) == 2
        assert trace.counts()["commit"] == 1

    def test_journeys_running_state(self):
        trace = ProtocolTrace()
        trace.record(1.0, "dispatch", host="s1", agent="a1")
        trace.record(2.0, "arrive", host="s2", agent="a1")
        journeys = trace.journeys()
        assert journeys["a1"] == "s1 > s2 [running]"

    def test_render_log_full(self):
        trace = ProtocolTrace()
        trace.record(1.0, "dispatch", host="s1", agent="a1", detail="d")
        text = trace.render_log(limit=None)
        assert "dispatch" in text
        assert "more events" not in text

    def test_render_journeys(self):
        trace = ProtocolTrace()
        trace.record(1.0, "dispatch", host="s1", agent="a1")
        trace.record(2.0, "abort", host="s1", agent="a1")
        assert "[abort]" in trace.render_journeys()
