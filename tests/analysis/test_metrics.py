"""Unit tests for the paper's metrics."""

import math

import pytest

from repro.analysis.metrics import (
    alt,
    att,
    committed_writes,
    prk,
    response_times,
    throughput,
    visit_counts,
)
from repro.replication.requests import READ, WRITE, RequestRecord


def write(n, dispatched=0.0, locked=None, completed=None, visits=None,
          status="committed"):
    return RequestRecord(
        request_id=n, home="s1", op=WRITE, key="x", created_at=0.0,
        dispatched_at=dispatched, lock_acquired_at=locked,
        completed_at=completed, visits_to_lock=visits, status=status,
    )


class TestALTandATT:
    def test_alt_mean_of_lock_times(self):
        records = [
            write(1, dispatched=0, locked=10, completed=15, visits=3),
            write(2, dispatched=5, locked=25, completed=30, visits=3),
        ]
        assert alt(records) == 15.0  # (10 + 20) / 2

    def test_att_mean_of_total_times(self):
        records = [
            write(1, dispatched=0, locked=10, completed=14, visits=3),
            write(2, dispatched=0, locked=10, completed=26, visits=3),
        ]
        assert att(records) == 20.0

    def test_empty_records_are_nan(self):
        assert math.isnan(alt([]))
        assert math.isnan(att([]))

    def test_non_committed_excluded(self):
        records = [
            write(1, locked=5, completed=10, visits=3, status="failed"),
        ]
        assert math.isnan(alt(records))

    def test_reads_excluded(self):
        record = RequestRecord(
            1, "s1", READ, "x", dispatched_at=0.0, completed_at=5.0,
            status="read-done",
        )
        assert math.isnan(att([record]))


class TestPRK:
    def test_fractions_sum_to_one(self):
        records = [write(n, locked=1, completed=2, visits=v)
                   for n, v in enumerate([3, 3, 4, 5])]
        fractions = prk(records)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions[3] == 0.5

    def test_n_replicas_fills_range(self):
        records = [write(1, locked=1, completed=2, visits=3)]
        fractions = prk(records, n_replicas=5)
        assert set(fractions) == {3, 4, 5}
        assert fractions[4] == 0.0

    def test_empty_with_n(self):
        assert prk([], n_replicas=5) == {3: 0.0, 4: 0.0, 5: 0.0}

    def test_visit_counts_array(self):
        records = [write(n, locked=1, completed=2, visits=v)
                   for n, v in enumerate([5, 3])]
        assert sorted(visit_counts(records).tolist()) == [3, 5]


class TestOtherMetrics:
    def test_committed_writes_filter(self):
        records = [
            write(1, status="committed"),
            write(2, status="failed"),
            RequestRecord(3, "s1", READ, "x", status="read-done"),
        ]
        assert [r.request_id for r in committed_writes(records)] == [1]

    def test_response_times(self):
        records = [
            write(1, completed=10.0),
            write(2, completed=30.0, status="failed"),
        ]
        assert response_times(records).tolist() == [10.0]

    def test_throughput(self):
        records = [
            write(1, locked=1, completed=1000.0),
            write(2, locked=1, completed=3000.0),
            write(3, locked=1, completed=5000.0),
        ]
        # 2 intervals over 4 seconds -> 0.5 commits/s
        assert throughput(records) == pytest.approx(0.5)

    def test_throughput_degenerate(self):
        assert throughput([]) == 0.0
        assert throughput([write(1, completed=5.0)]) == 0.0
