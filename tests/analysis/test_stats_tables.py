"""Unit tests for summary statistics and text tables."""

import math

import pytest

from repro.analysis.stats import confidence_interval, summarize
from repro.analysis.tables import format_cell, format_series, format_table


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.n == 5
        assert summary.mean == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.p50 == 3.0

    def test_nan_values_filtered(self):
        summary = summarize([1.0, float("nan"), 3.0])
        assert summary.n == 2
        assert summary.mean == 2.0

    def test_empty_is_all_nan(self):
        summary = summarize([])
        assert summary.n == 0
        assert math.isnan(summary.mean)

    def test_single_value_degenerate_ci(self):
        summary = summarize([7.0])
        assert summary.ci_low == summary.ci_high == 7.0
        assert summary.std == 0.0

    def test_ci_contains_mean(self):
        summary = summarize([10.0, 12.0, 11.0, 9.0, 13.0])
        assert summary.ci_low < summary.mean < summary.ci_high

    def test_confidence_interval_widens_with_spread(self):
        tight = confidence_interval([10.0, 10.1, 9.9])
        wide = confidence_interval([5.0, 15.0, 10.0])
        assert (wide[1] - wide[0]) > (tight[1] - tight[0])

    def test_confidence_interval_empty(self):
        low, high = confidence_interval([])
        assert math.isnan(low) and math.isnan(high)


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_float_precision(self):
        assert format_cell(3.14159, precision=2) == "3.14"

    def test_nan(self):
        assert format_cell(float("nan")) == "nan"

    def test_large_float_grouped(self):
        assert format_cell(1234567.0) == "1,234,567"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22.25]],
        )
        lines = text.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert "alpha" in lines[2]
        # numeric column right-aligned: both rows end aligned
        assert lines[2].rstrip().endswith("1.5")

    def test_title_rendered(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_series(self):
        text = format_series(
            "x", [1, 2], {"s1": [10.0, 20.0], "s2": [30.0, 40.0]},
        )
        assert "s1" in text and "s2" in text
        assert "10.0" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s1": [10.0]})
