"""Streaming accounting: reservoir parity, chain digests, sweeps.

The streaming data plane must be an *accounting* change only: a
streaming run simulates the exact same events as its full-record twin,
so every exact metric (ALT/ATT means, PRK, throughput, counts) must be
byte-equal, the P² quantiles must land within their documented error
bound, and the incremental chain digests must equal a replay of the
stored histories.
"""

import math

import numpy as np
import pytest

from repro.analysis.consistency import ChainDigest, audit, streaming_audit
from repro.analysis.stats import P2Quantile, Welford
from repro.errors import ProtocolError, ReplicationError
from repro.experiments.runner import RunConfig, run_once
from repro.sim.monitor import (
    Monitor,
    StateMonitor,
    StreamingMonitor,
    StreamingStateMonitor,
)

BASE = RunConfig(
    n_replicas=5, seed=13, mean_interarrival=30.0,
    requests_per_client=40, n_keys=8, key_skew=0.9,
    workload_chunk=32,
)


@pytest.fixture(scope="module")
def twin_runs():
    """One config run both ways: full-record and streaming."""
    batch = run_once(BASE)
    streaming = run_once(BASE.with_(streaming=True))
    return batch, streaming


class TestWelford:
    def test_matches_numpy(self):
        rng = np.random.default_rng(3)
        xs = rng.lognormal(1.0, 0.7, size=5000)
        w = Welford()
        for x in xs:
            w.observe(float(x))
        assert w.count == len(xs)
        assert w.result() == pytest.approx(float(np.mean(xs)), rel=1e-12)
        assert w.variance == pytest.approx(
            float(np.var(xs, ddof=1)), rel=1e-9
        )
        assert (w.minimum, w.maximum) == (float(xs.min()), float(xs.max()))

    def test_empty_is_nan(self):
        assert math.isnan(Welford().result())


class TestP2Quantile:
    def test_exact_below_six_observations(self):
        est = P2Quantile(0.99)
        xs = [5.0, 1.0, 9.0, 3.0]
        for x in xs:
            est.observe(x)
        assert est.result() == pytest.approx(np.percentile(xs, 99))

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99])
    def test_within_documented_bound_on_latency_shapes(self, q):
        # Documented contract: ≤ ~5% relative error on latency-like
        # (exponential / lognormal) distributions.
        rng = np.random.default_rng(17)
        for xs in (
            rng.exponential(30.0, size=50_000),
            rng.lognormal(3.0, 0.5, size=50_000),
        ):
            est = P2Quantile(q)
            for x in xs:
                est.observe(float(x))
            exact = float(np.percentile(xs, q * 100.0))
            assert est.result() == pytest.approx(exact, rel=0.05)

    def test_quantile_ordering(self):
        rng = np.random.default_rng(23)
        xs = rng.exponential(10.0, size=20_000)
        p50, p99 = P2Quantile(0.5), P2Quantile(0.99)
        for x in xs:
            p50.observe(float(x))
            p99.observe(float(x))
        assert p50.result() < p99.result()


class TestStreamingMonitors:
    def test_mean_matches_batch_monitor(self):
        rng = np.random.default_rng(5)
        batch, streaming = Monitor("m"), StreamingMonitor("m")
        for t, v in enumerate(rng.exponential(4.0, size=3000)):
            batch.record(float(t), float(v))
            streaming.record(float(t), float(v))
        assert len(streaming) == len(batch)
        assert streaming.mean() == pytest.approx(batch.mean(), rel=1e-12)
        assert streaming.percentile(99.0) == pytest.approx(
            batch.percentile(99.0), rel=0.05
        )

    def test_untracked_quantile_raises(self):
        with pytest.raises(ValueError):
            StreamingMonitor("m", quantiles=(50.0,)).percentile(99.0)

    def test_state_monitor_time_average_exact(self):
        rng = np.random.default_rng(11)
        times = np.cumsum(rng.exponential(2.0, size=1000))
        states = rng.integers(0, 7, size=1000)
        batch = StateMonitor("ll", initial=0.0)
        streaming = StreamingStateMonitor("ll", initial=0.0)
        for t, s in zip(times, states):
            batch.set(float(t), float(s))
            streaming.set(float(t), float(s))
        until = float(times[-1] + 5.0)
        assert streaming.time_average(until) == pytest.approx(
            batch.time_average(until), rel=1e-12
        )

    def test_state_monitor_backwards_time_raises(self):
        monitor = StreamingStateMonitor("ll", initial=1.0, time=10.0)
        with pytest.raises(ValueError):
            monitor.set(5.0, 2.0)


class TestStreamingBatchParity:
    def test_exact_metrics_agree(self, twin_runs):
        batch, streaming = twin_runs
        assert streaming.committed == batch.committed
        assert streaming.failed == batch.failed
        assert streaming.open == batch.open
        assert streaming.alt == pytest.approx(batch.alt, rel=1e-12)
        assert streaming.att == pytest.approx(batch.att, rel=1e-12)
        assert streaming.throughput == pytest.approx(
            batch.throughput, rel=1e-12
        )
        assert set(streaming.prk) == set(batch.prk)
        for k, fraction in batch.prk.items():
            assert streaming.prk[k] == pytest.approx(fraction, rel=1e-12)

    def test_quantiles_within_bound(self, twin_runs):
        # The ~5% P² bound holds for long streams (pinned above on 50k
        # samples); this short 200-commit run only gets the small-n
        # bound — still tight enough to catch a broken estimator.
        batch, streaming = twin_runs
        assert streaming.att_p50 == pytest.approx(batch.att_p50, rel=0.15)
        assert streaming.att_p99 == pytest.approx(batch.att_p99, rel=0.15)

    def test_streaming_run_keeps_no_records(self, twin_runs):
        _, streaming = twin_runs
        assert streaming.records == []
        assert streaming.commit_slots == ()
        assert len(streaming.chain_digests) == BASE.n_replicas

    def test_serial_vs_pool_fingerprints_identical(self):
        # Pool workers are fresh interpreters whose request-id counter
        # starts over; the id-base normalisation inside ChainDigest must
        # make the streaming fingerprint (which folds the digests)
        # process-independent.
        from repro.experiments.cache import result_fingerprint
        from repro.experiments.parallel import ParallelRunner

        config = BASE.with_(streaming=True)
        serial = run_once(config)
        with ParallelRunner(jobs=2) as runner:
            pooled = runner.run_one(config)
        assert result_fingerprint(pooled) == result_fingerprint(serial)
        assert pooled.chain_digests == serial.chain_digests

    def test_audits_agree_on_clean_run(self, twin_runs):
        batch, streaming = twin_runs
        full = audit(batch.deployment)
        assert full.consistent and full.identical_histories
        report = streaming.audit
        for flag in (
            "final_state_equal", "divergence_free", "monotone",
            "complete", "identical_histories",
        ):
            assert getattr(report, flag) == getattr(full, flag), flag
        assert report.total_commits == full.total_commits


class TestChainDigestReplay:
    def test_incremental_equals_replay_of_stored_history(self, twin_runs):
        # The batch twin keeps full histories; replaying them through a
        # fresh ChainDigest — normalised to that run's own first request
        # id — must reproduce the streaming twin's in-run digests.
        batch, streaming = twin_runs
        incremental = dict(streaming.chain_digests)
        id_base = min(r.request_id for r in batch.records)
        for host in batch.deployment.hosts:
            replay = ChainDigest(host, id_base=id_base)
            for record in batch.deployment.server(host).history:
                replay.observe(record)
            assert replay.whole_digest() == incremental[host], host
            assert replay.monotone

    def test_streaming_audit_from_replayed_digests(self, twin_runs):
        batch, _ = twin_runs
        digests = {}
        for host in batch.deployment.hosts:
            digest = ChainDigest(host)
            for record in batch.deployment.server(host).history:
                digest.observe(record)
            digests[host] = digest
        report = streaming_audit(batch.deployment, digests)
        assert report.consistent
        assert report.identical_histories

    def test_digest_flags_non_monotone(self):
        class FakeRecord:
            def __init__(self, version):
                self.key = "x"
                self.version = version
                self.request_id = version
                self.value = version
                self.origin = "s1"

        digest = ChainDigest("s1")
        digest.observe(FakeRecord(1))
        digest.observe(FakeRecord(1))  # repeat version
        assert not digest.monotone
        assert digest.problems


class TestProtocolSweep:
    def _protocol(self):
        from repro.baselines import PrimaryCopy
        from repro.replication.deployment import Deployment

        deployment = Deployment(n_replicas=3, seed=2)
        return deployment, PrimaryCopy(deployment)

    def test_sweep_bounds_record_list(self):
        deployment, protocol = self._protocol()
        seen = []
        protocol.enable_streaming(seen.append, sweep_every=4)
        for index in range(20):
            protocol.submit_write("s1", "x", index)
            deployment.run()
        pending = protocol.finalize_streaming()
        assert pending == 0
        assert protocol.records == []
        assert protocol.swept == 20
        assert len(seen) == 20  # each terminal record exactly once
        assert len({r.request_id for r in seen}) == 20

    def test_sweep_every_validation(self):
        _, protocol = self._protocol()
        with pytest.raises(ReplicationError):
            protocol.enable_streaming(lambda r: None, sweep_every=0)


class TestHistoryLogStreaming:
    def test_stream_to_forwards_without_retaining(self):
        deployment, protocol = (
            TestProtocolSweep()._protocol()
        )
        sink = ChainDigest("s1")
        deployment.server("s1").history.stream_to(sink)
        for index in range(5):
            protocol.submit_write("s1", "x", index)
            deployment.run()
        history = deployment.server("s1").history
        assert len(history) == 5
        assert list(history) == []  # nothing retained
        assert history.last() is not None
        assert sink.commits == 5

    def test_stream_to_after_append_rejected(self):
        deployment, protocol = TestProtocolSweep()._protocol()
        protocol.submit_write("s1", "x", 0)
        deployment.run()
        with pytest.raises(ProtocolError):
            deployment.server("s1").history.stream_to(lambda r: None)


class TestULRetention:
    def test_prune_drops_only_stale_entries(self):
        from repro.agents.identity import AgentId
        from repro.replication.locking import UpdatedList

        ul = UpdatedList(retention=100.0)
        old, fresh = AgentId("h", 1.0, 0), AgentId("h", 2.0, 0)
        ul.add(old, at=0.0)
        ul.add(fresh, at=950.0)
        ul.prune(now=1000.0)
        assert old not in ul and fresh in ul
        assert ul.pruned_total == 1

    def test_no_retention_never_prunes(self):
        from repro.agents.identity import AgentId
        from repro.replication.locking import UpdatedList

        ul = UpdatedList()
        ul.add(AgentId("h", 1.0, 0), at=0.0)
        ul.prune(now=1e12)
        assert len(ul) == 1

    def test_run_with_retention_stays_consistent(self):
        result = run_once(BASE.with_(ul_retention=500.0))
        assert result.audit.consistent
        assert result.committed == BASE.requests_per_client * BASE.n_replicas
