"""Tests for Available Copies and Primary Copy baselines."""

import pytest

from repro.analysis.consistency import audit
from repro.baselines.available_copies import AvailableCopies
from repro.baselines.primary_copy import PrimaryCopy
from repro.net.faults import CrashSchedule, FaultPlan, TransientLinkFaults
from repro.replication.deployment import Deployment


class TestAvailableCopies:
    def test_single_write_reaches_all(self):
        dep = Deployment(n_replicas=3, seed=0)
        ac = AvailableCopies(dep)
        record = ac.submit_write("s1", "x", 1)
        dep.run(until=100_000)
        assert record.status == "committed"
        assert record.extra["available_copies"] == ["s1", "s2", "s3"]
        for host in dep.hosts:
            assert dep.server(host).store.read("x").value == 1

    def test_concurrent_writes_queue_without_livelock(self):
        dep = Deployment(n_replicas=3, seed=0)
        ac = AvailableCopies(dep)
        records = [
            ac.submit_write(host, "x", index)
            for index, host in enumerate(dep.hosts)
        ]
        dep.run(until=1_000_000)
        assert all(r.status == "committed" for r in records)
        assert audit(dep).consistent

    def test_skips_crashed_replica(self):
        faults = FaultPlan(crashes=CrashSchedule().add("s3", 0, 1_000_000))
        dep = Deployment(n_replicas=3, seed=0, faults=faults)
        ac = AvailableCopies(dep, detection_timeout=50.0)
        record = ac.submit_write("s1", "x", 1)
        dep.run(until=1_000_000)
        assert record.status == "committed"
        assert record.extra["skipped"] == ["s3"]
        assert dep.server("s1").store.read("x").value == 1
        assert dep.server("s3").store.read("x") is None  # left behind

    def test_local_reads(self):
        dep = Deployment(n_replicas=3, seed=0)
        ac = AvailableCopies(dep)
        ac.submit_write("s1", "x", "v")
        dep.run(until=100_000)
        record = ac.submit_read("s2", "x")
        dep.run(until=200_000)
        assert record.status == "read-done"
        assert record.value == "v"

    def test_detection_timeout_validation(self):
        dep = Deployment(n_replicas=3, seed=0)
        with pytest.raises(ValueError):
            AvailableCopies(dep, detection_timeout=0)

    def test_partition_causes_divergence(self):
        """The AC weakness the paper cites: a partition that cuts one
        coordinator off from a replica lets the replica miss updates the
        rest of the system accepted (no quorum intersection)."""
        links = TransientLinkFaults()
        # s1 cannot reach s3 at all during the run
        links.add_outage("s1", "s3", 0, 10_000_000)
        dep = Deployment(
            n_replicas=3, seed=0, faults=FaultPlan(links=links),
        )
        ac = AvailableCopies(dep, detection_timeout=40.0)
        record = ac.submit_write("s1", "x", "partitioned-write")
        dep.run(until=1_000_000)
        assert record.status == "committed"
        assert "s3" in record.extra["skipped"]
        report = audit(dep)
        assert not report.complete  # s3 misses the committed update


class TestPrimaryCopy:
    def test_single_write_commits_everywhere(self):
        dep = Deployment(n_replicas=3, seed=0)
        pc = PrimaryCopy(dep)
        record = pc.submit_write("s2", "x", 9)
        dep.run(until=100_000)
        assert record.status == "committed"
        for host in dep.hosts:
            assert dep.server(host).store.read("x").value == 9

    def test_primary_serialises_global_order(self):
        dep = Deployment(n_replicas=3, seed=0)
        pc = PrimaryCopy(dep)
        for index, host in enumerate(dep.hosts):
            pc.submit_write(host, "x", index)
        dep.run(until=1_000_000)
        report = audit(dep)
        assert report.consistent
        assert report.identical_histories
        assert pc.writes_serialized == 3

    def test_custom_primary(self):
        dep = Deployment(n_replicas=3, seed=0)
        pc = PrimaryCopy(dep, primary="s2")
        record = pc.submit_write("s1", "x", 1)
        dep.run(until=100_000)
        assert record.status == "committed"

    def test_unknown_primary_rejected(self):
        dep = Deployment(n_replicas=3, seed=0)
        with pytest.raises(ValueError):
            PrimaryCopy(dep, primary="zz")

    def test_crashed_primary_fails_writes(self):
        faults = FaultPlan(crashes=CrashSchedule().add("s1", 0, 1_000_000))
        dep = Deployment(n_replicas=3, seed=0, faults=faults)
        pc = PrimaryCopy(dep, write_timeout=200.0)
        record = pc.submit_write("s2", "x", 1)
        dep.run(until=1_000_000)
        assert record.status == "failed"

    def test_local_read(self):
        dep = Deployment(n_replicas=3, seed=0)
        pc = PrimaryCopy(dep)
        pc.submit_write("s1", "x", "val")
        dep.run(until=100_000)
        record = pc.submit_read("s3", "x")
        dep.run(until=200_000)
        assert record.status == "read-done"
        assert record.value == "val"

    def test_write_timeout_validation(self):
        dep = Deployment(n_replicas=3, seed=0)
        with pytest.raises(ValueError):
            PrimaryCopy(dep, write_timeout=0)
