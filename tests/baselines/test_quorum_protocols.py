"""Tests for the message-passing quorum baselines (MCV, weighted voting)."""

import pytest

from repro.analysis.consistency import audit
from repro.baselines.mcv import MajorityConsensusVoting
from repro.baselines.weighted_voting import WeightedVoting
from repro.replication.deployment import Deployment
from repro.replication.requests import READ


@pytest.fixture
def dep():
    return Deployment(n_replicas=5, seed=1)


class TestMCV:
    def test_single_write_commits_everywhere(self, dep):
        mcv = MajorityConsensusVoting(dep)
        record = mcv.submit_write("s1", "x", 7)
        dep.run(until=100_000)
        assert record.status == "committed"
        for host in dep.hosts:
            assert dep.server(host).store.read("x").value == 7

    def test_lock_acquired_before_completion(self, dep):
        mcv = MajorityConsensusVoting(dep)
        record = mcv.submit_write("s1", "x", 7)
        dep.run(until=100_000)
        assert record.lock_acquired_at is not None
        assert record.lock_acquired_at <= record.completed_at
        assert record.extra["lock_rounds"] == 1

    def test_concurrent_writes_stay_consistent(self, dep):
        mcv = MajorityConsensusVoting(dep)
        records = [
            mcv.submit_write(host, "x", index)
            for index, host in enumerate(dep.hosts)
        ]
        dep.run(until=1_000_000)
        assert all(r.status == "committed" for r in records)
        report = audit(dep)
        assert report.consistent
        assert report.divergence_free

    def test_conflicting_writes_need_retries(self, dep):
        mcv = MajorityConsensusVoting(dep)
        records = [
            mcv.submit_write(host, "x", index)
            for index, host in enumerate(dep.hosts)
        ]
        dep.run(until=1_000_000)
        rounds = [r.extra["lock_rounds"] for r in records]
        assert max(rounds) > 1  # contention forces at least one retry

    def test_quorum_read_sees_committed_value(self, dep):
        mcv = MajorityConsensusVoting(dep)
        mcv.submit_write("s1", "x", "fresh")
        dep.run(until=100_000)
        record = mcv.submit_read("s3", "x")
        dep.run(until=200_000)
        assert record.status == "read-done"
        assert record.value == "fresh"
        assert record.extra["version"] == 1

    def test_versions_strictly_increase(self, dep):
        mcv = MajorityConsensusVoting(dep)
        for index, host in enumerate(dep.hosts):
            mcv.submit_write(host, "x", index)
        dep.run(until=1_000_000)
        versions = dep.server("s1").history.versions_for("x")
        assert versions == sorted(set(versions))


class TestWeightedVoting:
    def test_default_is_majority(self, dep):
        wv = WeightedVoting(dep)
        assert wv.write_quorum == 3
        assert wv.read_quorum == 3

    def test_custom_votes_and_quorums(self, dep):
        wv = WeightedVoting(
            dep,
            votes={"s1": 3, "s2": 1, "s3": 1, "s4": 1, "s5": 1},
            read_quorum=2,
            write_quorum=6,
        )
        record = wv.submit_write("s2", "x", 1)
        dep.run(until=200_000)
        assert record.status == "committed"

    def test_quorum_intersection_enforced(self, dep):
        with pytest.raises(ValueError):
            WeightedVoting(dep, read_quorum=1, write_quorum=3)  # r+w <= 5

    def test_write_quorum_must_exceed_half(self, dep):
        with pytest.raises(ValueError):
            WeightedVoting(dep, read_quorum=4, write_quorum=2)

    def test_read_with_quorum_one_is_local(self, dep):
        wv = WeightedVoting(dep, read_quorum=3, write_quorum=3)
        record = wv.submit(dep.hosts[0], READ, "x")
        dep.run(until=100_000)
        assert record.status == "read-done"


class TestQuorumEngineEdgeCases:
    def test_failed_after_max_rounds(self):
        # A write against a majority-crashed cluster cannot assemble a
        # quorum and must fail after max_rounds.
        from repro.net.faults import CrashSchedule, FaultPlan

        crashes = CrashSchedule()
        for host in ("s3", "s4", "s5"):
            crashes.add(host, 0, 10_000_000)
        dep = Deployment(n_replicas=5, seed=0,
                         faults=FaultPlan(crashes=crashes))
        mcv = MajorityConsensusVoting(dep, max_rounds=2, lock_timeout=100)
        record = mcv.submit_write("s1", "x", 1)
        dep.run(until=1_000_000)
        assert record.status == "failed"

    def test_daemon_counts_grants_and_nacks(self):
        dep = Deployment(n_replicas=3, seed=0)
        mcv = MajorityConsensusVoting(dep)
        for host in dep.hosts:
            mcv.submit_write(host, "x", 1)
        dep.run(until=1_000_000)
        grants = sum(d.grants_given for d in mcv.daemons.values())
        assert grants >= 3  # at least one full write quorum granted
