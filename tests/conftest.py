"""Shared fixtures for the test suite."""

import pytest

from repro.replication.deployment import Deployment
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(12345)


@pytest.fixture
def deployment() -> Deployment:
    """A small default cluster (3 replicas, seed 0, LAN)."""
    return Deployment(n_replicas=3, seed=0)


@pytest.fixture
def deployment5() -> Deployment:
    """The paper's 5-replica cluster."""
    return Deployment(n_replicas=5, seed=0)
