"""Shared fixtures for the test suite."""

import os

import pytest

from repro.experiments.cache import ResultCache
from repro.experiments.parallel import ParallelRunner
from repro.replication.deployment import Deployment
from repro.sim.core import Environment
from repro.sim.rng import RandomStreams


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(12345)


@pytest.fixture
def deployment() -> Deployment:
    """A small default cluster (3 replicas, seed 0, LAN)."""
    return Deployment(n_replicas=3, seed=0)


@pytest.fixture
def deployment5() -> Deployment:
    """The paper's 5-replica cluster."""
    return Deployment(n_replicas=5, seed=0)


@pytest.fixture(scope="session")
def engine_runner():
    """The experiment engine the determinism/theorem suites run under.

    Environment-switchable so CI exercises the same assertions on every
    execution path:

    * ``REPRO_TEST_JOBS=N`` (N >= 2) — fan runs out over a process pool;
    * ``REPRO_TEST_CACHE_DIR=DIR`` — attach the on-disk result cache
      (run the suite twice against one DIR for cold + warm coverage).

    Unset, this is the serial, uncached engine — identical to calling
    ``run_once`` directly.
    """
    jobs = int(os.environ.get("REPRO_TEST_JOBS", "0") or 0) or None
    cache_dir = os.environ.get("REPRO_TEST_CACHE_DIR")
    cache = ResultCache(cache_dir) if cache_dir else None
    runner = ParallelRunner(jobs=jobs, cache=cache)
    yield runner
    runner.close()
