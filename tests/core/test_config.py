"""Unit tests for MARP configuration validation."""

import pytest

from repro.errors import ProtocolError
from repro.core.config import MARPConfig


class TestMARPConfig:
    def test_defaults_are_valid(self):
        config = MARPConfig()
        assert config.itinerary == "cost-sorted"
        assert config.read_strategy == "local"
        assert config.batch_size == 1

    def test_bad_read_strategy(self):
        with pytest.raises(ProtocolError):
            MARPConfig(read_strategy="psychic")

    def test_bad_batch_size(self):
        with pytest.raises(ProtocolError):
            MARPConfig(batch_size=0)

    def test_bad_flush_interval(self):
        with pytest.raises(ProtocolError):
            MARPConfig(batch_flush_interval=0)

    def test_bad_park_timeout(self):
        with pytest.raises(ProtocolError):
            MARPConfig(park_timeout=0)

    def test_bad_ack_timeout(self):
        with pytest.raises(ProtocolError):
            MARPConfig(ack_timeout=-1)

    def test_bad_max_claims(self):
        with pytest.raises(ProtocolError):
            MARPConfig(max_claims=0)

    def test_bad_claim_backoff(self):
        with pytest.raises(ProtocolError):
            MARPConfig(claim_backoff=-1)

    def test_quorum_read_accepted(self):
        assert MARPConfig(read_strategy="quorum").read_strategy == "quorum"
