"""Tests for the MARP extensions: tracing, RMW, weighted voting."""

import pytest

from repro.errors import ProtocolError
from repro.analysis import assert_consistent
from repro.analysis.tracelog import ProtocolTrace
from repro.core.protocol import MARP
from repro.replication.deployment import Deployment
from repro.replication.requests import Transform


class TestTracing:
    def test_disabled_by_default(self, deployment):
        marp = MARP(deployment)
        marp.submit_write("s1", "x", 1)
        deployment.run(until=50_000)
        assert deployment.trace is None

    def test_trace_records_full_lifecycle(self, deployment5):
        trace = deployment5.enable_tracing()
        marp = MARP(deployment5)
        marp.submit_write("s1", "x", 1)
        deployment5.run(until=50_000)
        counts = trace.counts()
        assert counts["dispatch"] == 1
        assert counts["visit"] >= 3
        assert counts["lock-won"] == 1
        assert counts["claim"] == 1
        assert counts["commit"] == 1
        assert counts["grant"] >= 3
        assert counts["apply"] == 5  # write-all at commit

    def test_journeys_end_in_commit(self, deployment5):
        trace = deployment5.enable_tracing()
        marp = MARP(deployment5)
        marp.submit_write("s2", "x", 1)
        deployment5.run(until=50_000)
        journeys = trace.journeys()
        assert len(journeys) == 1
        journey = next(iter(journeys.values()))
        assert journey.startswith("s2")
        assert journey.endswith("[commit]")

    def test_render_log_and_limit(self, deployment5):
        trace = deployment5.enable_tracing()
        marp = MARP(deployment5)
        marp.submit_write("s1", "x", 1)
        deployment5.run(until=50_000)
        text = trace.render_log(limit=5)
        assert "protocol trace" in text
        assert "more events" in text

    def test_capacity_bounds_memory(self, deployment5):
        trace = deployment5.enable_tracing(capacity=3)
        marp = MARP(deployment5)
        marp.submit_write("s1", "x", 1)
        deployment5.run(until=50_000)
        assert len(trace) == 3
        assert trace.dropped > 0

    def test_unknown_kind_rejected(self):
        trace = ProtocolTrace()
        with pytest.raises(ValueError):
            trace.record(0.0, "teleported")

    def test_enable_twice_returns_same_trace(self, deployment):
        first = deployment.enable_tracing()
        second = deployment.enable_tracing()
        assert first is second

    def test_for_agent_and_of_kind_filters(self, deployment5):
        trace = deployment5.enable_tracing()
        marp = MARP(deployment5)
        record = marp.submit_write("s1", "x", 1)
        deployment5.run(until=50_000)
        agent_events = trace.for_agent(record.agent_id)
        assert agent_events
        assert all(e.agent == record.agent_id for e in agent_events)
        assert len(trace.of_kind("commit")) == 1


class TestReadModifyWrite:
    def test_transform_validation(self):
        with pytest.raises(TypeError):
            Transform("not callable")

    def test_single_rmw_on_missing_key_sees_none(self, deployment5):
        marp = MARP(deployment5)
        record = marp.submit_rmw(
            "s1", "x", lambda v: 1 if v is None else v + 1
        )
        deployment5.run(until=50_000)
        assert record.status == "committed"
        assert record.value == 1
        assert deployment5.server("s4").store.read("x").value == 1

    def test_concurrent_increments_do_not_lose_updates(self, deployment5):
        marp = MARP(deployment5)
        marp.submit_write("s1", "counter", 0)
        deployment5.run(until=30_000)
        increments = [
            marp.submit_rmw(host, "counter", lambda v: v + 1, "incr")
            for host in deployment5.hosts
            for _ in range(2)
        ]
        deployment5.run(until=1_000_000)
        assert all(r.status == "committed" for r in increments)
        final = deployment5.server("s1").store.read("counter")
        assert final.value == 10  # no lost updates
        assert_consistent(deployment5)

    def test_rmw_chains_within_a_batch(self, deployment5):
        from repro.core.config import MARPConfig

        marp = MARP(deployment5, config=MARPConfig(batch_size=2))
        marp.submit_write("s1", "x", 10)
        deployment5.run(until=30_000)
        first = marp.submit_rmw("s2", "x", lambda v: v * 2)
        second = marp.submit_rmw("s2", "x", lambda v: v + 1)
        deployment5.run(until=200_000)
        assert first.value == 20
        assert second.value == 21  # saw the first transform's output
        assert deployment5.server("s3").store.read("x").value == 21


class TestWeightedVoting:
    def test_vote_validation(self, deployment):
        with pytest.raises(ProtocolError):
            MARP(deployment, votes={"nope": 1})
        with pytest.raises(ProtocolError):
            MARP(deployment, votes={"s1": -1, "s2": 1, "s3": 1})
        with pytest.raises(ProtocolError):
            MARP(deployment, votes={"s1": 0, "s2": 0, "s3": 0})

    def test_default_votes_match_count_majority(self, deployment5):
        marp = MARP(deployment5)
        assert marp.total_votes == 5
        assert marp.vote_majority == 3
        assert marp.vote_of("s1") == 1

    def test_weighted_deployment_commits_consistently(self, deployment5):
        marp = MARP(
            deployment5,
            votes={"s1": 3, "s2": 1, "s3": 1, "s4": 1, "s5": 1},
        )
        assert marp.vote_majority == 4
        records = [
            marp.submit_write(host, "x", index)
            for index, host in enumerate(deployment5.hosts)
        ]
        deployment5.run(until=1_000_000)
        assert all(r.status == "committed" for r in records)
        assert_consistent(deployment5)

    def test_heavy_host_alone_is_a_quorum(self):
        # s1 holds 5 of 9 votes: topping s1 alone wins the lock.
        dep = Deployment(n_replicas=5, seed=20)
        marp = MARP(
            dep, votes={"s1": 5, "s2": 1, "s3": 1, "s4": 1, "s5": 1},
        )
        record = marp.submit_write("s1", "x", 1)
        dep.run(until=100_000)
        assert record.status == "committed"
        assert record.visits_to_lock == 1  # home visit sufficed

    def test_weighted_decide_unit(self):
        from repro.agents.identity import AgentId
        from repro.core.locking_table import LockingTable
        from repro.core.priority import WIN, decide
        from repro.replication.server import SharedView

        table = LockingTable()
        a = AgentId("h", 1.0, 0)
        table.update(SharedView("s1", 1.0, (a,), frozenset(), {}))
        # unweighted: 1 of 3 tops is not a majority
        assert decide(table, 3, a).outcome != WIN
        # weighted: s1 carries 3 of 5 votes -> majority
        decision = decide(table, 3, a, votes={"s1": 3, "s2": 1, "s3": 1})
        assert decision.outcome == WIN
