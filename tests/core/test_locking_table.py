"""Unit tests for the agent's Locking Table."""

from repro.agents.identity import AgentId
from repro.core.locking_table import LockingTable
from repro.replication.server import SharedView


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


def view(host: str, as_of: float, queued=(), updated=(), versions=None):
    return SharedView(
        host=host,
        as_of=as_of,
        view=tuple(queued),
        updated=frozenset(updated),
        versions=dict(versions or {}),
    )


class TestIngestion:
    def test_update_adopts_new_host(self):
        table = LockingTable()
        assert table.update(view("s1", 1.0, [aid(1)]))
        assert table.known_hosts == ["s1"]

    def test_update_keeps_freshest(self):
        table = LockingTable()
        table.update(view("s1", 2.0, [aid(1)]))
        assert not table.update(view("s1", 1.0, [aid(2)]))
        assert table.view_of("s1").view == (aid(1),)

    def test_stale_view_still_feeds_ual(self):
        table = LockingTable()
        table.update(view("s1", 2.0, [aid(1)]))
        table.update(view("s1", 1.0, updated=[aid(9)]))
        assert aid(9) in table.ual

    def test_stale_view_still_feeds_max_versions(self):
        table = LockingTable()
        table.update(view("s1", 2.0, versions={"x": 1}))
        table.update(view("s1", 1.0, versions={"x": 5}))
        assert table.version_ceiling("x") == 5

    def test_merge_bulletin_counts_adoptions(self):
        table = LockingTable()
        table.update(view("s1", 5.0))
        adopted = table.merge_bulletin({
            "s1": view("s1", 1.0),          # stale
            "s2": view("s2", 1.0),          # new
        })
        assert adopted == 1


class TestTops:
    def test_effective_top_skips_finished_agents(self):
        table = LockingTable()
        table.update(view("s1", 1.0, [aid(1), aid(2)]))
        table.update(view("s2", 1.0, updated=[aid(1)]))
        assert table.effective_top("s1") == aid(2)

    def test_effective_top_empty_list_is_none(self):
        table = LockingTable()
        table.update(view("s1", 1.0, []))
        assert table.effective_top("s1") is None

    def test_effective_top_unknown_host_is_none(self):
        assert LockingTable().effective_top("ghost") is None

    def test_effective_top_all_finished_is_none(self):
        table = LockingTable()
        table.update(view("s1", 1.0, [aid(1)], updated=[aid(1)]))
        assert table.effective_top("s1") is None

    def test_top_counts(self):
        table = LockingTable()
        table.update(view("s1", 1.0, [aid(1)]))
        table.update(view("s2", 1.0, [aid(1)]))
        table.update(view("s3", 1.0, [aid(2)]))
        counts = table.top_counts()
        assert counts[aid(1)] == 2
        assert counts[aid(2)] == 1

    def test_tops_map(self):
        table = LockingTable()
        table.update(view("s1", 1.0, [aid(1)]))
        table.update(view("s2", 1.0, []))
        assert table.tops() == {"s1": aid(1), "s2": None}


class TestVersionsAndSharing:
    def test_version_ceiling_monotone_max(self):
        table = LockingTable()
        table.update(view("s1", 1.0, versions={"x": 2}))
        table.update(view("s2", 1.0, versions={"x": 7, "y": 1}))
        assert table.version_ceiling("x") == 7
        assert table.version_ceiling("y") == 1
        assert table.version_ceiling("missing") == 0

    def test_version_ceiling_includes_quorum_hosts(self):
        table = LockingTable()
        table.update(view("s1", 1.0, versions={"x": 3}))
        assert table.version_ceiling("x", hosts=["s1"]) == 3

    def test_shareable_views_excludes_current_host(self):
        table = LockingTable()
        table.update(view("s1", 1.0))
        table.update(view("s2", 1.0))
        shared = table.shareable_views("s1")
        assert set(shared) == {"s2"}

    def test_wire_size_grows_with_content(self):
        table = LockingTable()
        empty = table.wire_size()
        table.update(view("s1", 1.0, [aid(n) for n in range(10)],
                          versions={"x": 1}))
        assert table.wire_size() > empty
