"""Unit tests for the distributed priority calculation (Theorems 1-2)."""

import pytest

from repro.agents.identity import AgentId
from repro.core.locking_table import LockingTable
from repro.core.priority import OTHER, STALEMATE, UNDECIDED, WIN, decide
from repro.replication.server import SharedView


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


def table_from(queues: dict, updated=()) -> LockingTable:
    """Build a LockingTable from {host: [agent numbers...]}."""
    table = LockingTable()
    for host, agents in queues.items():
        table.update(
            SharedView(
                host=host,
                as_of=1.0,
                view=tuple(aid(n) for n in agents),
                updated=frozenset(aid(n) for n in updated),
                versions={},
            )
        )
    return table


class TestMajorityRule:
    def test_self_majority_wins(self):
        table = table_from({"s1": [1], "s2": [1], "s3": [2, 1]})
        decision = decide(table, 3, aid(1))
        assert decision.outcome == WIN
        assert decision.winner == aid(1)
        assert decision.reason == "majority"
        assert decision.quorum_hosts == ("s1", "s2")

    def test_other_majority_observed(self):
        table = table_from({"s1": [1], "s2": [1], "s3": [2]})
        decision = decide(table, 3, aid(2))
        assert decision.outcome == OTHER
        assert decision.winner == aid(1)

    def test_majority_needs_strictly_more_than_half(self):
        # 2 of 4 tops is NOT a majority.
        table = table_from({"s1": [1], "s2": [1], "s3": [2], "s4": [2]})
        decision = decide(table, 4, aid(1))
        assert decision.outcome != WIN

    def test_majority_counts_only_known_hosts(self):
        # 2 tops out of N=5 with only 2 hosts known: undecided.
        table = table_from({"s1": [1], "s2": [1]})
        assert decide(table, 5, aid(1)).outcome == UNDECIDED

    def test_ual_filtering_promotes_successor(self):
        # aid(1) finished everywhere; aid(2) is effective top at majority.
        table = table_from(
            {"s1": [1, 2], "s2": [1, 2], "s3": [1, 3]}, updated=[1]
        )
        decision = decide(table, 3, aid(2))
        assert decision.outcome == WIN
        assert decision.winner == aid(2)


class TestPaperTieBreak:
    def test_guard_fires_when_no_tied_agent_can_win(self):
        # N=5, five agents top at one server each: S=1, M=5,
        # S + (N - M*S) = 1 < 3 -> paper tie-break, lowest id designated.
        table = table_from(
            {"s1": [1], "s2": [2], "s3": [3], "s4": [4], "s5": [5]}
        )
        decision = decide(table, 5, aid(3))
        assert decision.outcome == STALEMATE
        assert decision.reason == "paper-tie-break"
        assert decision.winner == aid(1)

    def test_guard_does_not_fire_when_win_still_possible(self):
        # N=5, tops 2/2/1: a tied agent could still reach 3 in principle
        # (S + (N - M*S) = 2 + 1 = 3 >= 3), so the paper guard is silent;
        # complete info resolves it instead.
        table = table_from(
            {"s1": [1], "s2": [1], "s3": [2], "s4": [2], "s5": [3]}
        )
        decision = decide(table, 5, aid(1))
        assert decision.outcome == STALEMATE
        assert decision.reason == "complete-info"
        assert decision.winner == aid(1)


class TestCompleteInfoRule:
    def test_incomplete_views_undecided(self):
        table = table_from({"s1": [1], "s2": [2]})
        assert decide(table, 3, aid(1)).outcome == UNDECIDED

    def test_empty_list_blocks_stalemate(self):
        # s3's list is empty: a newcomer could still top it, keep waiting.
        table = table_from({"s1": [1], "s2": [2], "s3": []})
        assert decide(table, 3, aid(1)).outcome == UNDECIDED

    def test_all_nonempty_stalemate_designates_min_id(self):
        table = table_from({"s1": [2], "s2": [3], "s3": [4]})
        decision = decide(table, 3, aid(4))
        assert decision.outcome == STALEMATE
        assert decision.winner == aid(2)

    def test_no_counts_at_all_undecided(self):
        table = table_from({"s1": [], "s2": [], "s3": []})
        assert decide(table, 3, aid(1)).outcome == UNDECIDED


class TestAgreement:
    def test_all_agents_agree_on_the_decision(self):
        """Theorem 1/2: same information => same winner, whoever asks."""
        table_queues = {"s1": [1, 2], "s2": [1, 3], "s3": [2, 1],
                        "s4": [2], "s5": [3]}
        winners = set()
        for asking in (1, 2, 3):
            decision = decide(table_from(table_queues), 5, aid(asking))
            if decision.winner is not None:
                winners.add(decision.winner)
        assert len(winners) == 1

    def test_win_and_other_are_consistent(self):
        queues = {"s1": [7], "s2": [7], "s3": [8]}
        self_view = decide(table_from(queues), 3, aid(7))
        other_view = decide(table_from(queues), 3, aid(8))
        assert self_view.outcome == WIN
        assert other_view.outcome == OTHER
        assert self_view.winner == other_view.winner == aid(7)


class TestUnavailableReplicas:
    def test_unavailable_counts_toward_completeness(self):
        # 4 of 5 views known, s5 declared unavailable: a frozen 1/1/1/1
        # split must reach the tie-break instead of deadlocking.
        table = table_from({"s1": [1], "s2": [2], "s3": [3], "s4": [4]})
        without = decide(table, 5, aid(1))
        assert without.outcome == UNDECIDED
        with_unavailable = decide(
            table, 5, aid(1), unavailable=frozenset({"s5"})
        )
        assert with_unavailable.outcome == STALEMATE
        assert with_unavailable.winner == aid(1)

    def test_unavailable_known_host_not_double_counted(self):
        # marking an already-known host unavailable adds nothing
        table = table_from({"s1": [1], "s2": [2]})
        decision = decide(
            table, 3, aid(1), unavailable=frozenset({"s1"})
        )
        assert decision.outcome == UNDECIDED

    def test_majority_rule_unaffected_by_unavailability(self):
        table = table_from({"s1": [1], "s2": [1], "s3": [1]})
        decision = decide(
            table, 5, aid(1), unavailable=frozenset({"s4", "s5"})
        )
        assert decision.outcome == WIN
        assert decision.reason == "majority"


class TestValidation:
    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            decide(LockingTable(), 0, aid(1))

    def test_decided_property(self):
        table = table_from({"s1": [1], "s2": [1], "s3": [1]})
        assert decide(table, 3, aid(1)).decided
        assert not decide(LockingTable(), 3, aid(1)).decided
