"""Tests for the lock-pipelining extension (predicted grant order)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.identity import AgentId
from repro.core.locking_table import LockingTable
from repro.core.priority import rank_queue
from repro.replication.server import SharedView


def aid(n: int) -> AgentId:
    return AgentId("h", float(n), 0)


def table_from(queues: dict, updated=()) -> LockingTable:
    table = LockingTable()
    for host, agents in queues.items():
        table.update(
            SharedView(
                host=host,
                as_of=1.0,
                view=tuple(aid(n) for n in agents),
                updated=frozenset(aid(n) for n in updated),
                versions={},
            )
        )
    return table


class TestRankQueue:
    def test_identical_queues_rank_in_queue_order(self):
        table = table_from({
            "s1": [1, 2, 3], "s2": [1, 2, 3], "s3": [1, 2, 3],
        })
        assert rank_queue(table, 3) == (aid(1), aid(2), aid(3))

    def test_limit(self):
        table = table_from({
            "s1": [1, 2, 3], "s2": [1, 2, 3], "s3": [1, 2, 3],
        })
        assert rank_queue(table, 3, limit=2) == (aid(1), aid(2))

    def test_empty_table_ranks_nothing(self):
        assert rank_queue(LockingTable(), 3) == ()

    def test_stops_at_incomplete_information(self):
        # only 1 of 3 hosts known: a single top is no majority and the
        # stalemate rule needs all views -> no prediction.
        table = table_from({"s1": [1, 2]})
        assert rank_queue(table, 3) == ()

    def test_skips_finished_agents(self):
        table = table_from(
            {"s1": [1, 2], "s2": [1, 2], "s3": [1, 2]}, updated=[1],
        )
        assert rank_queue(table, 3) == (aid(2),)

    def test_stalemate_resolved_by_id_in_prediction(self):
        # frozen 1/1/1 split: successive tie-breaks order by identifier
        table = table_from({"s1": [3, 1], "s2": [2, 3], "s3": [1, 2]})
        order = rank_queue(table, 3)
        assert order[0] == aid(1)  # min-ID designee first
        assert len(set(order)) == len(order)

    def test_weighted_ranking(self):
        table = table_from({"s1": [2], "s2": [1], "s3": [1]})
        # unweighted: agent 1 tops 2 of 3 -> majority
        assert rank_queue(table, 3)[0] == aid(1)
        # s1 carries the majority of votes -> agent 2 first
        weighted = rank_queue(
            table, 3, votes={"s1": 5, "s2": 1, "s3": 1},
        )
        assert weighted[0] == aid(2)

    @given(
        queue=st.lists(
            st.integers(min_value=0, max_value=10), min_size=1,
            max_size=8, unique=True,
        ),
        n_hosts=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_queues_always_rank_fully(self, queue, n_hosts):
        """When every server shows the same queue, the predicted order is
        exactly that queue (pure FIFO service)."""
        table = table_from({f"s{i}": queue for i in range(n_hosts)})
        assert rank_queue(table, n_hosts) == tuple(aid(n) for n in queue)

    @given(
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_prediction_is_deterministic(self, data):
        n_hosts = data.draw(st.integers(min_value=1, max_value=4))
        agents = data.draw(
            st.lists(st.integers(0, 8), min_size=1, max_size=6, unique=True)
        )
        queues = {
            f"s{i}": data.draw(
                st.lists(st.sampled_from(agents), max_size=len(agents),
                         unique=True)
            )
            for i in range(n_hosts)
        }
        first = rank_queue(table_from(queues), n_hosts)
        second = rank_queue(table_from(queues), n_hosts)
        assert first == second
        # no duplicates, no finished agents
        assert len(set(first)) == len(first)
