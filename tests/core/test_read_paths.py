"""Focused tests for the read paths, including failure cases."""

from repro.core.config import MARPConfig
from repro.core.protocol import MARP
from repro.net.faults import CrashSchedule, FaultPlan
from repro.replication.deployment import Deployment


class TestLocalReadSemantics:
    def test_local_read_may_be_stale(self):
        """The paper's explicit trade-off: local reads are fast but not
        guaranteed fresh. Engineer staleness: commit while the reading
        replica is down, then read before its recovery sync."""
        from repro.replication.server import ReplicaConfig

        faults = FaultPlan(crashes=CrashSchedule().add("s3", 0, 50_000))
        dep = Deployment(
            n_replicas=5, seed=70, faults=faults,
            replica_config=ReplicaConfig(recover_on_restart=False),
        )
        marp = MARP(dep)
        marp.submit_write("s1", "x", "fresh")
        dep.run(until=40_000)
        # s3 is still down; once it's "up" again (no sync configured),
        # a local read there misses the committed value.
        dep.run(until=60_000)
        record = marp.submit_read("s3", "x")
        dep.run(until=70_000)
        assert record.status == "read-done"
        assert record.value is None  # stale: never saw the commit
        assert record.extra["version"] == 0

    def test_quorum_read_not_fooled_by_one_stale_replica(self):
        from repro.replication.server import ReplicaConfig

        faults = FaultPlan(crashes=CrashSchedule().add("s3", 0, 50_000))
        dep = Deployment(
            n_replicas=5, seed=71, faults=faults,
            replica_config=ReplicaConfig(recover_on_restart=False),
        )
        marp = MARP(dep, config=MARPConfig(read_strategy="quorum"))
        marp.submit_write("s1", "x", "fresh")
        dep.run(until=60_000)
        record = marp.submit_read("s3", "x")
        dep.run(until=80_000)
        assert record.status == "read-done"
        assert record.value == "fresh"  # the majority outvotes s3

    def test_quorum_read_fails_without_majority(self):
        crashes = CrashSchedule()
        for host in ("s2", "s3", "s4", "s5"):
            crashes.add(host, 0, 10_000_000)
        dep = Deployment(n_replicas=5, seed=72,
                         faults=FaultPlan(crashes=crashes))
        marp = MARP(dep, config=MARPConfig(read_strategy="quorum",
                                           ack_timeout=200.0))
        record = marp.submit_read("s1", "x")
        dep.run(until=100_000)
        assert record.status == "failed"
        assert record.extra["replies"] < 3


class TestAgentStateAndIdentity:
    def test_agent_state_sizes_grow_with_table(self):
        from repro.agents.mobility import MigrationCostModel

        dep = Deployment(n_replicas=5, seed=73)
        marp = MARP(dep)
        record = marp.submit_write("s1", "x", 1)
        agent = marp.agents[0]
        model = MigrationCostModel()
        initial = model.size_of(agent)
        dep.run(until=100_000)
        assert record.status == "committed"
        # after touring, the Locking Table adds to the carried state
        assert model.size_of(agent) > initial

    def test_travel_log_matches_visits(self):
        dep = Deployment(n_replicas=3, seed=74)
        marp = MARP(dep)
        marp.submit_write("s2", "x", 1)
        dep.run(until=100_000)
        agent = marp.agents[0]
        hosts_visited = [h for _t, h in agent.travel_log]
        assert hosts_visited[0] == "s2"  # home first
        assert len(hosts_visited) == agent.hops + 1
